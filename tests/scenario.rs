//! Integration tests for the scenario engine: event-scripted worlds
//! driven through the closed serve → measure → refresh-or-retrain loop.

use mlp::prelude::*;

fn run(name: &str, users: usize, ticks: usize, seed: u64) -> ScenarioReport {
    let script = ScenarioScript::by_name(name, users, ticks).expect("canned scenario");
    let config = ScenarioRunConfig {
        generator: GeneratorConfig { seed, ..Default::default() },
        ..Default::default()
    };
    run_scenario(&Gazetteer::us_cities(), script, &config).expect("scenario run")
}

/// Same (seed, script) ⇒ byte-identical event stream and identical
/// per-tick metric report; a different seed diverges.
#[test]
fn repeat_runs_are_bit_identical() {
    let a = run("migration-wave", 260, 6, 901);
    let b = run("migration-wave", 260, 6, 901);
    assert_eq!(a.event_fingerprint, b.event_fingerprint);
    assert_eq!(a.determinism_fingerprint(), b.determinism_fingerprint());
    assert_eq!(a.ticks.len(), b.ticks.len());
    for (x, y) in a.ticks.iter().zip(&b.ticks) {
        // Everything but wall-clock serve time must match exactly.
        assert_eq!(x.tick, y.tick);
        assert_eq!(x.users, y.users);
        assert_eq!(x.absorbed, y.absorbed);
        assert_eq!(x.acc_served.to_bits(), y.acc_served.to_bits());
        assert_eq!(x.acc_committed.to_bits(), y.acc_committed.to_bits());
        assert_eq!(x.drift.to_bits(), y.drift.to_bits());
        assert_eq!(x.action, y.action);
        assert_eq!(x.epoch, y.epoch);
    }

    let c = run("migration-wave", 260, 6, 902);
    assert_ne!(a.event_fingerprint, c.event_fingerprint, "seed must steer the event stream");
    assert_ne!(a.determinism_fingerprint(), c.determinism_fingerprint());
}

/// The tentpole acceptance signature: a migration wave dips served
/// accuracy, the drift signal crosses the staleness threshold, the
/// decision layer auto-retrains, and committed accuracy recovers toward
/// the retrained curve.
#[test]
fn migration_wave_triggers_auto_retrain_and_recovers() {
    let report = run("migration-wave", 300, 8, 903);
    eprintln!("{}", report.render_table());
    assert_eq!(report.ticks.len(), 8);
    assert!(report.refreshes() >= 1, "arrival ticks must refresh incrementally");
    assert!(report.retrains() >= 1, "the migration wave must trigger an auto-retrain");

    let retrain_tick = report
        .ticks
        .iter()
        .find(|t| matches!(t.action, TickAction::Retrain { .. }))
        .expect("retrain tick");
    let wave_tick = report.ticks.iter().find(|t| t.migrated > 0).expect("wave tick");
    assert!(
        retrain_tick.tick >= wave_tick.tick,
        "retrain must be a reaction to the wave, not precede it"
    );
    assert!(
        retrain_tick.drift > 0.10,
        "retrain must have been drift-triggered: drift={}",
        retrain_tick.drift
    );
    // Recovery: the retrain lifts accuracy well above the dip it reacted to.
    let (_, dip) = report.min_acc_served().unwrap();
    assert!(
        retrain_tick.acc_committed > dip + 0.10,
        "retrain did not recover: dip={dip}, committed={}",
        retrain_tick.acc_committed
    );
    let last = report.ticks.last().unwrap();
    assert!(
        last.acc_committed > dip + 0.10,
        "accuracy fell back after the retrain: dip={dip}, final={}",
        last.acc_committed
    );
}

/// Steady state: arrivals are absorbed incrementally every tick and the
/// policy never escalates to a retrain.
#[test]
fn steady_state_refreshes_but_never_retrains() {
    let report = run("steady-state", 260, 6, 904);
    eprintln!("{}", report.render_table());
    assert_eq!(report.ticks.len(), 6);
    assert_eq!(report.retrains(), 0, "steady arrivals must not trigger retrains");
    assert_eq!(report.refreshes(), 6, "every tick has arrivals to absorb");
    let mut prev_epoch = 0;
    let mut prev_users = 0;
    for t in &report.ticks {
        assert!(t.epoch > prev_epoch, "refresh commits must keep publishing epochs");
        assert!(t.users > prev_users, "arrivals must grow the world monotonically");
        prev_epoch = t.epoch;
        prev_users = t.users;
        assert_eq!(t.migrated, 0);
        assert_eq!(t.labels_corrupted, 0);
    }
    // After each tick's action, everything the world holds is absorbed.
    let last = report.ticks.last().unwrap();
    assert_eq!(
        last.users,
        report.initial_users + report.ticks.iter().map(|t| t.new_users).sum::<usize>()
    );
}

/// Churn storm and noise burst both run clean end to end and report the
/// deltas their events cause.
#[test]
fn churn_and_noise_scenarios_run_clean() {
    let churn = run("churn-storm", 240, 6, 905);
    eprintln!("{}", churn.render_table());
    assert_eq!(churn.ticks.len(), 6);
    assert!(churn.ticks.iter().any(|t| t.edges_removed > 0), "the storm must decay edges");
    assert!(
        churn.ticks.iter().any(|t| t.traffic > 1.0 && t.requests > 0),
        "the traffic spike must scale served requests"
    );

    let noise = run("noise-burst", 240, 6, 906);
    eprintln!("{}", noise.render_table());
    assert_eq!(noise.ticks.len(), 6);
    assert!(noise.ticks.iter().any(|t| t.labels_corrupted > 0), "the burst must corrupt labels");
}

/// Script validation failures surface as typed errors from the driver,
/// not panics mid-run.
#[test]
fn invalid_scripts_are_rejected() {
    let gaz = Gazetteer::us_cities();
    let mut script = ScenarioScript::steady_state(100, 4);
    script.events.push(mlp::social::ScheduledEvent {
        tick: 9,
        event: ScenarioEvent::MigrationWave { fraction: 0.3 },
    });
    let err = run_scenario(&gaz, script, &ScenarioRunConfig::default()).unwrap_err();
    assert!(err.contains("outside"), "unexpected error: {err}");

    let mut script = ScenarioScript::steady_state(100, 4);
    script.events.push(mlp::social::ScheduledEvent {
        tick: 2,
        event: ScenarioEvent::NoiseBurst { fraction: 1.5 },
    });
    let err = run_scenario(&gaz, script, &ScenarioRunConfig::default()).unwrap_err();
    assert!(err.contains("probability"), "unexpected error: {err}");
}

/// The machine-readable report carries the full curve: JSON has one row
/// per tick plus run-level fingerprints, and the table renders.
#[test]
fn report_serializes_with_full_curve() {
    let report = run("steady-state", 200, 4, 907);
    let json = report.to_json();
    assert_eq!(json.matches("\"tick\":").count(), 4);
    assert!(json.contains("\"scenario\": \"steady-state\""));
    assert!(json.contains("\"determinism_fingerprint\""));
    assert!(json.contains("\"event_fingerprint\""));
    assert!(json.contains("\"refresh\""));
    let table = report.render_table();
    assert!(table.contains("acc_served"));
    assert!(table.lines().count() >= 5, "table must have one row per tick");
}
