//! The online-refresh acceptance suite: train on D₀, commit deltas for
//! D₁ through the [`OnlineUpdater`], and demand that (a) refreshed
//! serving tracks a cold retrain on D₀∪D₁ within the warm-start
//! tolerance, (b) the whole refresh pipeline is deterministic — repeat
//! runs produce byte-identical artifacts — and (c) every artifact
//! (compacted or not, incremental or re-encoded) thaws back to the
//! posterior it was published from.

use mlp::core::snapshot::SnapshotError;
use mlp::core::{FoldInError, OnlineError};
use mlp::eval::online_refresh_drift;
use mlp::prelude::*;

fn corpus(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    (gaz, data)
}

fn quick_config(seed: u64) -> MlpConfig {
    MlpConfig { iterations: 10, burn_in: 5, seed, ..Default::default() }
}

/// Builds an updater over a D₀-trained snapshot and absorbs+commits D₁ in
/// `batch`-sized chunks, restricting neighbors to already-known users.
fn refresh<'a>(
    gaz: &'a Gazetteer,
    data: &GeneratedData,
    train_users: usize,
    batch: usize,
    seed: u64,
) -> OnlineUpdater<'a> {
    let d0 = data.dataset.prefix(train_users);
    let (_, snapshot) = Mlp::new(gaz, &d0, quick_config(seed)).unwrap().run_with_snapshot();
    let mut updater =
        OnlineUpdater::new(gaz, snapshot, FoldInConfig::default(), StalenessPolicy::default())
            .unwrap();
    let ids: Vec<UserId> =
        (train_users as u32..data.dataset.num_users() as u32).map(UserId).collect();
    for chunk in ids.chunks(batch) {
        let mut obs = NewUserObservations::batch_from_dataset(&data.dataset, chunk);
        let known = updater.snapshot().num_users();
        for o in &mut obs {
            o.neighbors.retain(|p| p.index() < known);
        }
        updater.absorb(&obs).unwrap();
        updater.commit().unwrap();
    }
    updater
}

#[test]
fn refreshed_serving_matches_cold_retrain_within_tolerance() {
    // The acceptance bar: D₀ training + online D₁ commits must serve the
    // D₁ users within the warm-start accuracy tolerance of a cold retrain
    // on D₀∪D₁ (with D₁ labels masked in both worlds).
    let (gaz, data) = corpus(600, 5001);
    let report =
        online_refresh_drift(&gaz, &data, 480, &quick_config(5001), FoldInConfig::default(), 30)
            .unwrap();
    assert_eq!(report.new_users, 120);
    assert_eq!(report.commits, 4);
    assert!(report.retrained_acc_at_100 > 0.40, "cold baseline collapsed: {report:?}");
    assert!(report.refreshed_acc_at_100 > 0.35, "refreshed serving near chance: {report:?}");
    assert!(
        report.drift() < 0.15,
        "online refresh drifted past the warm-start tolerance: {report:?}"
    );
}

#[test]
fn delta_commits_are_byte_identical_across_runs() {
    let (gaz, data) = corpus(300, 5003);
    let a = refresh(&gaz, &data, 240, 20, 5003);
    let b = refresh(&gaz, &data, 240, 20, 5003);
    assert_eq!(a.snapshot(), b.snapshot(), "repeat refresh must land on the same posterior");
    assert_eq!(
        a.snapshot().encode().as_slice(),
        b.snapshot().encode().as_slice(),
        "re-encoded refreshed posteriors must be byte-identical"
    );
    assert_eq!(
        a.encode_artifact().unwrap().as_slice(),
        b.encode_artifact().unwrap().as_slice(),
        "incremental artifacts (base + delta records) must be byte-identical"
    );
}

#[test]
fn artifacts_thaw_back_to_the_refreshed_posterior() {
    let (gaz, data) = corpus(260, 5005);
    let updater = refresh(&gaz, &data, 200, 30, 5005);
    assert_eq!(updater.committed_deltas().len(), 2);

    // The incremental artifact: base payload + two delta records.
    let incremental = PosteriorSnapshot::decode(updater.encode_artifact().unwrap()).unwrap();
    assert_eq!(&incremental, updater.snapshot());

    // A full re-encode of the refreshed posterior (zero records).
    let reencoded = PosteriorSnapshot::decode(updater.snapshot().encode()).unwrap();
    assert_eq!(&reencoded, updater.snapshot());

    // And serving from the thawed artifact answers like the live one.
    let obs = NewUserObservations::batch_from_dataset(&data.dataset, &[UserId(5), UserId(17)]);
    let live = FoldInEngine::new(updater.snapshot(), &gaz, FoldInConfig::default())
        .unwrap()
        .fold_in_batch(&obs)
        .unwrap();
    let thawed = FoldInEngine::new(&incremental, &gaz, FoldInConfig::default())
        .unwrap()
        .fold_in_batch(&obs)
        .unwrap();
    assert_eq!(live, thawed);
}

#[test]
fn committed_users_become_citable_neighbors() {
    let (gaz, data) = corpus(200, 5007);
    let d0 = data.dataset.prefix(160);
    let (_, snapshot) = Mlp::new(&gaz, &d0, quick_config(5007)).unwrap().run_with_snapshot();
    let mut updater =
        OnlineUpdater::new(&gaz, snapshot, FoldInConfig::default(), StalenessPolicy::default())
            .unwrap();

    let first_new = UserId(160);
    let cite_new = vec![NewUserObservations { neighbors: vec![first_new], mentions: vec![] }];
    // Before any commit, user 160 does not exist in the posterior.
    assert_eq!(
        updater.absorb(&cite_new).unwrap_err(),
        FoldInError::UnknownUser(first_new),
        "uncommitted users must not be citable"
    );

    let ids: Vec<UserId> = (160..180).map(UserId).collect();
    let mut obs = NewUserObservations::batch_from_dataset(&data.dataset, &ids);
    for o in &mut obs {
        o.neighbors.retain(|p| p.index() < 160);
    }
    updater.absorb(&obs).unwrap();
    updater.commit().unwrap();

    // After the commit the same request folds in fine — and the committed
    // neighbor's posterior pulls the requester toward their home.
    let profile = &updater.absorb(&cite_new).unwrap()[0];
    let committed_home = updater.snapshot().users.home(first_new);
    assert!(
        gaz.distance(profile.home(), committed_home) <= 100.0,
        "requester should land near their only (committed) neighbor"
    );
}

#[test]
fn hand_corrupted_delta_records_fail_typed_not_loud() {
    let (gaz, data) = corpus(220, 5009);
    let d0 = data.dataset.prefix(180);
    let (_, base) = Mlp::new(&gaz, &d0, quick_config(5009)).unwrap().run_with_snapshot();
    let base_len = base.encode().len() - 4; // minus the empty record count
    let mut updater =
        OnlineUpdater::new(&gaz, base, FoldInConfig::default(), StalenessPolicy::default())
            .unwrap();
    let ids: Vec<UserId> = (180..220).map(UserId).collect();
    let mut obs = NewUserObservations::batch_from_dataset(&data.dataset, &ids);
    for o in &mut obs {
        o.neighbors.retain(|p| p.index() < 180);
    }
    updater.absorb(&obs).unwrap();
    updater.commit().unwrap();
    let artifact = updater.encode_artifact().unwrap();

    // An absurd u64 length prefix must be a typed error before any
    // allocation happens.
    let mut huge = artifact.to_vec();
    huge[base_len + 4..base_len + 12].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(
        PosteriorSnapshot::decode(bytes::Bytes::from(huge)).unwrap_err(),
        SnapshotError::Truncated
    );

    // Truncating anywhere inside the record section stays typed.
    for cut in [base_len + 2, base_len + 9, artifact.len() - 3] {
        assert_eq!(
            PosteriorSnapshot::decode(artifact.slice(..cut)).unwrap_err(),
            SnapshotError::Truncated,
            "cut at {cut}"
        );
    }
}

#[test]
fn updater_error_types_round_trip_through_display() {
    // The CLI prints these; make sure the typed wrappers stay informative.
    let (gaz, _) = corpus(60, 5011);
    let other = Gazetteer::with_synthetic(&SynthConfig {
        total_cities: gaz.num_cities() + 5,
        seed: 9,
        ..Default::default()
    });
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 60, seed: 5011, ..Default::default() })
            .generate();
    let (_, snapshot) =
        Mlp::new(&gaz, &data.dataset, quick_config(5011)).unwrap().run_with_snapshot();
    let Err(err) =
        OnlineUpdater::new(&other, snapshot, FoldInConfig::default(), StalenessPolicy::default())
    else {
        panic!("mismatched gazetteer must be rejected")
    };
    assert!(matches!(err, OnlineError::FoldIn(FoldInError::GazetteerMismatch { .. })));
    assert!(err.to_string().contains("cities x venues"));
}
