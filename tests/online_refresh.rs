//! The online-refresh acceptance suite, on the `ServingEngine` facade:
//! train on D₀, refresh D₁ through `refresh_from_dataset`, and demand
//! that (a) refreshed serving tracks a cold retrain on D₀∪D₁ within the
//! warm-start tolerance, (b) the whole refresh pipeline is deterministic —
//! repeat runs produce byte-identical artifacts — and (c) every artifact
//! (compacted or not, incremental or re-encoded) thaws back to the
//! posterior it was published from.

use mlp::core::snapshot::SnapshotError;
use mlp::core::{EngineError, FoldInError};
use mlp::eval::online_refresh_drift;
use mlp::prelude::*;

fn corpus(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    (gaz, data)
}

fn quick_config(seed: u64) -> MlpConfig {
    MlpConfig { iterations: 10, burn_in: 5, seed, ..Default::default() }
}

/// Cold-trains an engine on the first `train_users` users and refreshes
/// everyone else into it in `batch`-sized committed chunks.
fn refresh<'a>(
    gaz: &'a Gazetteer,
    data: &GeneratedData,
    train_users: usize,
    batch: usize,
    seed: u64,
) -> ServingEngine<'a> {
    let engine = ServingEngine::builder(gaz)
        .mlp_config(quick_config(seed))
        .train(&data.dataset.prefix(train_users))
        .unwrap();
    let ids: Vec<UserId> =
        (train_users as u32..data.dataset.num_users() as u32).map(UserId).collect();
    engine.refresh_from_dataset(&data.dataset, &ids, batch).unwrap();
    engine
}

#[test]
fn refreshed_serving_matches_cold_retrain_within_tolerance() {
    // The acceptance bar: D₀ training + online D₁ commits must serve the
    // D₁ users within the warm-start accuracy tolerance of a cold retrain
    // on D₀∪D₁ (with D₁ labels masked in both worlds).
    let (gaz, data) = corpus(600, 5001);
    let report =
        online_refresh_drift(&gaz, &data, 480, &quick_config(5001), FoldInConfig::default(), 30)
            .unwrap();
    assert_eq!(report.new_users, 120);
    assert_eq!(report.commits, 4);
    assert!(report.retrained_acc_at_100 > 0.40, "cold baseline collapsed: {report:?}");
    assert!(report.refreshed_acc_at_100 > 0.35, "refreshed serving near chance: {report:?}");
    assert!(
        report.drift() < 0.15,
        "online refresh drifted past the warm-start tolerance: {report:?}"
    );
}

#[test]
fn delta_commits_are_byte_identical_across_runs() {
    let (gaz, data) = corpus(300, 5003);
    let a = refresh(&gaz, &data, 240, 20, 5003);
    let b = refresh(&gaz, &data, 240, 20, 5003);
    assert_eq!(a.epoch(), 3);
    assert_eq!(
        a.snapshot().snapshot(),
        b.snapshot().snapshot(),
        "repeat refresh must land on the same posterior"
    );
    assert_eq!(
        a.snapshot().try_encode().unwrap().as_slice(),
        b.snapshot().try_encode().unwrap().as_slice(),
        "re-encoded refreshed posteriors must be byte-identical"
    );
    assert_eq!(
        a.encode_artifact().unwrap().as_slice(),
        b.encode_artifact().unwrap().as_slice(),
        "incremental artifacts (base + delta records) must be byte-identical"
    );
}

#[test]
fn artifacts_thaw_back_to_the_refreshed_posterior() {
    let (gaz, data) = corpus(260, 5005);
    let engine = refresh(&gaz, &data, 200, 30, 5005);
    assert_eq!(engine.commits(), 2);

    // The incremental artifact: base payload + two delta records.
    let incremental = PosteriorSnapshot::decode(engine.encode_artifact().unwrap()).unwrap();
    assert_eq!(&incremental, engine.snapshot().snapshot());

    // A full re-encode of the refreshed posterior (zero records).
    let reencoded = PosteriorSnapshot::decode(engine.snapshot().try_encode().unwrap()).unwrap();
    assert_eq!(&reencoded, engine.snapshot().snapshot());

    // And an engine thawed from the artifact answers like the live one
    // (epoch tags differ — the thawed engine starts a fresh epoch history
    // at 0 while the live one sits at 2 — but the predictions are
    // bit-identical).
    let reqs = ProfileRequest::batch_from_dataset(&data.dataset, &[UserId(5), UserId(17)]);
    let live = engine.profile_batch(&reqs).unwrap();
    let thawed = ServingEngine::builder(&gaz)
        .from_artifact(engine.encode_artifact().unwrap())
        .unwrap()
        .profile_batch(&reqs)
        .unwrap();
    assert_eq!(live[0].epoch, 2);
    assert_eq!(thawed[0].epoch, 0);
    assert_eq!(
        mlp::core::response_determinism_hash(&live),
        mlp::core::response_determinism_hash(&thawed)
    );
    for (l, t) in live.iter().zip(&thawed) {
        assert_eq!(l.ranked, t.ranked);
    }
}

#[test]
fn committed_users_become_citable_neighbors() {
    let (gaz, data) = corpus(200, 5007);
    let engine = ServingEngine::builder(&gaz)
        .mlp_config(quick_config(5007))
        .train(&data.dataset.prefix(160))
        .unwrap();

    let first_new = UserId(160);
    let cite_new = vec![ProfileRequest::new(NewUserObservations {
        neighbors: vec![first_new],
        mentions: vec![],
    })];
    // Before any commit, user 160 does not exist in the posterior — both
    // serving and (strict) refreshing reject the citation typed.
    assert!(matches!(
        engine.profile_batch(&cite_new).unwrap_err(),
        EngineError::FoldIn(FoldInError::UnknownUser(u)) if u == first_new
    ));
    assert!(matches!(
        engine.refresh(&cite_new).unwrap_err(),
        EngineError::FoldIn(FoldInError::UnknownUser(u)) if u == first_new
    ));
    assert_eq!(engine.epoch(), 0, "a failed refresh publishes nothing");

    let ids: Vec<UserId> = (160..180).map(UserId).collect();
    engine.refresh_from_dataset(&data.dataset, &ids, ids.len()).unwrap();
    assert_eq!(engine.epoch(), 1);

    // After the commit the same request folds in fine — and the committed
    // neighbor's posterior pulls the requester toward their home.
    let response = &engine.profile_batch(&cite_new).unwrap()[0];
    assert_eq!(response.epoch, 1);
    let committed_home = engine.snapshot().users.home(first_new);
    assert!(
        gaz.distance(response.ranked.home(), committed_home) <= 100.0,
        "requester should land near their only (committed) neighbor"
    );
}

#[test]
fn hand_corrupted_delta_records_fail_typed_not_loud() {
    let (gaz, data) = corpus(220, 5009);
    let engine = ServingEngine::builder(&gaz)
        .mlp_config(quick_config(5009))
        .train(&data.dataset.prefix(180))
        .unwrap();
    let base_len = engine.snapshot().try_encode().unwrap().len() - 4; // minus the empty record count
    let ids: Vec<UserId> = (180..220).map(UserId).collect();
    engine.refresh_from_dataset(&data.dataset, &ids, ids.len()).unwrap();
    let artifact = engine.encode_artifact().unwrap();

    // An absurd u64 length prefix must be a typed error before any
    // allocation happens. Since v5 the delta section carries its own
    // checksum, so the damage trips the section CRC before record
    // framing is even consulted.
    let mut huge = artifact.to_vec();
    huge[base_len + 4..base_len + 12].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(
        PosteriorSnapshot::decode(bytes::Bytes::from(huge)).unwrap_err(),
        SnapshotError::Corrupt("section checksum mismatch")
    );

    // Truncating anywhere inside the record section stays typed — whether
    // thawed raw or through the engine builder.
    for cut in [base_len + 2, base_len + 9, artifact.len() - 3] {
        assert_eq!(
            PosteriorSnapshot::decode(artifact.slice(..cut)).unwrap_err(),
            SnapshotError::Truncated,
            "cut at {cut}"
        );
        assert!(
            matches!(
                ServingEngine::builder(&gaz).from_artifact(artifact.slice(..cut)).unwrap_err(),
                EngineError::Snapshot(SnapshotError::Truncated)
            ),
            "cut at {cut} through the builder"
        );
    }
}

#[test]
fn engine_error_types_round_trip_through_display() {
    // The CLI prints these; make sure the typed wrappers stay informative.
    let (gaz, _) = corpus(60, 5011);
    let other = Gazetteer::with_synthetic(&SynthConfig {
        total_cities: gaz.num_cities() + 5,
        seed: 9,
        ..Default::default()
    });
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 60, seed: 5011, ..Default::default() })
            .generate();
    let (_, snapshot) =
        Mlp::new(&gaz, &data.dataset, quick_config(5011)).unwrap().run_with_snapshot();
    let err = ServingEngine::builder(&other).from_snapshot(snapshot).unwrap_err();
    assert!(matches!(err, EngineError::FoldIn(FoldInError::GazetteerMismatch { .. })));
    assert!(err.to_string().contains("cities x venues"));
}
