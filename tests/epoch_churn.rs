//! Epoch-churn stress suite for the lock-free publication path: readers
//! hammering the engine while the writer publishes a rapid sequence of
//! refresh commits must (a) never observe a torn epoch, (b) have every
//! response batch byte-identical to a serial replay of the epoch it was
//! tagged with, and (c) keep caller-pinned old-epoch handles valid and
//! byte-identical to their pre-churn content after dozens of publishes.

use mlp::core::engine::response_determinism_hash;
use mlp::prelude::*;

const BASE_USERS: usize = 100;
const CHURN_COMMITS: usize = 24;
const USERS_PER_COMMIT: usize = 2;

fn corpus(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    (gaz, data)
}

/// Requests for users `range`, with edges restricted to the base
/// posterior so the same request list is valid at every epoch.
fn requests(data: &GeneratedData, range: std::ops::Range<u32>) -> Vec<ProfileRequest> {
    let ids: Vec<UserId> = range.map(UserId).collect();
    let mut reqs = ProfileRequest::batch_from_dataset(&data.dataset, &ids);
    for r in &mut reqs {
        r.observations.neighbors.retain(|p| p.index() < BASE_USERS);
    }
    reqs
}

#[test]
fn rapid_epoch_churn_is_never_torn_and_replays_serially() {
    let total = BASE_USERS + CHURN_COMMITS * USERS_PER_COMMIT;
    let (gaz, data) = corpus(total, 8101);
    let d0 = data.dataset.prefix(BASE_USERS);
    let (_, snapshot) = Mlp::new(
        &gaz,
        &d0,
        MlpConfig { iterations: 8, burn_in: 4, seed: 8101, ..Default::default() },
    )
    .unwrap()
    .run_with_snapshot();

    let reader_reqs = requests(&data, 0..8);
    // One commit's worth of signups per chunk, identical for the replay
    // and the live run so published posteriors match byte for byte.
    let churn_chunks: Vec<Vec<ProfileRequest>> = (0..CHURN_COMMITS)
        .map(|c| {
            let start = (BASE_USERS + c * USERS_PER_COMMIT) as u32;
            requests(&data, start..start + USERS_PER_COMMIT as u32)
        })
        .collect();

    // Serial replay: the only response batches any reader may legally
    // observe — one per epoch.
    let replay_engine = ServingEngine::builder(&gaz).from_snapshot(snapshot.clone()).unwrap();
    let mut replay: Vec<Vec<ProfileResponse>> =
        vec![replay_engine.profile_batch(&reader_reqs).unwrap()];
    for chunk in &churn_chunks {
        replay_engine.refresh(chunk).unwrap();
        replay.push(replay_engine.profile_batch(&reader_reqs).unwrap());
    }
    assert_eq!(replay_engine.epoch() as usize, CHURN_COMMITS);

    // Live run: readers and a wait-free monitor race the churn writer.
    let engine = ServingEngine::builder(&gaz).from_snapshot(snapshot).unwrap();
    let pinned = engine.snapshot();
    let pinned_posterior = pinned.snapshot().clone();

    let observed: Vec<Vec<ProfileResponse>> = std::thread::scope(|scope| {
        let (engine, reader_reqs, churn_chunks) = (&engine, &reader_reqs, &churn_chunks);
        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    loop {
                        let batch = engine.profile_batch(reader_reqs).unwrap();
                        let epoch = batch[0].epoch;
                        seen.push(batch);
                        if epoch as usize >= CHURN_COMMITS || seen.len() > 5_000 {
                            return seen;
                        }
                    }
                })
            })
            .collect();
        // The monitoring surface must answer (and stay monotone) at any
        // point during churn, including while the writer holds its lock.
        let monitor = scope.spawn(move || {
            let mut last = 0u64;
            while engine.epoch() < CHURN_COMMITS as u64 {
                let now = engine.epoch();
                assert!(now >= last, "epoch went backwards: {last} -> {now}");
                last = now;
                let dump = format!("{engine:?}");
                assert!(dump.contains("epoch"), "{dump}");
                let _ = engine.commits();
                let _ = engine.needs_retrain();
            }
        });
        let writer = scope.spawn(move || {
            for chunk in churn_chunks {
                engine.refresh(chunk).unwrap();
            }
        });
        writer.join().expect("churn writer");
        monitor.join().expect("monitor thread");
        readers.into_iter().flat_map(|r| r.join().expect("reader thread")).collect()
    });

    assert_eq!(engine.epoch() as usize, CHURN_COMMITS);
    assert_eq!(engine.commits(), CHURN_COMMITS);

    let mut epochs_seen = std::collections::BTreeSet::new();
    for batch in &observed {
        let epoch = batch[0].epoch;
        // (a) Never torn: one epoch tag across the whole batch.
        assert!(batch.iter().all(|r| r.epoch == epoch), "torn batch at epoch {epoch}");
        // (b) Byte-identical to the serial replay of that epoch.
        let expected = replay.get(epoch as usize).unwrap_or_else(|| {
            panic!("impossible epoch {epoch} (only {CHURN_COMMITS} commits ran)")
        });
        assert_eq!(batch, expected, "epoch {epoch} must replay serially");
        epochs_seen.insert(epoch);
    }
    assert!(
        epochs_seen.contains(&(CHURN_COMMITS as u64)),
        "readers must observe the final epoch; saw {epochs_seen:?}"
    );

    // (c) The pre-churn pinned handle: still epoch 0, still serving the
    // exact pre-churn posterior, byte-identical answers after every
    // publish retired its epoch from the hot pointer.
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(pinned.snapshot(), &pinned_posterior, "pinned posterior must be untouched");
    assert_eq!(pinned.snapshot().num_users(), BASE_USERS);
    let through_pin = engine.profile_batch_on(&pinned, &reader_reqs).unwrap();
    assert_eq!(through_pin, replay[0], "pinned-handle serving must replay epoch 0 exactly");

    // The replay engine and the live engine converged on byte-identical
    // published artifacts — rapid concurrent churn changed nothing.
    assert_eq!(
        engine.encode_artifact().unwrap().as_slice(),
        replay_engine.encode_artifact().unwrap().as_slice(),
        "live churn must publish the same artifact bytes as the serial replay"
    );
}

#[test]
fn coalesced_serving_is_exact_under_churn() {
    // Coalescing + churn: whatever wave grouping and epoch timing the
    // race produces, every coalesced answer must equal a standalone
    // profile() call against *some* published epoch — pin this by
    // replaying each observed epoch serially.
    let total = BASE_USERS + 8 * USERS_PER_COMMIT;
    let (gaz, data) = corpus(total, 8103);
    let d0 = data.dataset.prefix(BASE_USERS);
    let (_, snapshot) = Mlp::new(
        &gaz,
        &d0,
        MlpConfig { iterations: 6, burn_in: 3, seed: 8103, ..Default::default() },
    )
    .unwrap()
    .run_with_snapshot();

    let reqs = requests(&data, 0..6);
    let churn_chunks: Vec<Vec<ProfileRequest>> = (0..8)
        .map(|c| {
            let start = (BASE_USERS + c * USERS_PER_COMMIT) as u32;
            requests(&data, start..start + USERS_PER_COMMIT as u32)
        })
        .collect();

    // Per-epoch replay of every reader request, served standalone.
    let replay_engine = ServingEngine::builder(&gaz).from_snapshot(snapshot.clone()).unwrap();
    let mut replay: Vec<Vec<ProfileResponse>> =
        vec![reqs.iter().map(|r| replay_engine.profile(r).unwrap()).collect()];
    for chunk in &churn_chunks {
        replay_engine.refresh(chunk).unwrap();
        replay.push(reqs.iter().map(|r| replay_engine.profile(r).unwrap()).collect());
    }

    let engine = ServingEngine::builder(&gaz).from_snapshot(snapshot).unwrap();
    let coalescer = engine.coalescer(4);
    let answers: Vec<Vec<(usize, ProfileResponse)>> = std::thread::scope(|scope| {
        let (engine, coalescer, reqs, churn_chunks) = (&engine, &coalescer, &reqs, &churn_chunks);
        let clients: Vec<_> = (0..3)
            .map(|c| {
                scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut round = 0usize;
                    loop {
                        let i = (c + round) % reqs.len();
                        let response = coalescer.profile(&reqs[i]).unwrap();
                        let done = response.epoch as usize >= churn_chunks.len();
                        got.push((i, response));
                        round += 1;
                        if done || round > 2_000 {
                            return got;
                        }
                    }
                })
            })
            .collect();
        let writer = scope.spawn(move || {
            for chunk in churn_chunks {
                engine.refresh(chunk).unwrap();
            }
        });
        writer.join().expect("churn writer");
        clients.into_iter().map(|h| h.join().expect("client")).collect()
    });

    for got in answers.iter().flatten() {
        let (i, response) = got;
        let epoch = response.epoch as usize;
        assert!(epoch < replay.len(), "impossible epoch {epoch}");
        assert_eq!(
            response, &replay[epoch][*i],
            "coalesced answer must equal the standalone call at its epoch"
        );
    }
    // And the fingerprint helper agrees batch-wise for the final epoch.
    let last: Vec<ProfileResponse> = reqs.iter().map(|r| engine.profile(r).unwrap()).collect();
    assert_eq!(response_determinism_hash(&last), response_determinism_hash(replay.last().unwrap()),);
}
