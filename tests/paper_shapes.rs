//! Integration tests asserting the *shapes* of the paper's headline
//! results (who wins, in which direction) on a moderate synthetic dataset.
//! Absolute numbers differ from the paper — the substrate is a generator,
//! not the 2011 crawl — but the orderings these tests pin down are the
//! claims the paper makes.

use mlp::eval::{ExperimentContext, HomeTask, Method, MultiLocationTask, RelationTask};
use mlp::prelude::MlpConfig;

fn ctx(seed: u64) -> ExperimentContext {
    let mut ctx = ExperimentContext::standard(800, 300, seed);
    ctx.mlp_config = MlpConfig { iterations: 12, burn_in: 6, seed, ..Default::default() };
    ctx
}

#[test]
fn table2_shape_full_mlp_wins_home_prediction() {
    let ctx = ctx(2012);
    let mut task = HomeTask::new(&ctx);
    task.folds_to_run = 1;
    let mlp = task.run_method(Method::Mlp).acc_at_100;
    let mlp_u = task.run_method(Method::MlpU).acc_at_100;
    let mlp_c = task.run_method(Method::MlpC).acc_at_100;
    let base_u = task.run_method(Method::BaseU).acc_at_100;
    let base_c = task.run_method(Method::BaseC).acc_at_100;

    // The paper's central claim: integrating both signals beats every
    // single-signal method. Against the MLP variants we allow a one-user
    // tie margin (the strong synthetic content signal can saturate MLP_C
    // on some seeds); against the baselines the win must be strict.
    let eps = 0.02;
    assert!(mlp > mlp_u - eps, "MLP {mlp} vs MLP_U {mlp_u}");
    assert!(mlp > mlp_c - eps, "MLP {mlp} vs MLP_C {mlp_c}");
    assert!(mlp > base_u, "MLP {mlp} vs BaseU {base_u}");
    assert!(mlp > base_c, "MLP {mlp} vs BaseC {base_c}");
    // And the content-side claim: MLP_C beats BaseC (multiple locations +
    // noise handling, no hand-labeled local words).
    assert!(mlp_c > base_c, "MLP_C {mlp_c} vs BaseC {base_c}");
}

#[test]
fn table3_shape_mlp_discovers_multiple_locations() {
    let ctx = ctx(2013);
    let task = MultiLocationTask::new(&ctx);
    let mlp = task.run_method(Method::Mlp);
    let base_u = task.run_method(Method::BaseU);
    let base_c = task.run_method(Method::BaseC);

    // Recall is where multi-location modeling shows (paper: +14%).
    let mlp_dr = mlp.dr(2).unwrap();
    assert!(mlp_dr > base_u.dr(2).unwrap(), "DR@2: MLP {mlp_dr} vs BaseU");
    assert!(mlp_dr > base_c.dr(2).unwrap(), "DR@2: MLP {mlp_dr} vs BaseC");
    // Precision too (paper: +11%).
    let mlp_dp = mlp.dp(2).unwrap();
    assert!(mlp_dp > base_u.dp(2).unwrap(), "DP@2: MLP {mlp_dp} vs BaseU");
}

#[test]
fn fig7_shape_baseline_recall_is_flat_in_k() {
    let ctx = ctx(2014);
    let task = MultiLocationTask::new(&ctx);
    let mlp = task.run_method(Method::Mlp);
    let base_u = task.run_method(Method::BaseU);
    // "recalls of the baseline methods do not increase as much as those of
    // our methods, when K increases" (Sec. 5.2).
    let mlp_gain = mlp.dr(3).unwrap() - mlp.dr(1).unwrap();
    let base_gain = base_u.dr(3).unwrap() - base_u.dr(1).unwrap();
    assert!(mlp_gain > base_gain, "DR gain K=1→3: MLP {mlp_gain} vs BaseU {base_gain}");
}

#[test]
fn fig8_shape_mlp_explains_relationships_better_than_homes() {
    let ctx = ctx(2015);
    let task = RelationTask::new(&ctx);
    let mlp = task.run_mlp();
    let base = task.run_base();
    let (m, b) = (mlp.acc_at(100.0).unwrap(), base.acc_at(100.0).unwrap());
    assert!(m > b, "explanation ACC@100: MLP {m} vs Base {b}");
    // "ACC@50 of MLP is almost the same as ACC@100" (Sec. 5.3).
    let m50 = mlp.acc_at(50.0).unwrap();
    assert!(m - m50 < 0.15, "MLP ACC@50 {m50} vs ACC@100 {m}");
}

#[test]
fn fig5_shape_gibbs_converges_quickly() {
    let ctx = ctx(2016);
    let result =
        mlp::eval::runner::run_mlp(&ctx.gaz, &ctx.data.dataset, ctx.mlp_config_for(Method::Mlp));
    // The paper observes convergence after ~14 iterations; grant slack but
    // require the home-change rate to collapse within the run.
    let first = result.diagnostics.iterations.first().unwrap().home_change_fraction;
    let last = result.diagnostics.iterations.last().unwrap().home_change_fraction;
    assert!(last < first.max(0.02), "no convergence: first {first}, last {last}");
    assert!(
        result.diagnostics.convergence_iteration(0.05).is_some(),
        "home-change never stabilised below 5%"
    );
}

#[test]
fn fig3a_shape_following_probability_decays_as_power_law() {
    let ctx = ctx(2017);
    let curve = mlp::eval::observations::following_curve(&ctx.data.dataset, &ctx.gaz, 50.0);
    let fit = curve.fit.expect("curve fits");
    assert!(fit.alpha < -0.1, "exponent {}", fit.alpha);
    assert!(fit.alpha > -2.0, "Twitter-like shallowness expected, got {}", fit.alpha);
}
