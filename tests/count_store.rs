//! Property-based oracle equivalence for the columnar count stores.
//!
//! The CSR [`VenueCountStore`] (sparse rows + dense fallback) and the flat
//! [`Csr`] user-count arena replaced the seed's `HashMap`/`Vec<Vec<_>>`
//! state. This suite drives both through random increment / decrement /
//! query sequences against the straightforward reference models they
//! replaced, and requires identical counts, totals, and row iterations at
//! every step — so a layout bug (dense-threshold edge, binary-search
//! off-by-one, slot aliasing) cannot hide behind the sampler's statistics.

use mlp::core::count_store::VenueCountStore;
use mlp::gazetteer::{CityId, VenueId};
use mlp::social::Csr;
use proptest::prelude::*;
use std::collections::HashMap;

/// Ops are `(support index, kind)` with kind 0 = add one token, 1 = remove
/// one token (removals are skipped when the oracle holds no count there —
/// removal would legitimately panic).
type Ops = Vec<(usize, u8)>;

fn arb_ops() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32)>, Ops)> {
    // Small vocabularies force the dense fallback; larger ones stay
    // sparse — both paths get exercised across cases.
    (1u32..8, 1u32..40).prop_flat_map(|(num_cities, num_venues)| {
        let support = prop::collection::vec((0..num_cities, 0..num_venues), 1..60);
        let ops = prop::collection::vec((0usize..1000, 0u8..2), 0..200);
        (Just(num_cities), Just(num_venues), support, ops)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random add/remove/query sequences on the venue store match a
    /// HashMap reference model exactly: every point count, every city
    /// total, and every row iteration (sorted, non-zero entries only).
    #[test]
    fn venue_store_matches_hashmap_oracle(
        (num_cities, num_venues, support, ops) in arb_ops()
    ) {
        let mut store =
            VenueCountStore::build(num_cities as usize, num_venues as usize, support.iter().copied());
        let mut oracle: HashMap<(u32, u32), u32> = HashMap::new();
        let mut oracle_totals: HashMap<u32, u32> = HashMap::new();

        for &(i, kind) in &ops {
            let is_add = kind == 0;
            let (l, v) = support[i % support.len()];
            let (city, venue) = (CityId(l), VenueId(v));
            if is_add {
                store.add(city, venue);
                *oracle.entry((l, v)).or_insert(0) += 1;
                *oracle_totals.entry(l).or_insert(0) += 1;
            } else if oracle.get(&(l, v)).copied().unwrap_or(0) > 0 {
                store.remove(city, venue);
                *oracle.get_mut(&(l, v)).unwrap() -= 1;
                *oracle_totals.get_mut(&l).unwrap() -= 1;
            }
            // Point queries agree after every mutation.
            prop_assert_eq!(
                store.get(city, venue),
                oracle.get(&(l, v)).copied().unwrap_or(0)
            );
        }

        // Full sweep: totals, every queryable pair, and row iterations.
        for l in 0..num_cities {
            let city = CityId(l);
            prop_assert_eq!(
                store.total(city),
                oracle_totals.get(&l).copied().unwrap_or(0),
                "city {} total", l
            );
            for v in 0..num_venues {
                prop_assert_eq!(
                    store.get(city, VenueId(v)),
                    oracle.get(&(l, v)).copied().unwrap_or(0),
                    "count at ({}, {})", l, v
                );
            }
            let mut expect: Vec<(u32, u32)> = oracle
                .iter()
                .filter(|&(&(cl, _), &c)| cl == l && c > 0)
                .map(|(&(_, v), &c)| (v, c))
                .collect();
            expect.sort_unstable();
            let got: Vec<(u32, u32)> = store.row(city).collect();
            prop_assert_eq!(got, expect, "row iteration for city {}", l);
        }
    }

    /// Tiny vocabularies are the dense-fallback edge: with
    /// `num_venues < 16` the threshold `num_venues / 16` is zero, so
    /// *every* city with non-empty support crosses it and goes dense.
    /// The store must stay oracle-equivalent there — the panic-safety
    /// proptest for the dense path's bounds checks (a dense row must
    /// never alias a neighbor on out-of-range ids, rows must iterate
    /// sorted-non-zero exactly like the sparse path).
    #[test]
    fn tiny_vocab_all_dense_matches_oracle(
        num_venues in 1u32..16,
        num_cities in 1u32..6,
        raw_support in prop::collection::vec((0u32..6, 0u32..16), 1..30),
        ops in prop::collection::vec((0usize..1000, 0u8..2), 0..120),
    ) {
        let support: Vec<(u32, u32)> = raw_support
            .into_iter()
            .map(|(l, v)| (l % num_cities, v % num_venues))
            .collect();
        let store = VenueCountStore::build(
            num_cities as usize,
            num_venues as usize,
            support.iter().copied(),
        );
        // The dense-threshold claim itself: every supported city is dense,
        // so the slot space is exactly (dense cities) × |V|.
        let mut supported: Vec<u32> = support.iter().map(|&(l, _)| l).collect();
        supported.sort_unstable();
        supported.dedup();
        prop_assert_eq!(
            store.num_slots(),
            supported.len() * num_venues as usize,
            "every non-empty city must go dense below 16 venues"
        );

        let mut store = store;
        let mut oracle: HashMap<(u32, u32), u32> = HashMap::new();
        for &(i, kind) in &ops {
            let (l, v) = support[i % support.len()];
            let (city, venue) = (CityId(l), VenueId(v));
            if kind == 0 {
                store.add(city, venue);
                *oracle.entry((l, v)).or_insert(0) += 1;
            } else if oracle.get(&(l, v)).copied().unwrap_or(0) > 0 {
                store.remove(city, venue);
                *oracle.get_mut(&(l, v)).unwrap() -= 1;
            }
        }
        for l in 0..num_cities {
            let city = CityId(l);
            // Out-of-vocabulary reads on a dense row are misses, never
            // aliases into the next row.
            prop_assert_eq!(store.get(city, VenueId(num_venues)), 0);
            prop_assert_eq!(store.get(city, VenueId(u32::MAX)), 0);
            for v in 0..num_venues {
                prop_assert_eq!(
                    store.get(city, VenueId(v)),
                    oracle.get(&(l, v)).copied().unwrap_or(0),
                    "count at ({}, {})", l, v
                );
            }
            let mut expect: Vec<(u32, u32)> = oracle
                .iter()
                .filter(|&(&(cl, _), &c)| cl == l && c > 0)
                .map(|(&(_, v), &c)| (v, c))
                .collect();
            expect.sort_unstable();
            let got: Vec<(u32, u32)> = store.row(city).collect();
            prop_assert_eq!(got, expect, "row iteration for city {}", l);
            let total: u32 = oracle
                .iter()
                .filter(|&(&(cl, _), _)| cl == l)
                .map(|(_, &c)| c)
                .sum();
            prop_assert_eq!(store.total(city), total, "total for city {}", l);
        }
    }

    /// The flat user-count arena (CSR slab) behaves exactly like the
    /// `Vec<Vec<u32>>` it replaced under random row updates.
    #[test]
    fn user_arena_matches_nested_vec_oracle(
        lens in prop::collection::vec(0usize..6, 1..20),
        ops in prop::collection::vec((0usize..1000, 0usize..1000, 0u32..5), 0..150),
    ) {
        let mut arena: Csr<u32> = Csr::with_row_lens(lens.iter().copied());
        let mut oracle: Vec<Vec<u32>> = lens.iter().map(|&n| vec![0u32; n]).collect();

        for &(u, c, delta) in &ops {
            let u = u % lens.len();
            if lens[u] == 0 {
                continue;
            }
            let c = c % lens[u];
            arena.row_mut(u)[c] += delta;
            oracle[u][c] += delta;
            // Slot indexing addresses the same cell the row view does.
            prop_assert_eq!(arena.values()[arena.slot(u, c)], oracle[u][c]);
        }
        for (u, row) in oracle.iter().enumerate() {
            prop_assert_eq!(arena.row(u), row.as_slice(), "row {}", u);
        }
        prop_assert_eq!(
            arena.num_values(),
            lens.iter().sum::<usize>()
        );
    }
}
