//! Hot-path allocation regression tests.
//!
//! The seed's `SamplerState::venue_count_row` materialised and sorted a
//! fresh `Vec` on every call — one allocation per city per snapshot
//! freeze, and a latent trap for any future hot-loop caller. After the CSR
//! port the row is a borrowed iterator over the count arena; this suite
//! pins that with a counting global allocator: reading every φ row (and a
//! warmed-up Gibbs sweep) must perform **zero** heap allocations.
//!
//! This file is its own test binary with exactly one `#[test]`, so no
//! concurrent test thread can pollute the counter.

use mlp::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every allocation (and growth reallocation) in the process.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn hot_paths_do_not_allocate() {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 200, seed: 77, ..Default::default() })
            .generate();
    let config = MlpConfig::default();
    let adj = mlp::social::Adjacency::build(&data.dataset);
    let cand = mlp::core::Candidacy::build(&gaz, &data.dataset, &adj, &config);
    let random = mlp::core::RandomModels::learn(&data.dataset, gaz.num_venues());
    let mut sampler =
        mlp::core::sampler::GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
    // Warm up: a couple of sweeps size the reusable weight buffer to the
    // largest candidate list it will ever see.
    for _ in 0..2 {
        sampler.sweep();
    }

    // venue_count_row is a borrowed view over the CSR arena — reading
    // every city's full φ row must not touch the heap.
    let mut checksum = 0u64;
    let rows = allocations(|| {
        for l in 0..gaz.num_cities() {
            for (v, c) in sampler.state.venue_count_row(CityId(l as u32)) {
                checksum = checksum.wrapping_add((v as u64) << 32 | c as u64);
            }
        }
    });
    assert!(std::hint::black_box(checksum) > 0, "rows were non-empty");
    assert_eq!(rows, 0, "venue_count_row allocated on the hot path");

    // And the same for point lookups across the whole support.
    let lookups = allocations(|| {
        for m in &data.dataset.mentions {
            for &city in cand.candidates(m.user) {
                checksum = checksum.wrapping_add(sampler.state.venue_count(city, m.venue) as u64);
            }
        }
    });
    std::hint::black_box(checksum);
    assert_eq!(lookups, 0, "venue_count allocated on the hot path");

    // A warmed-up sequential sweep runs entirely in pre-sized arenas and
    // the reused weight buffer.
    let sweep = allocations(|| {
        sampler.sweep();
    });
    assert_eq!(sweep, 0, "a warmed-up Gibbs sweep allocated {sweep} times");
}
