//! Crash-safety acceptance suite for the durable serving path: a
//! file-backed `ServingEngine` must (a) fsync every committed delta to
//! the sidecar write-ahead log before publishing it, so reopening after
//! a kill -9 replays the exact committed state; (b) truncate torn log
//! tails without error and without ever resurrecting an uncommitted
//! delta; (c) fold the log into a fresh base artifact atomically
//! (checkpoint), with the crash window between base replacement and log
//! reset detected by fingerprint and the stale log set aside, never
//! replayed.

use mlp::core::engine::response_determinism_hash;
use mlp::core::snapshot::UserPosterior;
use mlp::core::wal::{artifact_fingerprint, write_atomic, DeltaWal, RECORD_MAGIC, WAL_HEADER_LEN};
use mlp::prelude::*;
use std::path::{Path, PathBuf};

fn corpus(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    (gaz, data)
}

fn quick_config(seed: u64) -> MlpConfig {
    MlpConfig { iterations: 4, burn_in: 2, seed, ..Default::default() }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlp_crash_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Requests for users `range`, with edges restricted to the first `known`
/// users (the posterior's citable population).
fn requests(
    data: &GeneratedData,
    range: std::ops::Range<u32>,
    known: usize,
) -> Vec<ProfileRequest> {
    let ids: Vec<UserId> = range.map(UserId).collect();
    let mut reqs = ProfileRequest::batch_from_dataset(&data.dataset, &ids);
    for r in &mut reqs {
        r.observations.neighbors.retain(|p| p.index() < known);
    }
    reqs
}

/// Cold-trains on the first `trained` users and writes the base artifact.
fn write_base(gaz: &Gazetteer, data: &GeneratedData, trained: usize, seed: u64, path: &Path) {
    ServingEngine::builder(gaz)
        .mlp_config(quick_config(seed))
        .train(&data.dataset.prefix(trained))
        .unwrap()
        .write_artifact(path)
        .unwrap();
}

#[test]
fn reopen_replays_the_committed_log_byte_identically() {
    let dir = tmp_dir("replay");
    let path = dir.join("model.mlps");
    let (gaz, data) = corpus(100, 9001);
    write_base(&gaz, &data, 60, 9001, &path);

    // The "pre-crash" run: two committed refresh waves, fsync'd to the
    // log but never folded back into the artifact file.
    let engine = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    assert!(engine.is_durable());
    assert!(!engine.recovery_report().unwrap().recovered_anything(), "clean open");
    let ids: Vec<UserId> = (60..80).map(UserId).collect();
    engine.refresh_from_dataset(&data.dataset, &ids, 10).unwrap();
    assert_eq!(engine.epoch(), 2);
    assert!(engine.log_bytes().unwrap() > WAL_HEADER_LEN, "commits must hit the log");

    let committed = engine.snapshot().try_encode().unwrap();
    let reqs = requests(&data, 80..100, 60);
    let committed_hash = response_determinism_hash(&engine.profile_batch(&reqs).unwrap());
    drop(engine); // the kill: nothing else reaches the artifact file

    // Recovery-on-open: the base artifact plus the committed log must
    // reproduce the pre-crash state exactly.
    let reopened = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    let report = reopened.recovery_report().unwrap();
    assert_eq!(report.replayed_records, 2);
    assert_eq!(report.replayed_users, 20);
    assert_eq!(report.torn_bytes_dropped, 0);
    assert!(report.stale_log_moved_to.is_none());
    assert_eq!(reopened.epoch(), 0, "recovered state is epoch 0 of the new run");
    assert_eq!(reopened.snapshot().num_users(), 80);
    assert_eq!(
        reopened.snapshot().try_encode().unwrap(),
        committed,
        "recovered posterior must be byte-identical to the committed pre-crash state"
    );
    assert_eq!(
        response_determinism_hash(&reopened.profile_batch(&reqs).unwrap()),
        committed_hash,
        "recovered engine must serve bit-identically"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn torn_tail_is_dropped_without_error() {
    let dir = tmp_dir("torn");
    let path = dir.join("model.mlps");
    let (gaz, data) = corpus(80, 9003);
    write_base(&gaz, &data, 60, 9003, &path);

    let engine = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    let ids: Vec<UserId> = (60..70).map(UserId).collect();
    engine.refresh_from_dataset(&data.dataset, &ids, 10).unwrap();
    let committed = engine.snapshot().try_encode().unwrap();
    let committed_log = engine.log_bytes().unwrap();
    drop(engine);

    // A crash mid-append: a complete frame header promising a payload
    // that never fully hit the disk.
    let wal_path = DeltaWal::sidecar_path(&path);
    let mut raw = std::fs::read(&wal_path).unwrap();
    raw.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    raw.extend_from_slice(&10_000u64.to_le_bytes());
    raw.extend_from_slice(&0xBADD_CAFEu32.to_le_bytes());
    raw.extend_from_slice(&[0x5A; 21]);
    std::fs::write(&wal_path, &raw).unwrap();

    let reopened = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    let report = reopened.recovery_report().unwrap();
    assert_eq!(report.replayed_records, 1, "the committed record survives");
    assert_eq!(report.torn_bytes_dropped, 16 + 21);
    assert_eq!(reopened.snapshot().try_encode().unwrap(), committed);
    assert_eq!(
        std::fs::metadata(&wal_path).unwrap().len(),
        committed_log,
        "the torn tail must be truncated off the file"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn failed_refresh_logs_and_publishes_nothing() {
    let dir = tmp_dir("failed_refresh");
    let path = dir.join("model.mlps");
    let (gaz, data) = corpus(60, 9005);
    write_base(&gaz, &data, 60, 9005, &path);

    let engine = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    let log_before = engine.log_bytes().unwrap();
    let bad = ProfileRequest::new(NewUserObservations {
        neighbors: vec![UserId(1_000)],
        mentions: vec![],
    });
    engine.refresh(std::slice::from_ref(&bad)).unwrap_err();
    assert_eq!(engine.epoch(), 0, "failed refresh must not publish");
    assert_eq!(engine.log_bytes().unwrap(), log_before, "failed refresh must not extend the log");

    // And the log on disk replays to the unchanged base.
    drop(engine);
    let reopened = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    assert_eq!(reopened.recovery_report().unwrap().replayed_records, 0);
    assert_eq!(reopened.snapshot().num_users(), 60);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn checkpoint_folds_the_log_into_a_fresh_base() {
    let dir = tmp_dir("checkpoint");
    let path = dir.join("model.mlps");
    let (gaz, data) = corpus(90, 9007);
    write_base(&gaz, &data, 60, 9007, &path);

    // Threshold 1: every committed wave immediately compacts.
    let engine =
        ServingEngine::builder(&gaz).wal_compact_threshold(1).from_artifact_file(&path).unwrap();
    let ids: Vec<UserId> = (60..75).map(UserId).collect();
    engine.refresh_from_dataset(&data.dataset, &ids, 15).unwrap();
    assert_eq!(
        engine.log_bytes().unwrap(),
        WAL_HEADER_LEN,
        "compaction must leave an empty (header-only) log"
    );
    let state = engine.snapshot().try_encode().unwrap();

    // The artifact file alone now carries the full state…
    let on_disk = std::fs::read(&path).unwrap();
    assert_eq!(bytes::Bytes::from(on_disk), state, "checkpoint must fold the log into the base");
    drop(engine);

    // …so reopening replays nothing and loses nothing.
    let reopened = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    let report = reopened.recovery_report().unwrap();
    assert_eq!(report.replayed_records, 0);
    assert!(report.stale_log_moved_to.is_none(), "a completed checkpoint leaves no stale log");
    assert_eq!(reopened.snapshot().num_users(), 75);
    assert_eq!(reopened.snapshot().try_encode().unwrap(), state);

    // The explicit entry point works too (and is a no-op on an engine
    // with an empty log only in effect, not in return value).
    let more: Vec<UserId> = (75..90).map(UserId).collect();
    reopened.refresh_from_dataset(&data.dataset, &more, 15).unwrap();
    assert!(reopened.log_bytes().unwrap() > WAL_HEADER_LEN);
    assert!(reopened.checkpoint().unwrap());
    assert_eq!(reopened.log_bytes().unwrap(), WAL_HEADER_LEN);

    // Non-durable engines report `false` instead of erroring.
    let in_memory = ServingEngine::builder(&gaz)
        .mlp_config(quick_config(9007))
        .train(&data.dataset.prefix(60))
        .unwrap();
    assert!(!in_memory.checkpoint().unwrap());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn stale_log_is_set_aside_when_the_base_moved_on() {
    let dir = tmp_dir("stale");
    let path = dir.join("model.mlps");
    let (gaz, data) = corpus(80, 9009);
    write_base(&gaz, &data, 60, 9009, &path);

    let engine = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    let ids: Vec<UserId> = (60..70).map(UserId).collect();
    engine.refresh_from_dataset(&data.dataset, &ids, 10).unwrap();
    let full_state = engine.snapshot().try_encode().unwrap();
    drop(engine);

    // The checkpoint crash window: the base artifact was atomically
    // replaced with the full recovered state, but the process died
    // before resetting the log — the log on disk still cites the old
    // base by fingerprint.
    write_atomic(&path, full_state.as_slice()).unwrap();

    let reopened = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    let report = reopened.recovery_report().unwrap();
    assert_eq!(report.replayed_records, 0, "a stale log must never replay");
    let stale = report.stale_log_moved_to.clone().expect("stale log set aside");
    assert!(stale.exists(), "the stale log is preserved, not deleted");
    assert_eq!(
        reopened.snapshot().try_encode().unwrap(),
        full_state,
        "the new base already contains the stale log's deltas — nothing lost"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// One synthetic committed delta (no training required — these tests are
/// about the log format, not inference).
fn sample_delta(base_users: u32, seed: u32) -> SnapshotDelta {
    let mut d = SnapshotDelta::new(base_users);
    for k in 0..=(seed % 2) {
        d.push_user(UserPosterior {
            candidates: vec![CityId(seed % 5), CityId(seed % 5 + 3 + k)],
            gammas: vec![0.5 + k as f64, 0.25],
            mean_counts: vec![1.0 + seed as f64, 2.0],
            mean_total: 3.0 + seed as f64,
            gamma_total: 0.75 + k as f64,
            home: CityId(seed % 5),
        });
    }
    d.add_venue_weights(&[(CityId(seed % 5), VenueId(seed % 7), 0.5 + seed as f64)]);
    d
}

/// Builds a log of `n` committed deltas; returns its raw bytes, the
/// deltas, and each record's end offset (the committed prefix boundaries).
fn build_log(dir: &Path, fp: u64, n: u32) -> (Vec<u8>, Vec<SnapshotDelta>, Vec<u64>) {
    let path = dir.join("built.wal");
    let mut wal = DeltaWal::create(&path, fp).unwrap();
    let mut deltas = Vec::new();
    let mut ends = Vec::new();
    for seed in 0..n {
        let d = sample_delta(10 + seed, seed + 1);
        wal.append(&d).unwrap();
        deltas.push(d);
        ends.push(wal.len());
    }
    drop(wal);
    let raw = std::fs::read(&path).unwrap();
    (raw, deltas, ends)
}

#[test]
fn truncation_at_every_byte_offset_recovers_exactly_the_committed_prefix() {
    let dir = tmp_dir("exhaustive_cut");
    let fp = artifact_fingerprint(b"the base artifact");
    let (raw, deltas, ends) = build_log(&dir, fp, 3);
    let path = dir.join("cut.wal");

    for cut in 0..=raw.len() {
        std::fs::write(&path, &raw[..cut]).unwrap();
        let (_, rec) = DeltaWal::recover(&path, fp)
            .unwrap_or_else(|e| panic!("cut at {cut} must not error: {e}"));
        let expected = ends.iter().filter(|&&end| end <= cut as u64).count();
        assert_eq!(
            rec.deltas,
            deltas[..expected],
            "cut at byte {cut}: exactly the committed prefix must survive"
        );
        if (cut as u64) < WAL_HEADER_LEN {
            // Torn header: indistinguishable from a foreign log, so it is
            // set aside and a fresh one created — still zero resurrection.
            assert!(rec.created, "cut at {cut}: torn header must yield a fresh log");
        } else {
            let kept = std::fs::metadata(&path).unwrap().len();
            let boundary = ends[..expected].last().copied().unwrap_or(WAL_HEADER_LEN);
            assert_eq!(kept, boundary, "cut at {cut}: torn tail must be truncated off");
        }
    }
    std::fs::remove_dir_all(dir).ok();
}

mod wal_proptests {
    use super::*;
    use mlp::core::wal::WalError;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CASE: AtomicUsize = AtomicUsize::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite invariant: decode-after-truncation (with an optional
        /// extra bit flip anywhere in what remains) either recovers a
        /// committed prefix or fails typed — it never panics and never
        /// resurrects a delta past the damage point.
        #[test]
        fn torn_or_flipped_logs_never_panic_or_resurrect(
            records in 0u32..4,
            cut_frac in 0.0f64..1.0,
            flip in prop::option::of((0.0f64..1.0, 0u8..8)),
        ) {
            let case = CASE.fetch_add(1, Ordering::Relaxed);
            let dir = tmp_dir(&format!("prop_cut_{case}"));
            let fp = artifact_fingerprint(b"proptest base");
            let (raw, deltas, _) = build_log(&dir, fp, records);

            let cut = ((raw.len() as f64) * cut_frac) as usize;
            let mut damaged = raw[..cut.min(raw.len())].to_vec();
            if let Some((pos_frac, bit)) = flip {
                if !damaged.is_empty() {
                    let pos = (((damaged.len() as f64) * pos_frac) as usize).min(damaged.len() - 1);
                    damaged[pos] ^= 1 << bit;
                }
            }
            let path = dir.join("damaged.wal");
            std::fs::write(&path, &damaged).unwrap();

            match DeltaWal::recover(&path, fp) {
                Ok((_, rec)) => {
                    // Whatever survived must be a verbatim prefix of what
                    // was committed — no reordering, no gaps, and nothing
                    // from beyond the damage resurrected.
                    prop_assert!(rec.deltas.len() <= deltas.len());
                    prop_assert_eq!(&rec.deltas[..], &deltas[..rec.deltas.len()]);
                }
                // A CRC-valid record with an unparseable payload is the
                // one typed failure; damage must never panic.
                Err(WalError::Record(_) | WalError::Io(_)) => {}
                Err(other) => panic!("unexpected error variant: {other}"),
            }
            std::fs::remove_dir_all(dir).ok();
        }
    }
}
