//! Zero-copy snapshot acceptance suite for the v5 artifact format: a
//! mapped open must (a) serve byte-identically to the copying decode of
//! the same artifact; (b) replay WAL deltas as an overlay on the mapped
//! base without materializing it; (c) survive checkpoints by atomically
//! remapping the freshly written base; and (d) reject hostile artifacts
//! — truncated, bit-flipped, wrong-CRC — with typed errors, never a
//! panic and never undefined behaviour.

use bytes::Bytes;
use mlp::core::engine::{response_determinism_hash, OpenMode};
use mlp::core::snapshot::{
    inspect_artifact, Integrity, PosteriorSnapshot, SnapshotError, CURRENT_ARTIFACT_VERSION,
};
use mlp::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn corpus(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    (gaz, data)
}

fn quick_config(seed: u64) -> MlpConfig {
    MlpConfig { iterations: 4, burn_in: 2, seed, ..Default::default() }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlp_zc_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Requests for users `range`, with edges restricted to the first `known`
/// users (the posterior's citable population).
fn requests(
    data: &GeneratedData,
    range: std::ops::Range<u32>,
    known: usize,
) -> Vec<ProfileRequest> {
    let ids: Vec<UserId> = range.map(UserId).collect();
    let mut reqs = ProfileRequest::batch_from_dataset(&data.dataset, &ids);
    for r in &mut reqs {
        r.observations.neighbors.retain(|p| p.index() < known);
    }
    reqs
}

/// Cold-trains on the first `trained` users and writes the base artifact.
fn write_base(gaz: &Gazetteer, data: &GeneratedData, trained: usize, seed: u64, path: &Path) {
    ServingEngine::builder(gaz)
        .mlp_config(quick_config(seed))
        .train(&data.dataset.prefix(trained))
        .unwrap()
        .write_artifact(path)
        .unwrap();
}

/// The headline acceptance criterion: an engine serving from borrowed
/// mapped slabs answers every profile request byte-identically to an
/// engine that materialized the same artifact through the copying
/// decode, and `Auto` routes a v5 artifact onto the mapped path.
#[test]
fn mapped_engine_serves_byte_identically_to_copied() {
    let dir = tmp_dir("identical");
    let path = dir.join("model.mlps");
    let (gaz, data) = corpus(120, 11001);
    write_base(&gaz, &data, 80, 11001, &path);
    assert_eq!(
        mlp::core::snapshot::artifact_version(&std::fs::read(&path).unwrap()),
        Some(CURRENT_ARTIFACT_VERSION),
        "the writer emits v5"
    );

    let mapped =
        ServingEngine::builder(&gaz).open_mode(OpenMode::Mapped).from_artifact_file(&path).unwrap();
    let copied =
        ServingEngine::builder(&gaz).open_mode(OpenMode::Copied).from_artifact_file(&path).unwrap();
    let auto = ServingEngine::builder(&gaz).from_artifact_file(&path).unwrap();
    let structural = ServingEngine::builder(&gaz)
        .open_mode(OpenMode::Mapped)
        .integrity(Integrity::Structural)
        .from_artifact_file(&path)
        .unwrap();
    assert!(mapped.is_mapped(), "Mapped must borrow the file");
    assert!(!copied.is_mapped(), "Copied must own its slabs");
    assert!(auto.is_mapped(), "Auto routes v5 onto the mapped path");
    assert!(structural.is_mapped());

    let reqs = requests(&data, 80..120, 80);
    let mapped_hash = response_determinism_hash(&mapped.profile_batch(&reqs).unwrap());
    let copied_hash = response_determinism_hash(&copied.profile_batch(&reqs).unwrap());
    let auto_hash = response_determinism_hash(&auto.profile_batch(&reqs).unwrap());
    let structural_hash = response_determinism_hash(&structural.profile_batch(&reqs).unwrap());
    assert_eq!(mapped_hash, copied_hash, "mapped and copied engines must agree bit-for-bit");
    assert_eq!(auto_hash, copied_hash);
    assert_eq!(structural_hash, copied_hash, "verification policy must not change answers");
    drop(structural);

    // The mapped snapshot also re-encodes to the exact artifact bytes.
    assert_eq!(
        mapped.snapshot().try_encode().unwrap().as_slice(),
        copied.snapshot().try_encode().unwrap().as_slice()
    );
    drop((mapped, copied, auto));
    std::fs::remove_dir_all(dir).ok();
}

/// Committed WAL deltas replay as an overlay on the mapped base: the
/// reopened engine stays mapped and reproduces the pre-crash state.
#[test]
fn wal_deltas_overlay_the_mapped_base_on_reopen() {
    let dir = tmp_dir("overlay");
    let path = dir.join("model.mlps");
    let (gaz, data) = corpus(100, 11002);
    write_base(&gaz, &data, 60, 11002, &path);

    let engine =
        ServingEngine::builder(&gaz).open_mode(OpenMode::Mapped).from_artifact_file(&path).unwrap();
    assert!(engine.is_mapped() && engine.is_durable());
    let ids: Vec<UserId> = (60..80).map(UserId).collect();
    engine.refresh_from_dataset(&data.dataset, &ids, 10).unwrap();
    assert_eq!(engine.epoch(), 2);
    let reqs = requests(&data, 80..100, 60);
    let committed_hash = response_determinism_hash(&engine.profile_batch(&reqs).unwrap());
    let committed = engine.snapshot().try_encode().unwrap();
    drop(engine); // the kill: deltas live only in the log

    let reopened =
        ServingEngine::builder(&gaz).open_mode(OpenMode::Mapped).from_artifact_file(&path).unwrap();
    assert!(reopened.is_mapped(), "replaying the log must not force a materialized base");
    assert_eq!(reopened.recovery_report().unwrap().replayed_records, 2);
    assert_eq!(reopened.snapshot().try_encode().unwrap().as_slice(), committed.as_slice());
    assert_eq!(response_determinism_hash(&reopened.profile_batch(&reqs).unwrap()), committed_hash);
    drop(reopened);
    std::fs::remove_dir_all(dir).ok();
}

/// A checkpoint folds the log into a fresh v5 base and atomically remaps
/// it — the engine keeps serving from borrowed slabs, the log is reset,
/// and answers are unchanged.
#[test]
fn checkpoint_remaps_the_fresh_base() {
    let dir = tmp_dir("remap");
    let path = dir.join("model.mlps");
    let (gaz, data) = corpus(100, 11003);
    write_base(&gaz, &data, 60, 11003, &path);

    let engine =
        ServingEngine::builder(&gaz).open_mode(OpenMode::Mapped).from_artifact_file(&path).unwrap();
    let ids: Vec<UserId> = (60..80).map(UserId).collect();
    engine.refresh_from_dataset(&data.dataset, &ids, 10).unwrap();
    let reqs = requests(&data, 80..100, 60);
    let before = response_determinism_hash(&engine.profile_batch(&reqs).unwrap());

    assert!(engine.checkpoint().unwrap(), "a dirty log must fold");
    assert!(engine.is_mapped(), "checkpoint must remap, not materialize");
    let after = response_determinism_hash(&engine.profile_batch(&reqs).unwrap());
    assert_eq!(before, after, "remapping must not change a single answer");

    // The folded artifact carries no residual delta records.
    let info = inspect_artifact(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(info.version, CURRENT_ARTIFACT_VERSION);
    assert_eq!(info.delta_records, 0, "deltas folded into the base sections");
    drop(engine);
    std::fs::remove_dir_all(dir).ok();
}

/// The deterministic corruption sweep: a bit flip in the header or in
/// any section body, and a truncation at every structural boundary, must
/// fail typed on both read paths — mapped and copied — never panic.
#[test]
fn hostile_v5_artifacts_fail_typed_on_both_paths() {
    let dir = tmp_dir("hostile");
    let (gaz, data) = corpus(60, 11004);
    let engine = ServingEngine::builder(&gaz)
        .mlp_config(quick_config(11004))
        .train(&data.dataset.prefix(60))
        .unwrap();
    let raw = engine.encode_artifact().unwrap().to_vec();
    let original = PosteriorSnapshot::decode(Bytes::from(raw.clone())).unwrap();
    let info = inspect_artifact(&raw).unwrap();

    let try_both = |bytes: &[u8], tag: &str| -> SnapshotError {
        let copied_err = PosteriorSnapshot::decode(Bytes::from(bytes.to_vec()))
            .expect_err(&format!("{tag}: copying decode must reject"));
        let path = dir.join("hostile.mlps");
        std::fs::write(&path, bytes).unwrap();
        let map = Arc::new(mmap_lite::Mmap::open(&path).unwrap());
        let mapped_err = PosteriorSnapshot::open_mapped(&map)
            .expect_err(&format!("{tag}: mapped open must reject"));
        assert_eq!(copied_err, mapped_err, "{tag}: both paths agree on the failure");
        mapped_err
    };

    // A flip anywhere in the checksummed header.
    for at in [0usize, 5, 70, 100, 500] {
        let mut bad = raw.clone();
        bad[at] ^= 0x04;
        try_both(&bad, &format!("header flip @{at}"));
    }
    // A flip in the middle of every section body.
    for s in &info.sections {
        if s.len == 0 {
            continue;
        }
        let mut bad = raw.clone();
        let at = (s.offset + s.len / 2) as usize;
        bad[at] ^= 0x40;
        let err = try_both(&bad, &format!("flip inside {}", s.name));
        assert!(matches!(err, SnapshotError::Corrupt(_)), "section damage is Corrupt, got {err:?}");
    }
    // Truncation at every structural boundary and a few interior cuts.
    let mut cuts: Vec<usize> = vec![0, 3, 8, 95, 511, 575, raw.len() - 1];
    cuts.extend(info.sections.iter().map(|s| s.offset as usize));
    for cut in cuts {
        try_both(&raw[..cut], &format!("cut @{cut}"));
    }
    // Trailing garbage is rejected, not silently mapped.
    let mut padded = raw.clone();
    padded.extend_from_slice(&[0u8; 64]);
    assert_eq!(
        try_both(&padded, "trailing garbage"),
        SnapshotError::Corrupt("trailing bytes after snapshot")
    );

    // And the pristine bytes still map cleanly after all that.
    let path = dir.join("pristine.mlps");
    std::fs::write(&path, &raw).unwrap();
    let map = Arc::new(mmap_lite::Mmap::open(&path).unwrap());
    let thawed = PosteriorSnapshot::open_mapped(&map).unwrap();
    assert_eq!(thawed, original);
    drop(engine);
    std::fs::remove_dir_all(dir).ok();
}

mod corruption_proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CASE: AtomicUsize = AtomicUsize::new(0);

    /// One trained artifact shared across cases; proptest closures only
    /// get the bytes.
    fn base_artifact() -> (Vec<u8>, PosteriorSnapshot) {
        let (gaz, data) = corpus(40, 11005);
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick_config(11005))
            .train(&data.dataset.prefix(40))
            .unwrap();
        let raw = engine.encode_artifact().unwrap().to_vec();
        let snap = PosteriorSnapshot::decode(Bytes::from(raw.clone())).unwrap();
        (raw, snap)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite invariant: an arbitrary truncation plus an optional
        /// bit flip never panics either read path; when the damage lands
        /// in unchecksummed padding the thaw must still be value-exact.
        #[test]
        fn damaged_artifacts_never_panic_either_path(
            cut_frac in 0.0f64..=1.0,
            flip in prop::option::of((0.0f64..1.0, 0u8..8)),
        ) {
            let case = CASE.fetch_add(1, Ordering::Relaxed);
            let (raw, original) = base_artifact();
            let cut = (((raw.len() + 1) as f64) * cut_frac) as usize;
            let mut damaged = raw[..cut.min(raw.len())].to_vec();
            if let Some((pos_frac, bit)) = flip {
                if !damaged.is_empty() {
                    let pos =
                        (((damaged.len() as f64) * pos_frac) as usize).min(damaged.len() - 1);
                    damaged[pos] ^= 1 << bit;
                }
            }

            if let Ok(thawed) = PosteriorSnapshot::decode(Bytes::from(damaged.clone())) {
                prop_assert_eq!(&thawed, &original, "a flip that decodes must be pad-only");
            }
            let dir = tmp_dir(&format!("prop_{case}"));
            let path = dir.join("damaged.mlps");
            std::fs::write(&path, &damaged).unwrap();
            let map = Arc::new(mmap_lite::Mmap::open(&path).unwrap());
            if let Ok(thawed) = PosteriorSnapshot::open_mapped(&map) {
                prop_assert_eq!(&thawed, &original, "a flip that maps must be pad-only");
            }
            // Structural verification skips payload CRCs, so a payload flip
            // may open successfully — but the geometry was validated, so
            // every accessor must stay in-bounds and panic-free.
            if let Ok(thawed) = PosteriorSnapshot::open_mapped_with(&map, Integrity::Structural) {
                for u in 0..thawed.users.num_users().min(8) {
                    let view = thawed.users.user(mlp::prelude::UserId(u as u32));
                    let _ = (view.candidates.len(), view.gammas.len(), view.home);
                }
                for l in 0..thawed.venues.num_cities().min(8) {
                    let _ = thawed.venues.row(mlp::prelude::CityId(l as u32)).count();
                }
            }
            std::fs::remove_dir_all(dir).ok();
        }
    }
}
