//! The warm-start determinism suite.
//!
//! Serving correctness here *is* determinism: a frozen snapshot plus a
//! seed must produce one answer, whether the request is served inline,
//! re-served tomorrow, served from re-decoded snapshot bytes, or fanned
//! out across worker threads. Every test in this file pins one of those
//! equalities bit for bit.

use mlp::core::determinism_hash;
use mlp::prelude::*;

fn train_snapshot(users: usize, seed: u64) -> (Gazetteer, GeneratedData, PosteriorSnapshot) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    let config = MlpConfig { iterations: 8, burn_in: 4, seed, ..Default::default() };
    let (_, snapshot) = Mlp::new(&gaz, &data.dataset, config).unwrap().run_with_snapshot();
    (gaz, data, snapshot)
}

fn requests(data: &GeneratedData, n: u32) -> Vec<NewUserObservations> {
    (0..n).map(|u| NewUserObservations::from_dataset(&data.dataset, UserId(u))).collect()
}

#[test]
fn same_snapshot_same_seed_is_byte_identical() {
    let (gaz, data, snapshot) = train_snapshot(200, 3001);
    let batch = requests(&data, 30);
    let engine = FoldInEngine::new(&snapshot, &gaz, FoldInConfig::default()).unwrap();
    let a = engine.fold_in_batch(&batch).unwrap();
    let b = engine.fold_in_batch(&batch).unwrap();
    assert_eq!(a, b, "repeated serving must be reproducible");
    assert_eq!(determinism_hash(&a), determinism_hash(&b));

    // A fresh engine over the same snapshot is the same server.
    let engine2 = FoldInEngine::new(&snapshot, &gaz, FoldInConfig::default()).unwrap();
    assert_eq!(a, engine2.fold_in_batch(&batch).unwrap());

    // A different seed is a different chain (sanity: the seed matters).
    let reseeded =
        FoldInEngine::new(&snapshot, &gaz, FoldInConfig { seed: 99, ..Default::default() })
            .unwrap();
    assert_ne!(determinism_hash(&a), determinism_hash(&reseeded.fold_in_batch(&batch).unwrap()));
}

#[test]
fn batched_fold_in_is_bit_identical_to_sequential() {
    let (gaz, data, snapshot) = train_snapshot(300, 3003);
    let batch = requests(&data, 60);
    let sequential =
        FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads: 1, ..Default::default() })
            .unwrap()
            .fold_in_batch(&batch)
            .unwrap();
    for threads in [2usize, 3, 4, 8] {
        let batched =
            FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads, ..Default::default() })
                .unwrap()
                .fold_in_batch(&batch)
                .unwrap();
        assert_eq!(sequential, batched, "threads={threads} must not change predictions");
        assert_eq!(determinism_hash(&sequential), determinism_hash(&batched));
    }
}

#[test]
fn decoded_snapshot_serves_identically_to_the_original() {
    let (gaz, data, snapshot) = train_snapshot(150, 3005);
    let batch = requests(&data, 25);
    let decoded = PosteriorSnapshot::decode(snapshot.encode()).unwrap();
    assert_eq!(snapshot, decoded);
    let from_memory = FoldInEngine::new(&snapshot, &gaz, FoldInConfig::default())
        .unwrap()
        .fold_in_batch(&batch)
        .unwrap();
    let from_bytes = FoldInEngine::new(&decoded, &gaz, FoldInConfig::default())
        .unwrap()
        .fold_in_batch(&batch)
        .unwrap();
    assert_eq!(from_memory, from_bytes, "a shipped snapshot must serve exactly like the original");
}

#[test]
fn single_fold_in_matches_batch_head() {
    let (gaz, data, snapshot) = train_snapshot(120, 3007);
    let batch = requests(&data, 10);
    let engine = FoldInEngine::new(&snapshot, &gaz, FoldInConfig::default()).unwrap();
    let whole = engine.fold_in_batch(&batch).unwrap();
    // `fold_in` is defined as batch index 0.
    assert_eq!(engine.fold_in(&batch[0]).unwrap(), whole[0]);
}

#[test]
fn batch_edge_cases_never_panic_or_diverge() {
    let (gaz, data, snapshot) = train_snapshot(100, 3011);

    // An empty batch is a valid request, whatever the thread count.
    for threads in [0usize, 1, 4] {
        let engine =
            FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads, ..Default::default() })
                .unwrap();
        assert_eq!(engine.fold_in_batch(&[]).unwrap(), vec![]);
    }

    // threads: 0 must behave exactly as 1 (the sequential path)…
    let batch = requests(&data, 7);
    let zero =
        FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads: 0, ..Default::default() })
            .unwrap()
            .fold_in_batch(&batch)
            .unwrap();
    let one = FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads: 1, ..Default::default() })
        .unwrap()
        .fold_in_batch(&batch)
        .unwrap();
    assert_eq!(zero, one, "threads: 0 must be the sequential path");

    // …and far more workers than requests just idles the surplus.
    let many =
        FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads: 32, ..Default::default() })
            .unwrap()
            .fold_in_batch(&batch)
            .unwrap();
    assert_eq!(one, many, "threads > batch.len() must not change predictions");
    assert_eq!(determinism_hash(&one), determinism_hash(&many));
}

#[test]
fn training_twice_freezes_identical_snapshots() {
    let (_, _, a) = train_snapshot(150, 3009);
    let (_, _, b) = train_snapshot(150, 3009);
    assert_eq!(a, b, "training is deterministic, so freezing must be too");
    assert_eq!(a.encode(), b.encode(), "and so is the serialised artifact");
}
