//! The warm-start determinism suite, on the `ServingEngine` facade.
//!
//! Serving correctness here *is* determinism: a frozen posterior plus a
//! seed must produce one answer, whether the request is served inline,
//! re-served tomorrow, served by an engine thawed from artifact bytes, or
//! fanned out across worker threads. Every test in this file pins one of
//! those equalities bit for bit. (The `batch_edge_cases` test exercises
//! the low-level `FoldInEngine` directly — the permissive layer under the
//! facade, whose `threads: 0` clamp the strict builder refuses.)

use mlp::core::{determinism_hash, response_determinism_hash};
use mlp::prelude::*;

fn train_snapshot(users: usize, seed: u64) -> (Gazetteer, GeneratedData, PosteriorSnapshot) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    let config = MlpConfig { iterations: 8, burn_in: 4, seed, ..Default::default() };
    let (_, snapshot) = Mlp::new(&gaz, &data.dataset, config).unwrap().run_with_snapshot();
    (gaz, data, snapshot)
}

fn requests(data: &GeneratedData, n: u32) -> Vec<ProfileRequest> {
    let ids: Vec<UserId> = (0..n).map(UserId).collect();
    ProfileRequest::batch_from_dataset(&data.dataset, &ids)
}

fn engine<'a>(
    gaz: &'a Gazetteer,
    snapshot: &PosteriorSnapshot,
    fold_in: FoldInConfig,
) -> ServingEngine<'a> {
    ServingEngine::builder(gaz).fold_in_config(fold_in).from_snapshot(snapshot.clone()).unwrap()
}

#[test]
fn same_snapshot_same_seed_is_byte_identical() {
    let (gaz, data, snapshot) = train_snapshot(200, 3001);
    let batch = requests(&data, 30);
    let serving = engine(&gaz, &snapshot, FoldInConfig::default());
    let a = serving.profile_batch(&batch).unwrap();
    let b = serving.profile_batch(&batch).unwrap();
    assert_eq!(a, b, "repeated serving must be reproducible");
    assert_eq!(response_determinism_hash(&a), response_determinism_hash(&b));

    // A fresh engine over the same snapshot is the same server.
    let serving2 = engine(&gaz, &snapshot, FoldInConfig::default());
    assert_eq!(a, serving2.profile_batch(&batch).unwrap());

    // A different seed is a different chain (sanity: the seed matters).
    let reseeded = engine(&gaz, &snapshot, FoldInConfig { seed: 99, ..Default::default() });
    assert_ne!(
        response_determinism_hash(&a),
        response_determinism_hash(&reseeded.profile_batch(&batch).unwrap())
    );
}

#[test]
fn batched_serving_is_bit_identical_to_sequential() {
    let (gaz, data, snapshot) = train_snapshot(300, 3003);
    let batch = requests(&data, 60);
    let sequential = engine(&gaz, &snapshot, FoldInConfig { threads: 1, ..Default::default() })
        .profile_batch(&batch)
        .unwrap();
    for threads in [2usize, 3, 4, 8] {
        let batched = engine(&gaz, &snapshot, FoldInConfig { threads, ..Default::default() })
            .profile_batch(&batch)
            .unwrap();
        assert_eq!(sequential, batched, "threads={threads} must not change predictions");
        assert_eq!(response_determinism_hash(&sequential), response_determinism_hash(&batched));
    }
}

#[test]
fn thawed_artifact_serves_identically_to_the_original() {
    let (gaz, data, snapshot) = train_snapshot(150, 3005);
    let batch = requests(&data, 25);
    let from_memory = engine(&gaz, &snapshot, FoldInConfig::default());
    let from_bytes = ServingEngine::builder(&gaz)
        .from_artifact(snapshot.try_encode().unwrap())
        .expect("artifact thaws into an engine");
    assert_eq!(from_bytes.snapshot().snapshot(), &snapshot);
    assert_eq!(
        from_memory.profile_batch(&batch).unwrap(),
        from_bytes.profile_batch(&batch).unwrap(),
        "a shipped artifact must serve exactly like the original"
    );
}

#[test]
fn single_profile_matches_batch_head() {
    let (gaz, data, snapshot) = train_snapshot(120, 3007);
    let batch = requests(&data, 10);
    let serving = engine(&gaz, &snapshot, FoldInConfig::default());
    let whole = serving.profile_batch(&batch).unwrap();
    // `profile` is defined as batch index 0.
    assert_eq!(serving.profile(&batch[0]).unwrap(), whole[0]);
}

#[test]
fn batch_edge_cases_never_panic_or_diverge() {
    // The low-level layer: `FoldInEngine` stays permissive (threads: 0
    // runs sequentially) even though `EngineBuilder` would refuse the
    // config — callers wiring the primitives directly keep the old
    // semantics.
    let (gaz, data, snapshot) = train_snapshot(100, 3011);

    // An empty batch is a valid request, whatever the thread count.
    for threads in [0usize, 1, 4] {
        let engine =
            FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads, ..Default::default() })
                .unwrap();
        assert_eq!(engine.fold_in_batch(&[]).unwrap(), vec![]);
    }

    // threads: 0 must behave exactly as 1 (the sequential path)…
    let ids: Vec<UserId> = (0..7).map(UserId).collect();
    let batch = NewUserObservations::batch_from_dataset(&data.dataset, &ids);
    let zero =
        FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads: 0, ..Default::default() })
            .unwrap()
            .fold_in_batch(&batch)
            .unwrap();
    let one = FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads: 1, ..Default::default() })
        .unwrap()
        .fold_in_batch(&batch)
        .unwrap();
    assert_eq!(zero, one, "threads: 0 must be the sequential path");

    // …and far more workers than requests just idles the surplus.
    let many =
        FoldInEngine::new(&snapshot, &gaz, FoldInConfig { threads: 32, ..Default::default() })
            .unwrap()
            .fold_in_batch(&batch)
            .unwrap();
    assert_eq!(one, many, "threads > batch.len() must not change predictions");
    assert_eq!(determinism_hash(&one), determinism_hash(&many));
}

#[test]
fn facade_and_low_level_hashes_agree() {
    // `response_determinism_hash` must fingerprint identically to the
    // low-level `determinism_hash` for the same predictions — the CI
    // smoke hash survives the facade migration unchanged.
    let (gaz, data, snapshot) = train_snapshot(140, 3013);
    let reqs = requests(&data, 20);
    let obs: Vec<NewUserObservations> = reqs.iter().map(|r| r.observations.clone()).collect();
    let low = FoldInEngine::new(&snapshot, &gaz, FoldInConfig::default())
        .unwrap()
        .fold_in_batch(&obs)
        .unwrap();
    let high = engine(&gaz, &snapshot, FoldInConfig::default()).profile_batch(&reqs).unwrap();
    assert_eq!(determinism_hash(&low), response_determinism_hash(&high));
}

#[test]
fn training_twice_freezes_identical_snapshots() {
    let (_, _, a) = train_snapshot(150, 3009);
    let (_, _, b) = train_snapshot(150, 3009);
    assert_eq!(a, b, "training is deterministic, so freezing must be too");
    assert_eq!(
        a.try_encode().unwrap(),
        b.try_encode().unwrap(),
        "and so is the serialised artifact"
    );
}
