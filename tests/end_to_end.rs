//! Cross-crate integration tests: the full pipeline from gazetteer through
//! generation, inference, and evaluation.

use mlp::prelude::*;
use mlp::social::codec;

fn quick_config(seed: u64) -> MlpConfig {
    MlpConfig { iterations: 10, burn_in: 5, seed, ..Default::default() }
}

#[test]
fn generate_infer_evaluate_recovers_masked_homes() {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 600, seed: 1001, ..Default::default() })
            .generate();

    // Mask one fold, train on the rest, predict the fold.
    let folds = Folds::split(&data.dataset, 5, 1001);
    let test_users = folds.test_users(0);
    let train = folds.train_view(&data.dataset, 0);
    let result = Mlp::new(&gaz, &train, quick_config(1001)).unwrap().run();

    let preds: Vec<Option<CityId>> = test_users.iter().map(|&u| Some(result.home(u))).collect();
    let truths: Vec<CityId> = test_users.iter().map(|&u| data.truth.home(u)).collect();
    let acc = mlp::eval::acc_at_m(&gaz, &preds, &truths, 100.0);

    // Chance level is ~1/|L| < 1%; anything near the paper's 62% is healthy.
    assert!(acc > 0.40, "end-to-end masked-home ACC@100 = {acc}");
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 200, seed: 77, ..Default::default() },
        )
        .generate();
        let result = Mlp::new(&gaz, &data.dataset, quick_config(77)).unwrap().run();
        (data.dataset.edges.len(), result.profiles, result.power_law)
    };
    let (edges_a, profiles_a, pl_a) = run();
    let (edges_b, profiles_b, pl_b) = run();
    assert_eq!(edges_a, edges_b);
    assert_eq!(profiles_a, profiles_b);
    assert_eq!(pl_a, pl_b);
}

#[test]
fn binary_snapshot_round_trips_through_inference() {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 150, seed: 31, ..Default::default() })
            .generate();

    // Save, reload, and verify inference sees identical data.
    let bytes = codec::encode(&data.dataset, &data.truth);
    let (dataset2, truth2) = codec::decode(bytes).expect("decodes");
    assert_eq!(data.dataset, dataset2);
    assert_eq!(data.truth, truth2);

    let a = Mlp::new(&gaz, &data.dataset, quick_config(31)).unwrap().run();
    let b = Mlp::new(&gaz, &dataset2, quick_config(31)).unwrap().run();
    assert_eq!(a.profiles, b.profiles, "identical data must give identical inference");
}

#[test]
fn variants_consume_only_their_observations() {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 300, seed: 47, ..Default::default() })
            .generate();

    // MLP_C's output must be invariant to edge shuffling/removal.
    let mut no_edges = data.dataset.clone();
    no_edges.edges.clear();
    let cfg = MlpConfig { variant: Variant::TweetingOnly, ..quick_config(47) };
    let with_edges = Mlp::new(&gaz, &data.dataset, cfg.clone()).unwrap().run();
    let without_edges = Mlp::new(&gaz, &no_edges, cfg).unwrap().run();
    assert_eq!(
        with_edges.profiles, without_edges.profiles,
        "MLP_C must ignore the following network entirely"
    );

    // Symmetrically, MLP_U must ignore tweets.
    let mut no_mentions = data.dataset.clone();
    no_mentions.mentions.clear();
    let cfg = MlpConfig { variant: Variant::FollowingOnly, ..quick_config(47) };
    let with_mentions = Mlp::new(&gaz, &data.dataset, cfg.clone()).unwrap().run();
    let without_mentions = Mlp::new(&gaz, &no_mentions, cfg).unwrap().run();
    assert_eq!(with_mentions.profiles, without_mentions.profiles);
}

#[test]
fn parallel_inference_stays_close_to_sequential() {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 400, seed: 53, ..Default::default() })
            .generate();
    let acc_of = |threads: usize| {
        let cfg = MlpConfig { threads, ..quick_config(53) };
        let result = Mlp::new(&gaz, &data.dataset, cfg).unwrap().run();
        let hits = (0..400u32)
            .filter(|&u| gaz.distance(result.home(UserId(u)), data.truth.home(UserId(u))) <= 100.0)
            .count();
        hits as f64 / 400.0
    };
    let seq = acc_of(1);
    let par = acc_of(4);
    assert!(seq > 0.6, "sequential {seq}");
    assert!((seq - par).abs() < 0.1, "sequential {seq} vs parallel {par}");
}

#[test]
fn warm_start_fold_in_tracks_cold_training_on_held_out_users() {
    // The serving scenario end to end: train on a corpus that has *no
    // trace* of a set of users (no labels, no edges, no mentions), freeze
    // the posterior, then predict those users by folding their
    // observations into the snapshot — and demand accuracy within
    // tolerance of the cold path, which trains a full model on the same
    // split with the held-out users' observations included.
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 600, seed: 4001, ..Default::default() })
            .generate();

    // Held-out set: one CV fold of labeled users.
    let folds = Folds::split(&data.dataset, 5, 4001);
    let held_out = folds.test_users(0);
    let is_held: std::collections::HashSet<UserId> = held_out.iter().copied().collect();

    // Cold path: labels masked, observations kept (the classic CV setup).
    let cold_train = folds.train_view(&data.dataset, 0);

    // Warm path: the training corpus never saw the held-out users at all.
    let mut unseen_train = cold_train.clone();
    unseen_train.edges.retain(|e| !is_held.contains(&e.follower) && !is_held.contains(&e.friend));
    unseen_train.mentions.retain(|m| !is_held.contains(&m.user));

    let config = MlpConfig { iterations: 10, burn_in: 5, seed: 4001, ..Default::default() };
    let cold_result = Mlp::new(&gaz, &cold_train, config.clone()).unwrap().run();
    let (_, snapshot) = Mlp::new(&gaz, &unseen_train, config).unwrap().run_with_snapshot();

    // Serve each held-out user from their own observations, keeping only
    // neighbors the snapshot actually trained on.
    let engine = FoldInEngine::new(&snapshot, &gaz, FoldInConfig::default()).unwrap();
    let mut batch = NewUserObservations::batch_from_dataset(&data.dataset, held_out);
    for obs in &mut batch {
        obs.neighbors.retain(|p| !is_held.contains(p));
    }
    let warm_profiles = engine.fold_in_batch(&batch).unwrap();

    let acc = |preds: &[Option<CityId>]| {
        let truths: Vec<CityId> = held_out.iter().map(|&u| data.truth.home(u)).collect();
        mlp::eval::acc_at_m(&gaz, preds, &truths, 100.0)
    };
    let cold: Vec<Option<CityId>> = held_out.iter().map(|&u| Some(cold_result.home(u))).collect();
    let warm: Vec<Option<CityId>> = warm_profiles.iter().map(|p| Some(p.home())).collect();
    let (cold_acc, warm_acc) = (acc(&cold), acc(&warm));

    assert!(cold_acc > 0.40, "cold baseline collapsed: {cold_acc}");
    assert!(
        warm_acc > cold_acc - 0.15,
        "warm-start fold-in degraded too far: warm {warm_acc} vs cold {cold_acc}"
    );
    assert!(warm_acc > 0.35, "warm-start accuracy {warm_acc} not meaningfully above chance");
}

#[test]
fn venue_extraction_feeds_the_pipeline() {
    // Build a tiny hand-made dataset from raw tweet text via the extractor,
    // then infer — exercising the gazetteer→social→core path end to end.
    let gaz = Gazetteer::us_cities();
    let extractor = VenueExtractor::new(&gaz);
    let austin = gaz.city_by_name_state("austin", "TX").unwrap();
    let la = gaz.city_by_name_state("los angeles", "CA").unwrap();

    let mut dataset = Dataset::new(3);
    dataset.registered[0] = Some(austin);
    dataset.registered[1] = Some(la);
    // User 2 is unlabeled but tweets like an Austinite.
    let tweets = [
        "good morning austin! tacos downtown austin later",
        "missing the austin zoo today",
        "watching the game in austin with friends",
    ];
    for text in tweets {
        for venue in extractor.extract(text) {
            dataset.mentions.push(mlp::social::TweetMention { user: UserId(2), venue });
        }
    }
    // Users 0 and 1 tweet their own cities so ψ learns the venues.
    for _ in 0..10 {
        let v_austin = gaz.venue_by_name("austin").unwrap();
        let v_la = gaz.venue_by_name("los angeles").unwrap();
        dataset.mentions.push(mlp::social::TweetMention { user: UserId(0), venue: v_austin });
        dataset.mentions.push(mlp::social::TweetMention { user: UserId(1), venue: v_la });
    }

    let cfg = MlpConfig { variant: Variant::TweetingOnly, ..quick_config(3) };
    let result = Mlp::new(&gaz, &dataset, cfg).unwrap().run();
    let home = result.home(UserId(2));
    assert!(
        gaz.distance(home, austin) <= 100.0,
        "user 2 should land near Austin, got {}",
        gaz.city(home).full_name()
    );
}
