//! The `ServingEngine` acceptance suite: the facade must (a) serve
//! bit-identically to the low-level layer it wraps, (b) publish posterior
//! epochs atomically — concurrent readers observe the pre- or post-commit
//! posterior, never a torn one, with every answer byte-identical to a
//! serial replay — and (c) expose one coherent typed error surface
//! (`std::error::Error + Display`, `source()` chaining, `#[non_exhaustive]`).

use mlp::core::engine::response_determinism_hash;
use mlp::core::snapshot::SnapshotError;
use mlp::core::{determinism_hash, FoldInError, OnlineError};
use mlp::prelude::*;

fn corpus(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    (gaz, data)
}

fn quick_config(seed: u64) -> MlpConfig {
    MlpConfig { iterations: 8, burn_in: 4, seed, ..Default::default() }
}

/// Requests for users `range`, with edges restricted to the first `known`
/// users (the posterior's citable population).
fn requests(
    data: &GeneratedData,
    range: std::ops::Range<u32>,
    known: usize,
) -> Vec<ProfileRequest> {
    let ids: Vec<UserId> = range.map(UserId).collect();
    let mut reqs = ProfileRequest::batch_from_dataset(&data.dataset, &ids);
    for r in &mut reqs {
        r.observations.neighbors.retain(|p| p.index() < known);
    }
    reqs
}

#[test]
fn facade_serves_bit_identically_to_the_low_level_layer() {
    let (gaz, data) = corpus(200, 7001);
    let d0 = data.dataset.prefix(160);
    let (_, snapshot) = Mlp::new(&gaz, &d0, quick_config(7001)).unwrap().run_with_snapshot();

    let reqs = requests(&data, 160..190, 160);
    let batch: Vec<NewUserObservations> = reqs.iter().map(|r| r.observations.clone()).collect();
    let direct = FoldInEngine::new(&snapshot, &gaz, FoldInConfig::default())
        .unwrap()
        .fold_in_batch(&batch)
        .unwrap();

    let engine = ServingEngine::builder(&gaz).from_snapshot(snapshot).unwrap();
    let responses = engine.profile_batch(&reqs).unwrap();
    assert_eq!(
        determinism_hash(&direct),
        response_determinism_hash(&responses),
        "the facade must answer exactly like FoldInEngine::fold_in_batch"
    );

    // Batched serving through the facade stays bit-identical to sequential.
    let threaded = ServingEngine::builder(&gaz)
        .fold_in_config(FoldInConfig { threads: 4, ..Default::default() })
        .from_snapshot(engine.snapshot().snapshot().clone())
        .unwrap();
    assert_eq!(responses, threaded.profile_batch(&reqs).unwrap());
}

#[test]
fn refresh_matches_the_hand_wired_updater_byte_for_byte() {
    // The facade's refresh loop must publish the exact artifact bytes the
    // PR 4 hand-wired plumbing (batch_from_dataset → retain known →
    // absorb → commit) produced — replicas thawing old and new artifacts
    // must agree bit for bit.
    let (gaz, data) = corpus(260, 7003);
    let d0 = data.dataset.prefix(200);
    let (_, snapshot) = Mlp::new(&gaz, &d0, quick_config(7003)).unwrap().run_with_snapshot();

    let mut updater = OnlineUpdater::new(
        &gaz,
        snapshot.clone(),
        FoldInConfig::default(),
        StalenessPolicy::default(),
    )
    .unwrap();
    let ids: Vec<UserId> = (200..260).map(UserId).collect();
    for chunk in ids.chunks(20) {
        let mut obs = NewUserObservations::batch_from_dataset(&data.dataset, chunk);
        let known = updater.snapshot().num_users();
        for o in &mut obs {
            o.neighbors.retain(|p| p.index() < known);
        }
        updater.absorb(&obs).unwrap();
        updater.commit().unwrap();
    }

    let engine = ServingEngine::builder(&gaz).from_snapshot(snapshot).unwrap();
    let report = engine.refresh_from_dataset(&data.dataset, &ids, 20).unwrap();
    assert_eq!(report.appended(), 60);
    assert_eq!(
        engine.encode_artifact().unwrap().as_slice(),
        updater.encode_artifact().unwrap().as_slice(),
        "facade refresh must publish byte-identical artifacts to the hand-wired loop"
    );
    assert_eq!(engine.snapshot().snapshot(), updater.snapshot());
}

#[test]
fn concurrent_readers_observe_only_whole_epochs() {
    // The epoch-publish regression test: N reader threads hammer
    // `profile_batch` while the writer commits a refresh. Every response
    // batch must carry one epoch tag (no torn reads) and be byte-identical
    // to the serial replay of that epoch.
    let (gaz, data) = corpus(160, 7005);
    let d0 = data.dataset.prefix(120);
    let (_, snapshot) = Mlp::new(&gaz, &d0, quick_config(7005)).unwrap().run_with_snapshot();

    let reader_reqs = requests(&data, 0..10, 120);
    let signups: Vec<UserId> = (120..160).map(UserId).collect();

    // Serial replay: the two posteriors a reader may legally observe.
    let replay0 = ServingEngine::builder(&gaz)
        .from_snapshot(snapshot.clone())
        .unwrap()
        .profile_batch(&reader_reqs)
        .unwrap();
    let replay_engine = ServingEngine::builder(&gaz).from_snapshot(snapshot.clone()).unwrap();
    replay_engine.refresh_from_dataset(&data.dataset, &signups, signups.len()).unwrap();
    let replay1 = replay_engine.profile_batch(&reader_reqs).unwrap();
    assert_eq!(replay1[0].epoch, 1);
    assert_ne!(
        response_determinism_hash(&replay0),
        response_determinism_hash(&replay1),
        "the refresh must actually move the posterior for this test to bite"
    );

    // Live run: readers race one writer.
    let engine = ServingEngine::builder(&gaz).from_snapshot(snapshot).unwrap();
    let num_readers = 4;
    let observed: Vec<Vec<ProfileResponse>> = std::thread::scope(|scope| {
        let engine = &engine;
        let reader_reqs = &reader_reqs;
        let readers: Vec<_> = (0..num_readers)
            .map(|_| {
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    // Keep reading until we have observed the post-commit
                    // epoch, so the race window is actually crossed.
                    loop {
                        let batch = engine.profile_batch(reader_reqs).unwrap();
                        let epoch = batch[0].epoch;
                        seen.push(batch);
                        if epoch >= 1 || seen.len() > 500 {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        let writer = scope.spawn(move || {
            engine.refresh_from_dataset(&data.dataset, &signups, signups.len()).unwrap()
        });
        let mut all: Vec<Vec<ProfileResponse>> = Vec::new();
        for r in readers {
            all.extend(r.join().expect("reader thread"));
        }
        writer.join().expect("writer thread");
        all
    });

    assert_eq!(engine.epoch(), 1);
    let mut saw_pre = false;
    let mut saw_post = false;
    for batch in &observed {
        // One epoch per batch — a batch never straddles a commit.
        assert!(batch.iter().all(|r| r.epoch == batch[0].epoch), "torn batch: {batch:?}");
        match batch[0].epoch {
            0 => {
                saw_pre = true;
                assert_eq!(batch, &replay0, "epoch-0 answers must replay serially");
            }
            1 => {
                saw_post = true;
                assert_eq!(batch, &replay1, "epoch-1 answers must replay serially");
            }
            other => panic!("impossible epoch {other}"),
        }
    }
    assert!(saw_post, "readers must eventually observe the committed epoch");
    // saw_pre is timing-dependent but should essentially always hold with
    // readers starting before the writer's Gibbs chains finish; don't
    // assert it, but keep the variable to document the intent.
    let _ = saw_pre;
}

#[test]
fn every_public_error_type_conforms() {
    fn conforms<E: std::error::Error + std::fmt::Debug + Send + Sync + 'static>() {}
    conforms::<ConfigError>();
    conforms::<SnapshotError>();
    conforms::<FoldInError>();
    conforms::<OnlineError>();
    conforms::<EngineError>();

    // Display is non-empty and distinct per layer.
    let config_err = MlpConfig { iterations: 0, ..Default::default() }.validate().unwrap_err();
    assert!(!config_err.to_string().is_empty());

    // source() chains: EngineError -> ConfigError.
    let (gaz, data) = corpus(30, 7007);
    let engine_err = ServingEngine::builder(&gaz)
        .mlp_config(MlpConfig { iterations: 0, ..Default::default() })
        .train(&data.dataset)
        .unwrap_err();
    let source = std::error::Error::source(&engine_err).expect("EngineError must chain");
    assert_eq!(source.to_string(), config_err.to_string());

    // source() chains: EngineError -> SnapshotError (via a bad artifact).
    let engine_err =
        ServingEngine::builder(&gaz).from_artifact(bytes::Bytes::from(vec![0u8; 8])).unwrap_err();
    assert!(matches!(engine_err, EngineError::Snapshot(_)));
    let source = std::error::Error::source(&engine_err).expect("EngineError must chain");
    assert_eq!(source.to_string(), SnapshotError::BadMagic(0).to_string());

    // source() chains: OnlineError -> FoldInError.
    let online = OnlineError::FoldIn(FoldInError::NoCandidates);
    let source = std::error::Error::source(&online).expect("OnlineError must chain");
    assert_eq!(source.to_string(), FoldInError::NoCandidates.to_string());

    // IO failures wrap with the path problem preserved.
    let io_err = ServingEngine::builder(&gaz)
        .from_artifact_file("/nonexistent/engine-artifact.mlps")
        .unwrap_err();
    assert!(matches!(io_err, EngineError::Io(_)));
    assert!(std::error::Error::source(&io_err).is_some());
}

#[test]
fn prelude_exposes_the_whole_serving_vocabulary() {
    // The facade types must be reachable from `mlp::prelude` alone; this
    // test is the compile-time pin (plus a tiny end-to-end sanity run).
    let (gaz, data) = corpus(50, 7011);
    let engine: ServingEngine<'_> = ServingEngine::builder(&gaz)
        .mlp_config(MlpConfig { iterations: 4, burn_in: 2, seed: 7011, ..Default::default() })
        .fold_in_config(FoldInConfig::default())
        .staleness_policy(StalenessPolicy::default())
        .train(&data.dataset)
        .unwrap();
    let handle: SnapshotHandle = engine.snapshot();
    assert_eq!(handle.epoch(), 0);
    let response: ProfileResponse =
        engine.profile(&ProfileRequest::default()).expect("signal-free request serves");
    let ranked: &RankedCities = &response.ranked;
    assert!(!ranked.is_empty());
    let _builder: EngineBuilder<'_> = ServingEngine::builder(&gaz);
    let report: RefreshReport = engine.refresh(&[]).unwrap();
    assert!(report.commits.is_empty());
}
