//! Integration tests for persistence: dataset snapshots (JSON and binary)
//! through the full generation → save → load → evaluate path, and
//! posterior snapshots through train → freeze → encode → decode →
//! fold-in, including adversarial inputs.

use mlp::core::snapshot::{SnapshotDelta, SnapshotError, UserArena, UserPosterior, VenueArena};
use mlp::core::Variant;
use mlp::prelude::*;
use mlp::social::codec::{self, DecodeError};
use mlp::social::DatasetStats;

fn generate(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    (gaz, data)
}

#[test]
fn stats_survive_binary_round_trip() {
    let (gaz, data) = generate(300, 2101);
    let bytes = codec::encode(&data.dataset, &data.truth);
    let (dataset2, _) = codec::decode(bytes).unwrap();
    let a = DatasetStats::compute(&data.dataset, &gaz);
    let b = DatasetStats::compute(&dataset2, &gaz);
    assert_eq!(a, b);
}

#[test]
fn json_snapshot_is_human_readable_and_lossless() {
    let (_, data) = generate(50, 2102);
    let json = codec::to_json(&data.dataset, &data.truth);
    assert!(json.contains("\"edges\""));
    assert!(json.contains("\"profiles\""));
    let (dataset2, truth2) = codec::from_json(&json).unwrap();
    assert_eq!(data.dataset, dataset2);
    assert_eq!(data.truth, truth2);
}

#[test]
fn corrupted_snapshots_fail_loudly() {
    let (_, data) = generate(50, 2103);
    let bytes = codec::encode(&data.dataset, &data.truth);

    // Flip the magic.
    let mut bad = bytes.to_vec();
    bad[0] ^= 0xFF;
    assert!(matches!(
        codec::decode(bytes::Bytes::from(bad)).unwrap_err(),
        DecodeError::BadMagic(_)
    ));

    // Truncate at an arbitrary interior byte.
    let cut = bytes.slice(..bytes.len() * 2 / 3);
    assert_eq!(codec::decode(cut).unwrap_err(), DecodeError::Truncated);

    // Garbage JSON.
    assert!(codec::from_json("{\"dataset\": 42}").is_err());
}

#[test]
fn generated_statistics_track_the_paper() {
    let (gaz, data) = generate(2_000, 2104);
    let stats = DatasetStats::compute(&data.dataset, &gaz);
    assert!((stats.mean_friends - 14.8).abs() < 2.5, "{}", stats.mean_friends);
    assert!((stats.mean_mentions - 29.0).abs() < 2.0, "{}", stats.mean_mentions);
    assert!(stats.candidacy_coverage > 0.85, "{}", stats.candidacy_coverage);
}

#[test]
fn masked_dataset_snapshot_keeps_masking() {
    let (_, data) = generate(100, 2105);
    let folds = Folds::split(&data.dataset, 5, 2105);
    let train = folds.train_view(&data.dataset, 0);
    let bytes = codec::encode(&train, &data.truth);
    let (train2, _) = codec::decode(bytes).unwrap();
    assert_eq!(train.num_labeled(), train2.num_labeled());
    assert!(train2.num_labeled() < data.dataset.num_labeled());
}

// ---------------------------------------------------------------------------
// Posterior snapshots (the warm-start serving artifact).
// ---------------------------------------------------------------------------

fn trained_posterior(users: usize, seed: u64) -> PosteriorSnapshot {
    let (gaz, data) = generate(users, seed);
    let config = MlpConfig { iterations: 6, burn_in: 3, seed, ..Default::default() };
    Mlp::new(&gaz, &data.dataset, config).unwrap().run_with_snapshot().1
}

#[test]
fn posterior_snapshot_round_trips_through_the_full_pipeline() {
    let snap = trained_posterior(200, 2106);
    let decoded = PosteriorSnapshot::decode(snap.try_encode().unwrap()).unwrap();
    assert_eq!(snap, decoded);
}

#[test]
fn corrupted_posterior_snapshots_fail_loudly() {
    let snap = trained_posterior(60, 2107);
    let bytes = snap.try_encode().unwrap();

    // Flip the magic.
    let mut bad = bytes.to_vec();
    bad[0] ^= 0xFF;
    assert!(matches!(
        PosteriorSnapshot::decode(bytes::Bytes::from(bad)).unwrap_err(),
        SnapshotError::BadMagic(_)
    ));

    // Stale format version.
    let mut bad = bytes.to_vec();
    bad[4] = 0x7F;
    assert!(matches!(
        PosteriorSnapshot::decode(bytes::Bytes::from(bad)).unwrap_err(),
        SnapshotError::UnsupportedVersion(_)
    ));

    // Invalid variant tag. The tag lives inside the v5 checksummed header,
    // so a blind poke trips the header CRC first …
    let mut bad = bytes.to_vec();
    bad[6] = 9;
    assert_eq!(
        PosteriorSnapshot::decode(bytes::Bytes::from(bad.clone())).unwrap_err(),
        SnapshotError::Corrupt("snapshot header checksum mismatch")
    );
    // … and with the CRC repaired the tag itself is still rejected.
    let fixed = crc32_ieee(&bad[..512]).to_le_bytes();
    bad[512..516].copy_from_slice(&fixed);
    assert_eq!(
        PosteriorSnapshot::decode(bytes::Bytes::from(bad)).unwrap_err(),
        SnapshotError::BadTag(9)
    );

    // Truncation at an arbitrary interior byte.
    assert_eq!(
        PosteriorSnapshot::decode(bytes.slice(..bytes.len() * 2 / 3)).unwrap_err(),
        SnapshotError::Truncated
    );
}

/// Bitwise IEEE CRC-32, only used to re-seal a deliberately damaged header.
fn crc32_ieee(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(crc & 1)));
        }
    }
    !crc
}

mod posterior_proptests {
    use super::*;
    use mlp::geo::PowerLaw;
    use proptest::prelude::*;

    /// Arbitrary small-but-structurally-valid posterior snapshot, built
    /// directly (not via training) so the codec is exercised on shapes the
    /// trainer would never produce: empty users, empty venue rows, extreme
    /// counts.
    fn arb_posterior() -> impl Strategy<Value = PosteriorSnapshot> {
        (4u32..25, 2u32..12, 0u8..3).prop_flat_map(|(num_cities, num_venues, variant)| {
            let users = prop::collection::vec(
                (
                    prop::collection::vec((0..num_cities, 0.01f64..5.0, 0.0f64..10.0), 1..5),
                    0usize..16,
                ),
                0..8,
            );
            let venue_rows = prop::collection::vec(
                prop::collection::vec((0..num_venues, 0.0f64..20.0), 0..5),
                num_cities as usize,
            );
            let venue_probs = prop::collection::vec(1e-6f64..1.0, num_venues as usize);
            (Just((num_cities, num_venues, variant)), users, venue_rows, venue_probs).prop_map(
                |((num_cities, num_venues, variant), users, venue_rows, venue_probs)| {
                    let users: Vec<UserPosterior> = users
                        .into_iter()
                        .map(|(mut entries, sel)| {
                            entries.sort_by_key(|e| e.0);
                            entries.dedup_by_key(|e| e.0);
                            let candidates: Vec<CityId> =
                                entries.iter().map(|e| CityId(e.0)).collect();
                            let gammas: Vec<f64> = entries.iter().map(|e| e.1).collect();
                            let mean_counts: Vec<f64> = entries.iter().map(|e| e.2).collect();
                            UserPosterior {
                                home: candidates[sel % candidates.len()],
                                mean_total: mean_counts.iter().sum(),
                                gamma_total: gammas.iter().sum(),
                                candidates,
                                gammas,
                                mean_counts,
                            }
                        })
                        .collect();
                    let venues = VenueArena::from_rows(venue_rows.into_iter().map(|mut row| {
                        row.sort_by_key(|e| e.0);
                        row.dedup_by_key(|e| e.0);
                        row
                    }));
                    PosteriorSnapshot {
                        variant: match variant {
                            0 => Variant::FollowingOnly,
                            1 => Variant::TweetingOnly,
                            _ => Variant::Full,
                        },
                        count_noisy_assignments: variant == 1,
                        tau: 0.1,
                        delta: 0.05,
                        rho_f: 0.15,
                        rho_t: 0.20,
                        power_law: PowerLaw { alpha: -0.55, beta: 0.0045 },
                        follow_prob: 1e-4,
                        venue_probs,
                        num_cities,
                        num_venues,
                        gaz_fingerprint: 0xDEAD_BEEF,
                        users: UserArena::from_users(users),
                        venues,
                    }
                },
            )
        })
    }

    /// An arbitrary structurally valid delta for a snapshot shape:
    /// appended users respect the candidate invariants, and venue
    /// increments are sorted-unique in-range non-negative weights.
    fn arb_delta(
        base_users: u32,
        num_cities: u32,
        num_venues: u32,
    ) -> impl Strategy<Value = SnapshotDelta> {
        let users = prop::collection::vec(
            (prop::collection::vec((0..num_cities, 0.01f64..5.0, 0.0f64..10.0), 1..4), 0usize..8),
            0..5,
        );
        let cells = prop::collection::vec((0..num_cities, 0..num_venues, 0.0f64..3.0), 0..12);
        (users, cells).prop_map(move |(users, mut cells)| {
            let mut delta = SnapshotDelta::new(base_users);
            for (mut entries, sel) in users {
                entries.sort_by_key(|e| e.0);
                entries.dedup_by_key(|e| e.0);
                let candidates: Vec<CityId> = entries.iter().map(|e| CityId(e.0)).collect();
                let gammas: Vec<f64> = entries.iter().map(|e| e.1).collect();
                let mean_counts: Vec<f64> = entries.iter().map(|e| e.2).collect();
                delta.push_user(UserPosterior {
                    home: candidates[sel % candidates.len()],
                    mean_total: mean_counts.iter().sum(),
                    gamma_total: gammas.iter().sum(),
                    candidates,
                    gammas,
                    mean_counts,
                });
            }
            cells.sort_by_key(|c| (c.0, c.1));
            cells.dedup_by_key(|c| (c.0, c.1));
            let coo: Vec<(CityId, VenueId, f64)> =
                cells.into_iter().map(|(l, v, w)| (CityId(l), VenueId(v), w)).collect();
            delta.add_venue_weights(&coo);
            delta
        })
    }

    fn arb_posterior_with_delta() -> impl Strategy<Value = (PosteriorSnapshot, SnapshotDelta)> {
        arb_posterior().prop_flat_map(|snap| {
            let delta = arb_delta(snap.num_users() as u32, snap.num_cities, snap.num_venues.max(1));
            (Just(snap), delta)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Binary encode/decode is the identity on arbitrary snapshots.
        #[test]
        fn posterior_round_trip_arbitrary(snap in arb_posterior()) {
            let decoded = PosteriorSnapshot::decode(snap.try_encode().unwrap()).unwrap();
            prop_assert_eq!(snap, decoded);
        }

        /// Any truncation of a valid snapshot fails cleanly with the typed
        /// error (never panics, never silently succeeds).
        #[test]
        fn posterior_truncation_never_panics(snap in arb_posterior(), frac in 0.0f64..1.0) {
            let bytes = snap.try_encode().unwrap();
            let cut = ((bytes.len() as f64) * frac) as usize;
            if cut < bytes.len() {
                prop_assert_eq!(
                    PosteriorSnapshot::decode(bytes.slice(..cut)).unwrap_err(),
                    SnapshotError::Truncated
                );
            }
        }

        /// v3 artifacts carrying delta records thaw to exactly the base
        /// with the delta applied — for arbitrary snapshot/delta shapes,
        /// including empty deltas, empty user rows, and venue cells
        /// outside the base support.
        #[test]
        fn delta_artifacts_replay_exactly((snap, delta) in arb_posterior_with_delta()) {
            // Venue cells must target real venues; arb caps ids at
            // max(num_venues, 1), so skip the degenerate no-venue shape
            // when the delta actually carries cells.
            prop_assume!(snap.num_venues > 0 || delta.is_empty());
            let artifact = snap.encode_with_deltas(std::slice::from_ref(&delta)).unwrap();
            let thawed = PosteriorSnapshot::decode(artifact).unwrap();
            let mut applied = snap.clone();
            applied.apply_delta(&delta).unwrap();
            prop_assert_eq!(applied, thawed);
        }

        /// Truncating a delta-carrying artifact anywhere still fails with
        /// a typed error — never a panic, never a silent partial replay.
        #[test]
        fn delta_artifact_truncation_never_panics(
            (snap, delta) in arb_posterior_with_delta(),
            frac in 0.0f64..1.0,
        ) {
            prop_assume!(snap.num_venues > 0 || delta.is_empty());
            let bytes = snap.encode_with_deltas(std::slice::from_ref(&delta)).unwrap();
            let cut = ((bytes.len() as f64) * frac) as usize;
            if cut < bytes.len() {
                prop_assert!(PosteriorSnapshot::decode(bytes.slice(..cut)).is_err());
            }
        }
    }
}
