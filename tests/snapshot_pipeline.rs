//! Integration tests for dataset persistence: JSON and binary snapshots
//! through the full generation → save → load → evaluate path, including
//! adversarial inputs.

use mlp::prelude::*;
use mlp::social::codec::{self, DecodeError};
use mlp::social::DatasetStats;

fn generate(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
            .generate();
    (gaz, data)
}

#[test]
fn stats_survive_binary_round_trip() {
    let (gaz, data) = generate(300, 2101);
    let bytes = codec::encode(&data.dataset, &data.truth);
    let (dataset2, _) = codec::decode(bytes).unwrap();
    let a = DatasetStats::compute(&data.dataset, &gaz);
    let b = DatasetStats::compute(&dataset2, &gaz);
    assert_eq!(a, b);
}

#[test]
fn json_snapshot_is_human_readable_and_lossless() {
    let (_, data) = generate(50, 2102);
    let json = codec::to_json(&data.dataset, &data.truth);
    assert!(json.contains("\"edges\""));
    assert!(json.contains("\"profiles\""));
    let (dataset2, truth2) = codec::from_json(&json).unwrap();
    assert_eq!(data.dataset, dataset2);
    assert_eq!(data.truth, truth2);
}

#[test]
fn corrupted_snapshots_fail_loudly() {
    let (_, data) = generate(50, 2103);
    let bytes = codec::encode(&data.dataset, &data.truth);

    // Flip the magic.
    let mut bad = bytes.to_vec();
    bad[0] ^= 0xFF;
    assert!(matches!(
        codec::decode(bytes::Bytes::from(bad)).unwrap_err(),
        DecodeError::BadMagic(_)
    ));

    // Truncate at an arbitrary interior byte.
    let cut = bytes.slice(..bytes.len() * 2 / 3);
    assert_eq!(codec::decode(cut).unwrap_err(), DecodeError::Truncated);

    // Garbage JSON.
    assert!(codec::from_json("{\"dataset\": 42}").is_err());
}

#[test]
fn generated_statistics_track_the_paper() {
    let (gaz, data) = generate(2_000, 2104);
    let stats = DatasetStats::compute(&data.dataset, &gaz);
    assert!((stats.mean_friends - 14.8).abs() < 2.5, "{}", stats.mean_friends);
    assert!((stats.mean_mentions - 29.0).abs() < 2.0, "{}", stats.mean_mentions);
    assert!(stats.candidacy_coverage > 0.85, "{}", stats.candidacy_coverage);
}

#[test]
fn masked_dataset_snapshot_keeps_masking() {
    let (_, data) = generate(100, 2105);
    let folds = Folds::split(&data.dataset, 5, 2105);
    let train = folds.train_view(&data.dataset, 0);
    let bytes = codec::encode(&train, &data.truth);
    let (train2, _) = codec::decode(bytes).unwrap();
    assert_eq!(train.num_labeled(), train2.num_labeled());
    assert!(train2.num_labeled() < data.dataset.num_labeled());
}
