//! Acceptance suite for out-of-core training (PR 8).
//!
//! The contract of `mlp::core::shard::train_corpus`:
//!
//! * with one shard it is a pure streaming wrapper — the frozen posterior
//!   must be **byte-identical** to the in-memory sequential driver on the
//!   same data;
//! * with N shards it is AD-LDA at super-sweep granularity — a different
//!   (but valid) chain: deterministic for a fixed `(seed, shards,
//!   reconcile_every)`, and within evaluation tolerance of the
//!   single-shard posterior on the 600-user acceptance corpus.

use mlp::core::shard::{train_corpus, ShardedTrainConfig};
use mlp::prelude::*;
use mlp::social::{CorpusReader, StreamingGenerator};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlp_ooc_{tag}_{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn quick_config(seed: u64) -> MlpConfig {
    MlpConfig { iterations: 6, burn_in: 3, seed, ..Default::default() }
}

fn write_corpus(dir: &Path, users: usize, chunk: usize, seed: u64) -> Gazetteer {
    let gaz = Gazetteer::us_cities();
    let config = GeneratorConfig { num_users: users, seed, ..Default::default() };
    StreamingGenerator::new(&gaz, config, chunk).write_corpus(dir).unwrap();
    gaz
}

fn sharding(shards: usize, reconcile_every: usize) -> ShardedTrainConfig {
    ShardedTrainConfig { shards, reconcile_every, scratch_dir: None }
}

/// One-shard streaming training is byte-identical to reading the corpus
/// into memory and running the sequential driver directly.
#[test]
fn one_shard_matches_in_memory_driver_bit_for_bit() {
    let dir = tmp_dir("one_shard");
    let gaz = write_corpus(&dir, 250, 64, 42);
    let config = quick_config(42);

    let data = CorpusReader::open(&dir).unwrap().read_all().unwrap();
    let (_, in_memory) = Mlp::new(&gaz, &data.dataset, config.clone()).unwrap().run_with_snapshot();

    let streamed = train_corpus(&gaz, &dir, &config, &sharding(1, 2)).unwrap();

    assert_eq!(
        in_memory.try_encode().unwrap().as_slice(),
        streamed.try_encode().unwrap().as_slice(),
        "one-shard streaming posterior must be byte-identical to the in-memory driver"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Sharded runs are a pure function of (corpus, config, shards,
/// reconcile_every): two identical invocations produce identical bytes.
#[test]
fn sharded_training_is_deterministic() {
    let dir = tmp_dir("determinism");
    let gaz = write_corpus(&dir, 300, 50, 7);
    let config = quick_config(7);

    let a = train_corpus(&gaz, &dir, &config, &sharding(3, 2)).unwrap();
    let b = train_corpus(&gaz, &dir, &config, &sharding(3, 2)).unwrap();
    assert_eq!(a.try_encode().unwrap().as_slice(), b.try_encode().unwrap().as_slice());

    // A different shard count is a different chain — it must not be
    // byte-identical (otherwise the sharding is not actually exercised).
    let c = train_corpus(&gaz, &dir, &config, &sharding(2, 2)).unwrap();
    assert_ne!(a.try_encode().unwrap().as_slice(), c.try_encode().unwrap().as_slice());
    std::fs::remove_dir_all(&dir).ok();
}

/// Scratch spill files are cleaned up after a successful run.
#[test]
fn scratch_files_are_removed_on_success() {
    let dir = tmp_dir("scratch");
    let gaz = write_corpus(&dir, 120, 40, 9);
    train_corpus(&gaz, &dir, &quick_config(9), &sharding(2, 1)).unwrap();
    assert!(
        !dir.join("train-scratch").exists(),
        "spill scratch directory should be removed after training"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// On the 600-user acceptance corpus, the sharded posterior's home
/// predictions stay within evaluation tolerance of the single-shard
/// chain's ACC@100.
#[test]
fn sharded_home_accuracy_matches_single_shard_within_tolerance() {
    let dir = tmp_dir("acc");
    let gaz = write_corpus(&dir, 600, 100, 1001);
    let config = MlpConfig { iterations: 10, burn_in: 5, seed: 1001, ..Default::default() };
    let truth = CorpusReader::open(&dir).unwrap().read_all().unwrap().truth;

    let acc_of = |snapshot: &PosteriorSnapshot| {
        let n = snapshot.num_users();
        let preds: Vec<Option<CityId>> =
            (0..n as u32).map(|u| Some(snapshot.users.home(UserId(u)))).collect();
        let truths: Vec<CityId> = (0..n as u32).map(|u| truth.home(UserId(u))).collect();
        mlp::eval::acc_at_m(&gaz, &preds, &truths, 100.0)
    };

    let single = train_corpus(&gaz, &dir, &config, &sharding(1, 2)).unwrap();
    let sharded = train_corpus(&gaz, &dir, &config, &sharding(4, 2)).unwrap();

    let (acc_1, acc_n) = (acc_of(&single), acc_of(&sharded));
    assert!(acc_1 > 0.40, "single-shard ACC@100 = {acc_1} below acceptance floor");
    assert!(
        (acc_1 - acc_n).abs() < 0.08,
        "sharded ACC@100 = {acc_n} drifted from single-shard {acc_1}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
