//! Offline shim for the `rand` crate (see `vendor/README.md`).
//!
//! The workspace builds without network access, so instead of the real
//! `rand` we vendor the tiny trait surface `mlp-sampling` actually uses:
//! [`RngCore`], [`SeedableRng`], and [`Error`]. The workspace's generators
//! (`Pcg64`, `SplitMix64`) are implemented locally in `mlp-sampling`; these
//! traits only exist so they stay source-compatible with the real crate if
//! the registry ever becomes available.

use std::fmt;

/// Error type for fallible RNG operations. Our deterministic generators
/// never fail, so this is never constructed outside of trait plumbing.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: uniform raw output.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The seed value accepted by [`SeedableRng::from_seed`].
    type Seed;
    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
}
