//! Offline shim for the `bytes` crate (see `vendor/README.md`).
//!
//! Implements exactly the API surface the `mlp-social` binary codec uses:
//! [`BytesMut`] as a growable write buffer with little-endian `put_*`
//! methods, [`Bytes`] as a cheaply cloneable read view with advancing
//! little-endian `get_*` methods, plus `freeze`, `slice`, and conversions.
//! Backed by `Arc<[u8]>` so `clone` and `slice` are O(1), like the real
//! crate (without the vectored-IO and unsplit machinery we do not need).

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read side: consuming little-endian reads from a buffer.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out and advances. Panics when short.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Reads a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write side: appending little-endian writes to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer being written.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes (mirrors the real crate's inherent method).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// The written bytes as a slice (the real crate exposes this via
    /// `Deref<Target = [u8]>`).
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Converts into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// An immutable view into shared byte storage. Cloning and slicing are
/// O(1); reads via [`Buf`] advance the view's start.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty view.
    pub fn new() -> Self {
        Self::from_static(&[])
    }

    /// View over a static slice (copied once into shared storage; the real
    /// crate avoids the copy, which never matters at our fixture sizes).
    pub fn from_static(b: &'static [u8]) -> Self {
        Self::from(b.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the viewed bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Splits the view: returns `[0, at)` and advances `self` to start at
    /// `at`. O(1) — both views share storage. Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to {at} out of range for {}", self.len());
        let front = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        front
    }

    /// O(1) sub-view over `range` (indices relative to this view).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self { data: v.into(), start: 0, end: len }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f64_le(-0.25);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), -0.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_and_cheap() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.slice(..1).as_slice(), &[2]);
        assert_eq!(b.slice(..).len(), 6);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.get_u32_le();
    }
}
