//! Offline shim for `arc-swap` (see `vendor/README.md`).
//!
//! Implements the subset of arc-swap 1.x the workspace consumes — an
//! atomically swappable `Arc<T>` whose **read path never takes a lock** —
//! with the same externally observable semantics as
//! [`ArcSwap::load_full`] / [`store`](ArcSwap::store) /
//! [`swap`](ArcSwap::swap) in the real crate:
//!
//! * `load_full` returns a fully owned `Arc<T>` that stays valid for as
//!   long as the caller keeps it, no matter how many swaps happen after;
//! * readers never block behind a writer and never observe a torn or
//!   freed value;
//! * writers serialise among themselves (the real crate's stores also
//!   contend on an internal generation lock) but never wait for readers
//!   that already hold returned `Arc`s.
//!
//! # How: a two-slot hazard handshake
//!
//! The real crate's lock-free `load` relies on per-thread debt slots; this
//! shim gets the same guarantees with a simpler scheme that exploits how
//! the workspace uses it (single logical writer, short read sections):
//! two fixed slots, each holding an `Option<Arc<T>>` plus a `pinned`
//! reader counter and a `valid` flag, and a `current` slot index.
//!
//! A reader pins the current slot (`pinned += 1`), re-checks `valid`, and
//! only then clones the `Arc` out; a writer publishes into the *other*
//! slot and reclaims it first: set `valid = false`, wait for `pinned == 0`,
//! then overwrite. All flag/counter accesses are `SeqCst`, which makes the
//! handshake airtight: if the writer's `pinned == 0` check succeeds, any
//! reader still between its increment and its clone is guaranteed to
//! observe `valid == false` and back off (its increment would otherwise
//! have been visible to the writer's check), so the writer never frees or
//! overwrites an `Arc` mid-clone. The previously published slot stays
//! valid until the *next* swap reclaims it, so in-flight readers of the
//! old value always finish cleanly.
//!
//! Costs accepted by the shim: the value published two swaps ago is kept
//! alive until the next swap (one extra `Arc` of memory), readers retry —
//! they never block — if they race the one-in-a-million reclaim window,
//! and a writer spin-waits for the handful of instructions a concurrent
//! reader needs to finish its clone.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One publication slot: a value cell guarded by the pin/valid handshake.
struct Slot<T> {
    /// Readers currently inside the pin-check-clone window.
    pinned: AtomicUsize,
    /// Whether `value` may be cloned. Cleared by the writer *before* it
    /// waits out the pinned readers and touches the cell.
    valid: AtomicBool,
    /// The published value. Only the writer (serialised by
    /// [`ArcSwap::writer`]) mutates it, and only while `valid` is false
    /// and `pinned` is zero.
    value: UnsafeCell<Option<Arc<T>>>,
}

impl<T> Slot<T> {
    fn empty() -> Self {
        Self {
            pinned: AtomicUsize::new(0),
            valid: AtomicBool::new(false),
            value: UnsafeCell::new(None),
        }
    }
}

/// An `Arc<T>` that can be swapped atomically: lock-free `load_full` for
/// readers, serialised `store`/`swap` for writers. The shimmed subset of
/// `arc_swap::ArcSwap`.
pub struct ArcSwap<T> {
    slots: [Slot<T>; 2],
    /// Index of the slot holding the current value. Always points at a
    /// valid slot.
    current: AtomicUsize,
    /// Serialises writers; never touched by `load_full`.
    writer: Mutex<()>,
}

// The shim moves/clones `Arc<T>` across threads through the slots, which
// needs exactly the bounds `Arc<T>: Send + Sync` needs.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Wraps `initial` as the current value.
    pub fn new(initial: Arc<T>) -> Self {
        let this = Self {
            slots: [Slot::empty(), Slot::empty()],
            current: AtomicUsize::new(0),
            writer: Mutex::new(()),
        };
        // No concurrency possible yet: `this` is not shared.
        unsafe { *this.slots[0].value.get() = Some(initial) };
        this.slots[0].valid.store(true, SeqCst);
        this
    }

    /// Like [`Self::new`] from a bare value (`arc_swap` parity helper).
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Returns an owned clone of the current value without ever taking a
    /// lock. The returned `Arc` stays valid however many swaps follow.
    ///
    /// Lock-free: the only retry is racing a writer's once-per-swap slot
    /// reclaim, and each retry finds a newer published value.
    pub fn load_full(&self) -> Arc<T> {
        loop {
            let slot = &self.slots[self.current.load(SeqCst)];
            slot.pinned.fetch_add(1, SeqCst);
            if slot.valid.load(SeqCst) {
                // Safe: `valid` seen true *after* pinning means the writer
                // cannot be mutating the cell (it clears `valid` first and
                // then waits for `pinned == 0` — SeqCst makes one of the
                // two checks fail), so the cell holds a live Arc.
                let arc = unsafe {
                    (*slot.value.get()).as_ref().expect("valid slot holds a value").clone()
                };
                slot.pinned.fetch_sub(1, SeqCst);
                return arc;
            }
            slot.pinned.fetch_sub(1, SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publishes `new` as the current value, dropping this container's
    /// reference to the value published two stores ago.
    pub fn store(&self, new: Arc<T>) {
        self.publish(new);
    }

    /// Publishes `new` and returns the value it replaced.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let guard = lock(&self.writer);
        let cur = &self.slots[self.current.load(SeqCst)];
        // Clone the outgoing value before publishing so the return value
        // is exactly what was current when the swap took effect.
        // Safe: we are the only writer (guard held) and the current slot
        // is never mutated while current; concurrent readers only clone.
        let old = unsafe { (*cur.value.get()).as_ref().expect("current slot holds a value") };
        let old = Arc::clone(old);
        self.publish_locked(new);
        drop(guard);
        old
    }

    /// Consumes the container, returning the current value.
    pub fn into_inner(mut self) -> Arc<T> {
        let cur = *self.current.get_mut();
        self.slots[cur].value.get_mut().take().expect("current slot holds a value")
    }

    fn publish(&self, new: Arc<T>) {
        let guard = lock(&self.writer);
        self.publish_locked(new);
        drop(guard);
    }

    /// The writer-side half of the handshake. Caller holds `self.writer`.
    fn publish_locked(&self, new: Arc<T>) {
        let free = 1 - self.current.load(SeqCst);
        let slot = &self.slots[free];
        // Retire the free slot: it may still hold the value published two
        // swaps ago, with late readers mid-clone on it.
        slot.valid.store(false, SeqCst);
        while slot.pinned.load(SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // No reader can touch the cell now: any pin after this point
        // re-checks `valid`, sees false, and backs off (see module docs).
        unsafe { *slot.value.get() = Some(new) };
        slot.valid.store(true, SeqCst);
        self.current.store(free, SeqCst);
        // The old slot stays valid so in-flight readers finish their
        // clone; the *next* publish reclaims it.
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        Self::from_pointee(T::default())
    }
}

impl<T> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap")
            .field("current", &self.current.load(SeqCst))
            .finish_non_exhaustive()
    }
}

/// Panic-free mutex acquisition (a poisoned writer lock still yields).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn load_returns_the_stored_value() {
        let cell = ArcSwap::from_pointee(41u32);
        assert_eq!(*cell.load_full(), 41);
        cell.store(Arc::new(42));
        assert_eq!(*cell.load_full(), 42);
        let old = cell.swap(Arc::new(43));
        assert_eq!(*old, 42);
        assert_eq!(*cell.load_full(), 43);
        assert_eq!(*cell.into_inner(), 43);
    }

    #[test]
    fn loaded_arcs_outlive_any_number_of_swaps() {
        let cell = ArcSwap::from_pointee(0u64);
        let pinned = cell.load_full();
        for i in 1..100u64 {
            cell.store(Arc::new(i));
        }
        assert_eq!(*pinned, 0, "an Arc returned by load_full must pin its value");
        assert_eq!(*cell.load_full(), 99);
    }

    /// Counts live instances so leaks and double frees both show up.
    struct Counted(Arc<AtomicU64>);
    impl Counted {
        fn new(live: &Arc<AtomicU64>) -> Self {
            live.fetch_add(1, SeqCst);
            Self(Arc::clone(live))
        }
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            let prev = self.0.fetch_sub(1, SeqCst);
            assert!(prev > 0, "double drop");
        }
    }

    #[test]
    fn every_published_value_is_dropped_exactly_once() {
        let live = Arc::new(AtomicU64::new(0));
        {
            let cell = ArcSwap::new(Arc::new(Counted::new(&live)));
            for _ in 0..50 {
                cell.store(Arc::new(Counted::new(&live)));
            }
            // The container retains at most the current and previous value.
            assert!(live.load(SeqCst) <= 2, "live {}", live.load(SeqCst));
        }
        assert_eq!(live.load(SeqCst), 0, "dropping the cell must drop retained values");
    }

    /// A payload whose halves must agree — a torn read or use-after-free
    /// would surface as a mismatch (or a crash under a sanitizer).
    struct Sealed {
        a: u64,
        b: u64,
    }
    impl Sealed {
        fn new(v: u64) -> Self {
            Self { a: v, b: v ^ 0xDEAD_BEEF_CAFE_F00D }
        }
        fn check(&self) -> u64 {
            assert_eq!(self.b, self.a ^ 0xDEAD_BEEF_CAFE_F00D, "torn payload");
            self.a
        }
    }

    #[test]
    fn concurrent_readers_never_observe_torn_or_stale_frees() {
        let live = Arc::new(AtomicU64::new(0));
        let writes = 2_000u64;
        {
            let cell = ArcSwap::new(Arc::new((Sealed::new(0), Counted::new(&live))));
            std::thread::scope(|scope| {
                let cell = &cell;
                let readers: Vec<_> = (0..4)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut last = 0u64;
                            let mut reads = 0u64;
                            while last < writes {
                                let v = cell.load_full();
                                let seen = v.0.check();
                                assert!(seen >= last, "published values went backwards");
                                last = seen;
                                reads += 1;
                            }
                            reads
                        })
                    })
                    .collect();
                let live = &live;
                let writer = scope.spawn(move || {
                    for i in 1..=writes {
                        cell.store(Arc::new((Sealed::new(i), Counted::new(live))));
                    }
                });
                writer.join().expect("writer");
                for r in readers {
                    assert!(r.join().expect("reader") > 0);
                }
            });
            assert!(live.load(SeqCst) <= 2);
        }
        assert_eq!(live.load(SeqCst), 0, "no value may leak under churn");
    }

    #[test]
    fn concurrent_swappers_serialise_without_losing_values() {
        // Multiple writers racing `swap`: every published value must come
        // back out exactly once (through a later swap or the final state).
        let cell = Arc::new(ArcSwap::from_pointee(u64::MAX));
        let per_writer = 500u64;
        let mut recovered: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3u64)
                .map(|w| {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for i in 0..per_writer {
                            got.push(*cell.swap(Arc::new(w * per_writer + i)));
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("swapper")).collect()
        });
        recovered.push(*Arc::try_unwrap(cell).expect("sole owner").into_inner());
        recovered.sort_unstable();
        let mut expect: Vec<u64> = (0..3 * per_writer).collect();
        expect.push(u64::MAX);
        assert_eq!(recovered, expect, "each swapped-in value must be returned exactly once");
    }
}
