//! Offline shim for `serde_derive` (see `vendor/README.md`).
//!
//! Derives the shim `serde::Serialize` / `serde::Deserialize` traits (the
//! [`Value`]-tree flavour in `vendor/serde`) for the type shapes this
//! workspace actually contains:
//!
//! * structs with named fields (lifetime generics allowed),
//! * tuple structs — one field serialises transparently like a serde
//!   newtype, several as an array,
//! * enums with unit / tuple / struct variants, externally tagged exactly
//!   like real serde: `"Unit"`, `{"Newtype": v}`, `{"Struct": {..}}`.
//!
//! Built directly on `proc_macro` token trees (no `syn`/`quote`, which are
//! unavailable offline): we walk the item's tokens to recover its shape,
//! then render the impl as a source string and re-parse it.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// What we learned about the deriving item.
struct Input {
    name: String,
    /// Raw generics text, e.g. `<'a>`; empty when the item has none.
    generics: String,
    shape: Shape,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}::serde::Value::Object(fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let (vn, ty) = (&v.name, &item.name);
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("{ty}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n")
                        }
                        VariantShape::Tuple(1) => format!(
                            "{ty}::{vn}(f0) => ::serde::Value::Object(vec![(\
                             String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),\n"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{ty}::{vn}({binds}) => ::serde::Value::Object(vec![(\
                                 String::from(\"{vn}\"), ::serde::Value::Array(vec![{vals}])\
                                 )]),\n",
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.push((String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {binds} }} => {{\n\
                                 let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Object(vec![(String::from(\"{vn}\"), \
                                 ::serde::Value::Object(inner))])\n}}\n"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    render_impl(&item, "Serialize", &format!("fn to_value(&self) -> ::serde::Value {{\n{body}\n}}"))
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let ty = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(obj, \"{f}\")?,\n"))
                .collect();
            format!(
                "let obj = ::serde::expect_object(v, \"{ty}\")?;\n\
                 Ok({ty} {{\n{inits}}})"
            )
        }
        Shape::Tuple(1) => format!("Ok({ty}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let gets: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?")).collect();
            format!(
                "let arr = ::serde::expect_array(v, \"{ty}\")?;\n\
                 if arr.len() != {n} {{\n\
                 return Err(::serde::DeError::new(format!(\
                 \"expected {n} elements for {ty}, found {{}}\", arr.len())));\n}}\n\
                 Ok({ty}({gets}))",
                gets = gets.join(", ")
            )
        }
        Shape::Unit => format!("let _ = v; Ok({ty})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({ty}::{vn}),\n", vn = v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({ty}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let arr = ::serde::expect_array(inner, \"{ty}::{vn}\")?;\n\
                                 if arr.len() != {n} {{\n\
                                 return Err(::serde::DeError::new(\
                                 \"wrong arity for {ty}::{vn}\"));\n}}\n\
                                 return Ok({ty}::{vn}({gets}));\n}}\n",
                                gets = gets.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::from_field(obj, \"{f}\")?,\n"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let obj = ::serde::expect_object(inner, \"{ty}::{vn}\")?;\n\
                                 return Ok({ty}::{vn} {{\n{inits}}});\n}}\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\
                 other => return Err(::serde::DeError::new(format!(\
                 \"unknown unit variant `{{other}}` for {ty}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = (&pairs[0].0, &pairs[0].1);\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => return Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{other}}` for {ty}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::DeError::new(format!(\
                 \"expected {ty} variant, found {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    render_impl(
        &item,
        "Deserialize",
        &format!(
            "fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}"
        ),
    )
}

/// Renders `impl<G> ::serde::Trait for Name<G> { methods }` and re-parses.
fn render_impl(item: &Input, trait_name: &str, methods: &str) -> TokenStream {
    let src = format!(
        "#[automatically_derived]\nimpl{g} ::serde::{trait_name} for {name}{g} {{\n{methods}\n}}",
        g = item.generics,
        name = item.name,
    );
    src.parse().unwrap_or_else(|e| panic!("serde_derive produced invalid Rust: {e}\n{src}"))
}

// ---------------------------------------------------------------------------
// Token-tree parsing.
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    let generics = take_generics(&tokens, &mut pos);

    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_top_level_fields(g.stream()))
            }
            _ => Shape::Unit,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive only supports structs and enums, found `{other}`"),
    };
    drop(tokens.drain(..));
    Input { name, generics, shape }
}

/// Consumes `#[...]` / `#![...]` attribute pairs.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1;
        if let Some(TokenTree::Punct(bang)) = tokens.get(*pos) {
            if bang.as_char() == '!' {
                *pos += 1;
            }
        }
        match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *pos += 1,
            other => panic!("serde_derive: malformed attribute: {other:?}"),
        }
    }
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Captures a `<...>` generics group verbatim (lifetimes only in practice).
fn take_generics(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return String::new(),
    }
    let mut depth = 0usize;
    let mut out = String::new();
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
                out.push(p.as_char());
                // A joint punct glues to the next token (`'a`, `::`); a
                // space there would split the lexeme.
                if p.spacing() == Spacing::Alone {
                    out.push(' ');
                }
            }
            other => {
                out.push_str(&other.to_string());
                out.push(' ');
            }
        }
        *pos += 1;
        if depth == 0 {
            break;
        }
    }
    out
}

/// Field names of a named-fields body, in declaration order.
fn named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        skip_type_until_comma(&tokens, &mut pos);
    }
    fields
}

/// Advances past a type, stopping after the `,` that ends the field (or at
/// end of stream). Commas nested in `<...>` belong to the type.
fn skip_type_until_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Number of fields in a tuple body (top-level comma count).
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type_until_comma(&tokens, &mut pos);
        count += 1;
    }
    count
}

/// Parses an enum body into its variants.
fn variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            None => {}
            other => panic!("serde_derive: expected `,` between variants, found {other:?}"),
        }
        out.push(Variant { name, shape });
    }
    out
}
