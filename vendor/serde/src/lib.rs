//! Offline shim for `serde` (see `vendor/README.md`).
//!
//! The real serde streams through `Serializer`/`Deserializer` visitors; this
//! shim routes everything through an owned [`Value`] tree instead, which is
//! dramatically simpler and more than fast enough for the snapshot fixtures
//! and telemetry dumps this workspace serialises. The public *source* surface
//! matches what the workspace uses: `use serde::{Serialize, Deserialize}`
//! imports both the traits and the derive macros, and `serde_json`
//! `to_string{_pretty}` / `from_str` work against any deriving type.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, ordered JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (always `< 0`; non-negative parses to [`Value::UInt`]).
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with preserved insertion order.
    Object(Vec<(String, Value)>),
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Derive support helpers (used by serde_derive's generated code).
// ---------------------------------------------------------------------------

/// Extracts the object pairs or reports what was found instead.
pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
    match v {
        Value::Object(pairs) => Ok(pairs),
        other => Err(DeError::new(format!("expected object for {ty}, found {other:?}"))),
    }
}

/// Extracts the array elements or reports what was found instead.
pub fn expect_array<'v>(v: &'v Value, ty: &str) -> Result<&'v [Value], DeError> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(DeError::new(format!("expected array for {ty}, found {other:?}"))),
    }
}

/// Looks up and deserializes a named struct field.
pub fn from_field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::new(format!("in field `{name}`: {e}")))
        }
        None => Err(DeError::new(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for i64")))?,
                    other => {
                        return Err(DeError::new(format!(
                            "expected {}, found {other:?}", stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ---------------------------------------------------------------------------
// Composite impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        expect_array(v, "Vec")?.iter().map(T::from_value).collect()
    }
}

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        expect_object(v, "HashMap")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = expect_array(v, "tuple")?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(DeError::new(format!(
                        "expected {}-tuple, found array of {}", want, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&5u32.to_value()), Ok(5));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(f64::from_value(&Value::UInt(2)), Ok(2.0));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".into()));
    }

    #[test]
    fn composites_round_trip() {
        let v: Vec<Option<(u32, f64)>> = vec![Some((1, 0.5)), None];
        let round: Vec<Option<(u32, f64)>> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(v, round);
    }

    #[test]
    fn errors_name_the_field() {
        let obj = vec![("a".to_string(), Value::Str("x".into()))];
        let err = from_field::<u32>(&obj, "a").unwrap_err();
        assert!(err.to_string().contains("field `a`"));
        assert!(from_field::<u32>(&obj, "b").unwrap_err().to_string().contains("missing"));
    }
}
