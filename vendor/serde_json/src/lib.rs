//! Offline shim for `serde_json` (see `vendor/README.md`).
//!
//! Serialises any `serde::Serialize` type (the vendor shim flavour) to JSON
//! text and parses JSON text back through `serde::Deserialize`. Floats are
//! printed with Rust's shortest-round-trip `Display`, so every finite value
//! survives a text round trip bit-exactly; non-finite floats become `null`
//! (matching real serde_json).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error raised by [`from_str`] (parse errors carry a byte offset) or
/// propagated from field-level deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Self { msg: msg.into(), offset: Some(offset) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self { msg: e.to_string(), offset: None }
    }
}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's Display for f64 is shortest-round-trip; force a
                // fractional/exponent marker so re-parsing stays a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |out, item, ind, d| {
                write_value(out, item, ind, d)
            })
        }
        Value::Object(pairs) => {
            write_seq(out, pairs.iter(), indent, depth, ('{', '}'), |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    let last = items.len().checked_sub(1);
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if Some(i) != last {
            out.push(',');
        } else if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(Error::parse(format!("unexpected character `{}`", other as char), self.pos))
            }
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::parse("short \\u escape", start))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::parse("bad \\u escape", start))?,
                                16,
                            )
                            .map_err(|_| Error::parse("bad \\u escape", start))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::parse("bad \\u code point", start))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::parse("unknown escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (json, back) in [
            ("null", "null"),
            ("true", "true"),
            ("42", "42"),
            ("-7", "-7"),
            ("0.5", "0.5"),
            ("\"a b\"", "\"a b\""),
        ] {
            let v: Value = {
                let mut p = Parser { bytes: json.as_bytes(), pos: 0 };
                p.value().unwrap()
            };
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, back);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0, 2.0f64.powi(60)] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn nested_structures_parse() {
        let v: Vec<Option<(u32, f64)>> = from_str("[[1, 2.5], null]").unwrap();
        assert_eq!(v, vec![Some((1, 2.5)), None]);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"slash\\tab\tunicode\u{1f600}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }
}
