//! Offline shim for `proptest` (see `vendor/README.md`).
//!
//! Provides the [`Strategy`] trait, the combinators this workspace uses
//! (`prop_map`, `prop_flat_map`, ranges, tuples, [`Just`],
//! `prop::collection::vec`, `prop::option::of`), the [`proptest!`] macro,
//! and the `prop_assert*` / `prop_assume!` macros. Cases are generated from
//! a deterministic per-test seed (an FNV hash of the test name), so runs
//! are exactly reproducible. Unlike real proptest there is **no shrinking**:
//! a failing case panics with the generated inputs left to the assertion
//! message.

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range (no NaN/inf: the real
        // crate excludes them by default too).
        let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy over a type's whole (finite) domain: `any::<u64>()`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn gen(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator backing the runner (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[0, bound)`; `bound > 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            if (m as u64) >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_bounded(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_bounded(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start as f64
                    + rng.next_f64() * (self.end as f64 - self.start as f64);
                x as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                let x = lo + rng.next_f64() * (hi - lo);
                x as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s with element strategy `element` and a size
        /// drawn from `size` (a `usize` for exact length, or a range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.gen(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// `None` a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_f64() < 0.25 {
                    None
                } else {
                    Some(self.inner.gen(rng))
                }
            }
        }
    }
}

/// Collection size specification: exact or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.next_bounded((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Defines property tests. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let ($($pat,)+) = ($( $crate::Strategy::gen(&($strategy), &mut rng) ,)+);
                $body
            }
        }
    )*};
}

/// Asserts inside a property (panics with the condition text on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discards the current case when `cond` is false (moves to the next one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn arb_pair() -> impl Strategy<Value = (u32, f64)> {
        (0u32..10, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..15, y in -2.0f64..3.0) {
            prop_assert!((5..15).contains(&x));
            prop_assert!((-2.0..3.0).contains(&y));
        }

        #[test]
        fn combinators_compose((a, b) in arb_pair(), v in prop::collection::vec(0u32..5, 1..4)) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_uses_outer_value(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(Just(n), n)) ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == v.len()));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut rng = TestRng::from_name("fixed");
            (0..5).map(|_| (0u32..1000).gen(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn option_of_mixes_none_and_some() {
        let strat = prop::option::of(0u32..5);
        let mut rng = TestRng::from_name("mix");
        let draws: Vec<Option<u32>> = (0..200).map(|_| strat.gen(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
    }
}
