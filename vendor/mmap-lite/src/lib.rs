//! Offline shim for read-only memory mapping (see `vendor/README.md`).
//!
//! Implements the minimal surface the zero-copy snapshot path needs: map a
//! whole file read-only ([`Mmap::open`]), expose it as `&[u8]`
//! ([`Mmap::as_slice`]), and hint the kernel about the access pattern
//! ([`Mmap::advise`]). On 64-bit unix this is a real `mmap(2)`/`madvise(2)`
//! (declared directly against libc, which `std` already links — no external
//! crate). Everywhere else — or if the syscall fails — it degrades to a
//! 64-byte-aligned owned buffer filled by an ordinary file read, so callers
//! get the same aligned-slice contract either way and only lose the
//! page-cache sharing. [`Mmap::is_mapped`] reports which one you got.
//!
//! The mapping is private and read-only; the kernel page cache backs it, so
//! opening a multi-GiB artifact is O(1) work and resident memory grows only
//! with the pages actually touched.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// Access-pattern hint forwarded to `madvise(2)` where available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// No special treatment (`MADV_NORMAL`).
    Normal,
    /// Expect random access; read-ahead is wasted (`MADV_RANDOM`).
    Random,
    /// Expect sequential access; aggressive read-ahead (`MADV_SEQUENTIAL`).
    Sequential,
    /// Expect access soon; start faulting pages in (`MADV_WILLNEED`).
    WillNeed,
}

enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: *mut u8, len: usize },
    /// Owned fallback: a 64-byte-aligned buffer holding the whole file.
    Owned { ptr: *mut u8, len: usize, layout: Option<std::alloc::Layout> },
}

/// A read-only view of a whole file, memory-mapped when the platform
/// allows, otherwise an aligned owned copy.
pub struct Mmap {
    backing: Backing,
}

// Safety: the mapping is immutable for the life of the value (PROT_READ,
// MAP_PRIVATE; the owned fallback is never written after construction), so
// sharing references across threads is as safe as sharing a `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    //! Hand-declared libc bindings; `std` links libc on unix, so these
    //! resolve without any external crate.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MADV_NORMAL: c_int = 0;
    pub const MADV_RANDOM: c_int = 1;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_WILLNEED: c_int = 3;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }
}

impl Mmap {
    /// Maps `path` read-only. Empty files yield an empty (owned) view.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "file too large to map"));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Owned { ptr: std::ptr::null_mut(), len: 0, layout: None },
            });
        }

        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr != sys::MAP_FAILED {
                return Ok(Mmap { backing: Backing::Mapped { ptr: ptr as *mut u8, len } });
            }
            // Fall through to the owned read on ENODEV/ENOMEM-style failures.
        }

        Self::read_owned(&mut file, len)
    }

    /// Fallback: read the whole file into a 64-byte-aligned owned buffer.
    fn read_owned(file: &mut File, len: usize) -> io::Result<Mmap> {
        let layout = std::alloc::Layout::from_size_align(len, 64)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad buffer layout"))?;
        let ptr = unsafe { std::alloc::alloc(layout) };
        if ptr.is_null() {
            return Err(io::Error::new(
                io::ErrorKind::OutOfMemory,
                "mmap fallback allocation failed",
            ));
        }
        let buf = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        if let Err(e) = file.read_exact(buf) {
            unsafe { std::alloc::dealloc(ptr, layout) };
            return Err(e);
        }
        Ok(Mmap { backing: Backing::Owned { ptr, len, layout: Some(layout) } })
    }

    /// The mapped bytes. The pointer is page-aligned when mapped and
    /// 64-byte-aligned in the owned fallback.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned { ptr, len, .. } => {
                if ptr.is_null() {
                    &[]
                } else {
                    unsafe { std::slice::from_raw_parts(*ptr, *len) }
                }
            }
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { len, .. } => *len,
            Backing::Owned { len, .. } => *len,
        }
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this view is a true kernel mapping (false = owned fallback).
    #[inline]
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { .. } => true,
            Backing::Owned { .. } => false,
        }
    }

    /// Hints the kernel about the expected access pattern. A no-op (always
    /// Ok) for the owned fallback; syscall errors are swallowed — advice is
    /// best-effort by definition.
    pub fn advise(&self, advice: Advice) {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { ptr, len } => {
                let a = match advice {
                    Advice::Normal => sys::MADV_NORMAL,
                    Advice::Random => sys::MADV_RANDOM,
                    Advice::Sequential => sys::MADV_SEQUENTIAL,
                    Advice::WillNeed => sys::MADV_WILLNEED,
                };
                unsafe {
                    sys::madvise(*ptr as *mut std::os::raw::c_void, *len, a);
                }
            }
            Backing::Owned { .. } => {
                let _ = advice;
            }
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { ptr, len } => unsafe {
                sys::munmap(*ptr as *mut std::os::raw::c_void, *len);
            },
            Backing::Owned { ptr, layout, .. } => {
                if let Some(layout) = layout {
                    unsafe { std::alloc::dealloc(*ptr, *layout) };
                }
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).field("mapped", &self.is_mapped()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("mmap-lite-test-{name}-{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn maps_a_file_and_reads_it_back() {
        let path = tmp_file("roundtrip", b"hello mapped world");
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.as_slice(), b"hello mapped world");
        assert_eq!(map.len(), 18);
        map.advise(Advice::Sequential);
        map.advise(Advice::Random);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_files_map_to_an_empty_view() {
        let path = tmp_file("empty", b"");
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        assert!(!map.is_mapped(), "empty views use the owned representation");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_files_error_cleanly() {
        let err = Mmap::open(Path::new("/nonexistent/mmap-lite-missing")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn unix_views_are_real_mappings() {
        let path = tmp_file("mapped", &[0xA5u8; 8192]);
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_mapped());
        assert_eq!(map.as_slice().len(), 8192);
        assert!(map.as_slice().iter().all(|&b| b == 0xA5));
        assert_eq!(map.as_slice().as_ptr() as usize % 64, 0, "page-aligned implies 64-aligned");
        std::fs::remove_file(&path).unwrap();
    }
}
