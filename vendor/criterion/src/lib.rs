//! Offline shim for `criterion` (see `vendor/README.md`).
//!
//! Keeps the bench sources compiling and *running* without the real crate:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`, `BenchmarkId`, `black_box`, and
//! `Bencher::iter`. Each benchmark is warmed up, then timed for a fixed
//! number of samples; mean, min, and max per-iteration times are printed in
//! a stable, greppable one-line format:
//!
//! ```text
//! bench: gibbs_sweep/sequential/500  mean 1.234 ms  (min 1.201 ms, max 1.310 ms, 10 samples)
//! ```
//!
//! There is no statistical analysis, HTML report, or baseline comparison —
//! numbers land on stdout and BENCHMARKS.md records the trajectory by hand.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut run: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.default_sample_size, &mut run);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark under `group_name/name`.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut run: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut run);
        self
    }

    /// Runs a parameterised benchmark; the input is passed back to the
    /// closure, matching criterion's signature.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut run: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, &mut |b| run(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the hot code.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample, after warmup.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm up: run until ~50 ms or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warmups = 0;
        while warmups < 3 && warm_start.elapsed() < Duration::from_millis(50) {
            hint::black_box(routine());
            warmups += 1;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one(name: &str, sample_size: usize, run: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { sample_size, samples: Vec::new() };
    run(&mut b);
    if b.samples.is_empty() {
        println!("bench: {name}  (no samples — closure never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let max = *b.samples.iter().max().expect("non-empty");
    println!(
        "bench: {name}  mean {}  (min {}, max {}, {} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        b.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        // 3 warmups max + 3 samples.
        assert!(calls >= 3, "routine must run at least once per sample");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
