//! Workspace root for the MLP reproduction (Li, Wang & Chang, PVLDB 2012).
//!
//! The real code lives in the `crates/` members; this package exists so the
//! repository-level integration tests (`tests/`) and runnable examples
//! (`examples/`) have a home in the Cargo workspace. See the top-level
//! `README.md` for the crate map and quickstart.

pub use mlp;
