//! Warm-start serving end to end: train once, freeze the posterior, ship
//! the bytes, and answer predictions for users the model never saw —
//! without touching the trained counts. Everything runs through the
//! [`ServingEngine`] facade: the artifact thaws straight into an engine,
//! and requests are typed `ProfileRequest`s.
//!
//! ```sh
//! cargo run --release --example warm_start_serving
//! ```
//!
//! The example doubles as the CI fold-in smoke check: it asserts that an
//! engine thawed from artifact bytes serves identically to one built from
//! the in-memory snapshot and that the batched (threads = 4) serving path
//! is bit-identical to sequential, then prints the determinism hash of
//! the predictions.

use mlp::core::response_determinism_hash;
use mlp::prelude::*;
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    // A synthetic Twitter over real US cities; the last 40 users are our
    // "future signups" — stripped from the training corpus entirely.
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 300, seed: 42, ..Default::default() })
            .generate();
    let unseen: Vec<UserId> = (260..300).map(UserId).collect();
    let held: HashSet<UserId> = unseen.iter().copied().collect();

    let mut train = data.dataset.mask_users(&unseen);
    train.edges.retain(|e| !held.contains(&e.follower) && !held.contains(&e.friend));
    train.mentions.retain(|m| !held.contains(&m.user));

    // Offline: cold-train an engine and publish the artifact bytes.
    let t0 = Instant::now();
    let config = MlpConfig { iterations: 12, burn_in: 6, seed: 42, ..Default::default() };
    let trainer = ServingEngine::builder(&gaz).mlp_config(config).train(&train).unwrap();
    let trained_in = t0.elapsed();
    let bytes = trainer.encode_artifact().unwrap();
    println!(
        "trained {} users in {trained_in:.2?}; snapshot = {} KiB",
        train.num_users() - unseen.len(),
        bytes.len() / 1024
    );

    // Online: a replica thaws the bytes into its own serving engine.
    let replica = ServingEngine::builder(&gaz).from_artifact(bytes).expect("artifact thaws");
    assert_eq!(
        replica.snapshot().snapshot(),
        trainer.snapshot().snapshot(),
        "shipped artifact must equal the original posterior"
    );

    let mut requests = ProfileRequest::batch_from_dataset(&data.dataset, &unseen);
    for req in &mut requests {
        req.observations.neighbors.retain(|p| !held.contains(p));
    }

    let t1 = Instant::now();
    let sequential = replica.profile_batch(&requests).unwrap();
    let served_in = t1.elapsed();

    let batched = ServingEngine::builder(&gaz)
        .fold_in_config(FoldInConfig { threads: 4, ..Default::default() })
        .from_snapshot(replica.snapshot().snapshot().clone())
        .unwrap()
        .profile_batch(&requests)
        .unwrap();
    assert_eq!(sequential, batched, "batched serving must be bit-identical to sequential");

    let hits = unseen
        .iter()
        .zip(&sequential)
        .filter(|&(&u, r)| gaz.distance(r.ranked.home(), data.truth.home(u)) <= 100.0)
        .count();
    println!(
        "served {} unseen users in {served_in:.2?} ({hits} within 100 miles of their true home)",
        unseen.len()
    );
    for (&u, response) in unseen.iter().zip(&sequential).take(5) {
        let &(city, p) = &response.ranked.as_slice()[0];
        println!(
            "  {u}: {} (p = {p:.2}; truth {})",
            gaz.city(city).full_name(),
            gaz.city(data.truth.home(u)).full_name()
        );
    }
    println!("determinism hash: {:#018x}", response_determinism_hash(&sequential));
}
