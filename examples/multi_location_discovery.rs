//! Multi-location discovery: the paper's motivating scenario (Sec. 1).
//!
//! "Carol" lives in Los Angeles but studied in Austin; she follows friends
//! from and tweets venues about both. A single-location method averages or
//! picks one side; MLP discovers both. This example finds the synthetic
//! Carols — users with two widely separated true locations — and compares
//! what MLP and BaseU discover for them.
//!
//! Run with: `cargo run --release --example multi_location_discovery`

use mlp::prelude::*;

fn main() {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 1_500, seed: 11, ..Default::default() })
            .generate();

    let config = MlpConfig { iterations: 15, burn_in: 7, ..Default::default() };
    let result = Mlp::new(&gaz, &data.dataset, config).expect("valid inputs").run();
    let base_u = BaseU::fit(&gaz, &data.dataset, &BaseUConfig::default());

    // The synthetic Carols: two true locations ≥ 800 miles apart.
    let carols: Vec<UserId> = data
        .truth
        .multi_location_users()
        .into_iter()
        .filter(|&u| {
            let locs = data.truth.locations(u);
            gaz.distance(locs[0], locs[1]) >= 800.0
        })
        .take(5)
        .collect();
    println!("found {} far-separated multi-location users; showing 5:\n", carols.len());

    let name = |c: CityId| gaz.city(c).full_name();
    let mut mlp_both = 0;
    let mut base_both = 0;
    for &u in &carols {
        let truth = data.truth.locations(u);
        let mlp_top2 = result.top_k(u, 2);
        let base_top2 = base_u.predict_ranked(u, 2);

        let covers = |preds: &[CityId]| {
            truth.iter().take(2).all(|&t| preds.iter().any(|&p| gaz.distance(p, t) <= 100.0))
        };
        mlp_both += covers(&mlp_top2) as u32;
        base_both += covers(&base_top2) as u32;

        println!("user {u}");
        println!("  true : {} / {}", name(truth[0]), name(truth[1]));
        println!("  MLP  : {}", mlp_top2.iter().map(|&c| name(c)).collect::<Vec<_>>().join(" / "));
        println!(
            "  BaseU: {}\n",
            base_top2.iter().map(|&c| name(c)).collect::<Vec<_>>().join(" / ")
        );
    }
    println!(
        "both-regions-covered (top-2 within 100mi of each true location): MLP {mlp_both}/{} vs \
         BaseU {base_both}/{}",
        carols.len(),
        carols.len()
    );
}
