//! Home-location prediction under cross-validation: a miniature Table 2.
//!
//! Runs one fold of the paper's five-fold protocol for all five methods
//! plus the voting strawman, printing ACC@100 and the AAD curve. For the
//! full-scale regeneration use the bench binary
//! `cargo run -p mlp-bench --bin table2_home_prediction --release`.
//!
//! Run with: `cargo run --release --example home_prediction_cv`

use mlp::eval::table::pct;
use mlp::eval::TextTable;
use mlp::prelude::*;

fn main() {
    let mut ctx = ExperimentContext::standard(1_200, 300, 17);
    ctx.mlp_config = MlpConfig { iterations: 15, burn_in: 7, seed: 17, ..Default::default() };

    let mut task = HomeTask::new(&ctx);
    task.folds_to_run = 1;

    let methods =
        [Method::Voting, Method::BaseU, Method::BaseC, Method::MlpU, Method::MlpC, Method::Mlp];
    let mut table = TextTable::new(vec!["Method", "ACC@100", "ACC@20", "ACC@140"]);
    for method in methods {
        let report = task.run_method(method);
        let at = |m: f64| {
            report
                .aad
                .iter()
                .find(|&&(d, _)| (d - m).abs() < 1e-9)
                .map(|&(_, a)| pct(a))
                .unwrap_or_default()
        };
        table.add_row(vec![method.to_string(), pct(report.acc_at_100), at(20.0), at(140.0)]);
        eprintln!("  finished {method}");
    }
    println!("{table}");
    println!("paper (Table 2, real crawl): BaseU 52.44%, BaseC 49.67%, MLP_U 58.8%, MLP_C 55.3%, MLP 62.3%");
}
