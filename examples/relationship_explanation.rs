//! Relationship explanation: grouping a user's network into geo groups.
//!
//! The paper's Sec. 5.3 application: once every following relationship
//! carries location assignments, a user's friends and followers can be
//! bucketed into geo groups ("Carol is in Lucy's Austin group"). This
//! example picks a showcase multi-location user and prints their network
//! grouped by MLP's per-edge assignments.
//!
//! Run with: `cargo run --release --example relationship_explanation`

use mlp::core::geo_groups;
use mlp::prelude::*;
use mlp::social::Adjacency;

fn main() {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 1_500, seed: 13, ..Default::default() })
            .generate();

    let config = MlpConfig { iterations: 15, burn_in: 7, ..Default::default() };
    let result = Mlp::new(&gaz, &data.dataset, config).expect("valid inputs").run();

    let adj = Adjacency::build(&data.dataset);
    let user =
        mlp::eval::observations::showcase_user(&data.dataset, &data.truth, &gaz, &adj, 500.0)
            .expect("a far-separated multi-location user exists at this scale");

    let name = |c: CityId| gaz.city(c).full_name();
    let truth: Vec<String> = data.truth.locations(user).iter().map(|&c| name(c)).collect();
    println!("showcase user {user}: true locations {}", truth.join(" / "));
    println!(
        "inferred profile: {}\n",
        result.profiles[user.index()]
            .iter()
            .take(3)
            .map(|&(c, p)| format!("{} ({:.0}%)", name(c), p * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Partition the network into geo groups (the paper's Sec. 5.3
    // application) with the library API.
    let grouping = geo_groups::geo_groups(&data.dataset, &adj, &result, user);
    for group in &grouping.groups {
        println!("geo group [{}] — {} members", name(group.location), group.members.len());
        for &other in group.members.iter().take(6) {
            println!(
                "    {other} ({})",
                data.dataset.registered[other.index()].map_or("?".into(), name)
            );
        }
    }
    if !grouping.noisy.is_empty() {
        println!("flagged noisy (no geo group): {}", grouping.noisy.len());
    }
}
