//! Quickstart: profile users' locations on a small synthetic Twitter.
//!
//! Mirrors the paper's Fig. 1 scenario: users follow friends from and tweet
//! venues about *all* of their long-term locations, some relationships are
//! pure noise, and only registered home cities are observed. MLP recovers a
//! multi-location profile per user and an explanation per relationship.
//!
//! Run with: `cargo run --release --example quickstart`

use mlp::prelude::*;

fn main() {
    // 1. Candidate locations: the embedded gazetteer of real US cities.
    let gaz = Gazetteer::us_cities();
    println!("gazetteer: {} cities, {} venue names", gaz.num_cities(), gaz.num_venues());

    // 2. A synthetic Twitter whose generative story is the paper's model:
    //    multi-location users, power-law-over-distance follows, local +
    //    popular venue mentions, celebrity noise.
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 1_000, seed: 7, ..Default::default() })
            .generate();
    println!(
        "dataset: {} users, {} follows, {} venue mentions",
        data.dataset.num_users(),
        data.dataset.num_edges(),
        data.dataset.num_mentions()
    );

    // 3. Run MLP. Defaults are the paper's hyper-parameters; (α, β) are
    //    re-learned from the labeled users exactly as in Sec. 4.1.
    let config = MlpConfig { iterations: 15, burn_in: 7, ..Default::default() };
    let result = Mlp::new(&gaz, &data.dataset, config).expect("valid inputs").run();
    println!(
        "inference done: power law alpha = {:.3}, mean candidates/user = {:.1}",
        result.power_law.alpha, result.mean_candidates
    );

    // 4. Read off a few location profiles.
    println!("\nfirst five users:");
    for u in 0..5u32 {
        let user = UserId(u);
        let profile: Vec<String> = result.profiles[user.index()]
            .iter()
            .take(3)
            .map(|&(c, p)| format!("{} ({:.0}%)", gaz.city(c).full_name(), p * 100.0))
            .collect();
        let truth: Vec<String> =
            data.truth.locations(user).iter().map(|&c| gaz.city(c).full_name()).collect();
        println!("  {user}: inferred {} | true {}", profile.join(", "), truth.join(", "));
    }

    // 5. And one explained relationship.
    if let Some((s, edge)) = data.dataset.edges.iter().enumerate().next() {
        let a = &result.edge_assignments[s];
        println!(
            "\n{} follows {} — explained as {} -> {}{}",
            edge.follower,
            edge.friend,
            gaz.city(a.x).full_name(),
            gaz.city(a.y).full_name(),
            if a.noisy { " (flagged noisy)" } else { "" }
        );
    }
}
