//! Online posterior refresh end to end, through the [`ServingEngine`]
//! facade: cold-train on yesterday's users, absorb today's signups with
//! `refresh_from_dataset` (each committed batch publishes a new epoch —
//! no retrain), publish the incremental artifact, and verify a replica
//! thaws it to exactly the refreshed posterior.
//!
//! ```sh
//! cargo run --release --example online_refresh
//! ```
//!
//! The example doubles as a smoke check for the refresh pipeline: it
//! asserts that refresh answers match plain serving, that the incremental
//! artifact (base payload + delta records) decodes back to the published
//! posterior, and that a second identical run commits byte-identical
//! artifacts.

use mlp::prelude::*;
use std::time::Instant;

fn run_refresh<'a>(gaz: &'a Gazetteer, data: &GeneratedData) -> (ServingEngine<'a>, usize) {
    // Yesterday: train on the first 260 users only — the last 40 do not
    // exist yet (no labels, no edges, no mentions).
    let config = MlpConfig { iterations: 12, burn_in: 6, seed: 42, ..Default::default() };
    let engine =
        ServingEngine::builder(gaz).mlp_config(config).train(&data.dataset.prefix(260)).unwrap();

    // Today: signups arrive in two batches of 20. The engine folds each
    // batch in against the current epoch, commits, and publishes the next
    // epoch — so the second batch may cite first-batch users as neighbors.
    let signups: Vec<UserId> = (260..300).map(UserId).collect();
    let report = engine.refresh_from_dataset(&data.dataset, &signups, 20).unwrap();
    let hits = signups
        .iter()
        .zip(&report.profiles)
        .filter(|&(&u, r)| gaz.distance(r.ranked.home(), data.truth.home(u)) <= 100.0)
        .count();
    (engine, hits)
}

fn main() {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 300, seed: 42, ..Default::default() })
            .generate();

    let t0 = Instant::now();
    let (engine, hits) = run_refresh(&gaz, &data);
    let refreshed_in = t0.elapsed();
    println!(
        "absorbed 40 signups in {} commits ({hits} within 100 miles of their true home) \
         in {refreshed_in:.2?}",
        engine.commits()
    );

    // Publish: base payload + delta records, appended per commit.
    let artifact = engine.encode_artifact().unwrap();
    println!(
        "refreshed posterior: {} users, epoch {}, artifact = {} KiB",
        engine.snapshot().num_users(),
        engine.epoch(),
        artifact.len() / 1024
    );

    // A replica thaws the incremental artifact to the exact posterior.
    let replica =
        ServingEngine::builder(&gaz).from_artifact(artifact).expect("artifact thaws into engine");
    assert_eq!(
        replica.snapshot().snapshot(),
        engine.snapshot().snapshot(),
        "replica must thaw to the published posterior"
    );

    // The whole pipeline is deterministic: a second run publishes
    // byte-identical bytes.
    let (again, _) = run_refresh(&gaz, &data);
    assert_eq!(
        engine.encode_artifact().unwrap(),
        again.encode_artifact().unwrap(),
        "repeat refresh must publish byte-identical artifacts"
    );

    // Staleness check: the default policy allows 8 commits before asking
    // for a cold retrain, so after 2 we are comfortably fresh.
    println!(
        "commits since base: {} (policy says refresh: {})",
        engine.commits(),
        engine.needs_retrain()
    );
}
