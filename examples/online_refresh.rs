//! Online posterior refresh end to end: train on yesterday's users,
//! absorb today's signups through the [`OnlineUpdater`] in committed
//! batches (no retrain), publish the incremental artifact, and verify a
//! replica thaws it to exactly the refreshed posterior.
//!
//! ```sh
//! cargo run --release --example online_refresh
//! ```
//!
//! The example doubles as a smoke check for the refresh pipeline: it
//! asserts that absorbed answers match plain serving, that the
//! incremental artifact (base payload + delta records) decodes back to
//! the live snapshot, and that a second identical run commits
//! byte-identical artifacts.

use mlp::prelude::*;
use std::time::Instant;

fn run_refresh<'a>(gaz: &'a Gazetteer, data: &GeneratedData) -> (OnlineUpdater<'a>, usize) {
    // Yesterday: train on the first 260 users only — the last 40 do not
    // exist yet (no labels, no edges, no mentions).
    let d0 = data.dataset.prefix(260);
    let config = MlpConfig { iterations: 12, burn_in: 6, seed: 42, ..Default::default() };
    let (_, snapshot) = Mlp::new(gaz, &d0, config).unwrap().run_with_snapshot();

    let mut updater =
        OnlineUpdater::new(gaz, snapshot, FoldInConfig::default(), StalenessPolicy::default())
            .unwrap();

    // Today: signups arrive in two batches of 20. Each batch is folded in
    // against the current posterior and committed, so the second batch
    // may cite first-batch users as neighbors.
    let mut hits = 0usize;
    for start in [260u32, 280u32] {
        let ids: Vec<UserId> = (start..start + 20).map(UserId).collect();
        let mut batch = NewUserObservations::batch_from_dataset(&data.dataset, &ids);
        let known = updater.snapshot().num_users();
        for obs in &mut batch {
            obs.neighbors.retain(|p| p.index() < known);
        }
        let profiles = updater.absorb(&batch).unwrap();
        hits += ids
            .iter()
            .zip(&profiles)
            .filter(|&(&u, p)| gaz.distance(p.home(), data.truth.home(u)) <= 100.0)
            .count();
        updater.commit().unwrap();
    }
    (updater, hits)
}

fn main() {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 300, seed: 42, ..Default::default() })
            .generate();

    let t0 = Instant::now();
    let (updater, hits) = run_refresh(&gaz, &data);
    let refreshed_in = t0.elapsed();
    println!(
        "absorbed 40 signups in {} commits ({hits} within 100 miles of their true home) \
         in {refreshed_in:.2?}",
        updater.commits()
    );

    // Publish: base payload + delta records, appended per commit.
    let artifact = updater.encode_artifact().unwrap();
    println!(
        "refreshed posterior: {} users, {} delta records, artifact = {} KiB",
        updater.snapshot().num_users(),
        updater.committed_deltas().len(),
        artifact.len() / 1024
    );

    // A replica thaws the incremental artifact to the exact posterior.
    let thawed = PosteriorSnapshot::decode(artifact).expect("artifact decodes");
    assert_eq!(&thawed, updater.snapshot(), "replica must thaw to the live posterior");

    // The whole pipeline is deterministic: a second run publishes
    // byte-identical bytes.
    let (again, _) = run_refresh(&gaz, &data);
    assert_eq!(
        updater.encode_artifact().unwrap(),
        again.encode_artifact().unwrap(),
        "repeat refresh must publish byte-identical artifacts"
    );

    // Staleness check: the default policy allows 8 commits before asking
    // for a cold retrain, so after 2 we are comfortably fresh.
    println!(
        "commits since base: {} (policy says refresh: {})",
        updater.commits(),
        updater.needs_refresh()
    );
}
