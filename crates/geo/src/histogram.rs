//! Distance- and latency-bucketed event histograms.
//!
//! Fig. 3(a) of the paper is built by bucketing ~2.5·10^10 labeled-user
//! pairs into 1-mile intervals and, per bucket, dividing the number of pairs
//! with a following relationship by the total pairs. [`DistanceHistogram`]
//! is that structure: a `trials` counter and a `successes` counter per
//! bucket, yielding an empirical probability curve that [`crate::powerlaw`]
//! can fit.
//!
//! [`LatencyHistogram`] reuses the same fixed-memory recording idea for the
//! serving benchmarks: log-spaced buckets over nanosecond samples, O(1)
//! record, mergeable across worker threads, with quantile readout
//! (p50/p99/p999) at a bounded ≤6.25% relative error.

use serde::{Deserialize, Serialize};

/// Fixed-width distance histogram tracking Bernoulli trials per bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceHistogram {
    bucket_miles: f64,
    trials: Vec<u64>,
    successes: Vec<u64>,
    /// Trials at or beyond the last bucket edge.
    overflow_trials: u64,
    overflow_successes: u64,
}

impl DistanceHistogram {
    /// Creates a histogram covering `[0, max_miles)` with `bucket_miles`-wide
    /// buckets (the paper uses 1-mile buckets).
    ///
    /// # Panics
    /// Panics if `bucket_miles` or `max_miles` is not strictly positive.
    pub fn new(bucket_miles: f64, max_miles: f64) -> Self {
        assert!(bucket_miles > 0.0, "bucket width must be positive");
        assert!(max_miles > 0.0, "range must be positive");
        let n = (max_miles / bucket_miles).ceil() as usize;
        Self {
            bucket_miles,
            trials: vec![0; n],
            successes: vec![0; n],
            overflow_trials: 0,
            overflow_successes: 0,
        }
    }

    /// Number of in-range buckets.
    pub fn num_buckets(&self) -> usize {
        self.trials.len()
    }

    /// Bucket width in miles.
    pub fn bucket_miles(&self) -> f64 {
        self.bucket_miles
    }

    /// Records one trial at distance `d`; `success` marks whether the event
    /// (e.g. "this pair has a following relationship") occurred.
    #[inline]
    pub fn record(&mut self, d: f64, success: bool) {
        if !(d >= 0.0) {
            return; // NaN / negative distances carry no information
        }
        let idx = (d / self.bucket_miles) as usize;
        if idx < self.trials.len() {
            self.trials[idx] += 1;
            self.successes[idx] += success as u64;
        } else {
            self.overflow_trials += 1;
            self.overflow_successes += success as u64;
        }
    }

    /// Records `trials` trials with `successes` successes at distance `d`.
    ///
    /// Trials and successes may be recorded by *independent* calls — the
    /// power-law fitters bucket all candidate pairs first (`successes = 0`)
    /// and then stream observed edges in (`trials = 0`) — so `successes >
    /// trials` within one call is legal. Keeping the aggregate per-bucket
    /// ratio at or below 1 is the *caller's* invariant; curve consumers
    /// must reject `p > 1` buckets (both power-law fitters filter them).
    pub fn record_bulk(&mut self, d: f64, trials: u64, successes: u64) {
        if !(d >= 0.0) {
            return;
        }
        let idx = (d / self.bucket_miles) as usize;
        if idx < self.trials.len() {
            self.trials[idx] += trials;
            self.successes[idx] += successes;
        } else {
            self.overflow_trials += trials;
            self.overflow_successes += successes;
        }
    }

    /// Total trials recorded, including overflow.
    pub fn total_trials(&self) -> u64 {
        self.trials.iter().sum::<u64>() + self.overflow_trials
    }

    /// Total successes recorded, including overflow.
    pub fn total_successes(&self) -> u64 {
        self.successes.iter().sum::<u64>() + self.overflow_successes
    }

    /// Empirical probability per bucket as `(bucket_center_miles, p)` for
    /// buckets with at least `min_trials` trials and at least one success
    /// (zero-probability buckets are unusable in log–log space).
    pub fn probability_curve(&self, min_trials: u64) -> Vec<(f64, f64)> {
        self.trials
            .iter()
            .zip(&self.successes)
            .enumerate()
            .filter(|(_, (&t, &s))| t >= min_trials.max(1) && s > 0)
            .map(|(i, (&t, &s))| {
                let center = (i as f64 + 0.5) * self.bucket_miles;
                (center, s as f64 / t as f64)
            })
            .collect()
    }

    /// Weighted probability curve `(center, p, trials)` for
    /// [`crate::powerlaw::fit_log_log_weighted`].
    pub fn weighted_curve(&self, min_trials: u64) -> Vec<(f64, f64, f64)> {
        self.trials
            .iter()
            .zip(&self.successes)
            .enumerate()
            .filter(|(_, (&t, &s))| t >= min_trials.max(1) && s > 0)
            .map(|(i, (&t, &s))| {
                let center = (i as f64 + 0.5) * self.bucket_miles;
                (center, s as f64 / t as f64, t as f64)
            })
            .collect()
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    /// Panics if the two histograms have different bucket width or count.
    pub fn merge(&mut self, other: &DistanceHistogram) {
        assert_eq!(self.bucket_miles, other.bucket_miles, "bucket width mismatch");
        assert_eq!(self.trials.len(), other.trials.len(), "bucket count mismatch");
        for (a, b) in self.trials.iter_mut().zip(&other.trials) {
            *a += b;
        }
        for (a, b) in self.successes.iter_mut().zip(&other.successes) {
            *a += b;
        }
        self.overflow_trials += other.overflow_trials;
        self.overflow_successes += other.overflow_successes;
    }
}

/// Sub-bucket resolution of [`LatencyHistogram`]: 2^4 = 16 log-spaced
/// sub-buckets per power of two, bounding the relative quantile error at
/// `1/16 = 6.25%`.
const LAT_SUB_BITS: u32 = 4;
const LAT_SUB: usize = 1 << LAT_SUB_BITS;
/// Total bucket count: the exact region `0..16` plus 16 sub-buckets for
/// each of the 60 remaining octaves of a `u64` (highest index is
/// `60 * 16 + 15`).
const LAT_BUCKETS: usize = (64 - LAT_SUB_BITS as usize + 1) * LAT_SUB;

/// Fixed-memory log-bucketed latency histogram over nanosecond samples.
///
/// Recording is O(1) (a shift, a mask, one counter bump) and never
/// allocates, so it can sit inside a benchmark's hot loop; per-thread
/// histograms [`merge`](Self::merge) losslessly. Values up to 16ns are
/// exact; above that each power of two splits into 16 sub-buckets, so any
/// [`quantile`](Self::quantile) readout is within 6.25% of the true
/// sample. Min, max, count and sum are tracked exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_nanos: u64,
    min_nanos: u64,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram covering the full `u64` nanosecond range.
    pub fn new() -> Self {
        Self {
            counts: vec![0; LAT_BUCKETS],
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        if nanos < LAT_SUB as u64 {
            return nanos as usize; // exact region
        }
        let msb = 63 - nanos.leading_zeros(); // >= LAT_SUB_BITS
        let shift = msb - LAT_SUB_BITS;
        let sub = ((nanos >> shift) as usize) & (LAT_SUB - 1);
        (msb - LAT_SUB_BITS + 1) as usize * LAT_SUB + sub
    }

    /// The `[low, high]` nanosecond range bucket `index` covers.
    fn bucket_bounds(index: usize) -> (u64, u64) {
        if index < LAT_SUB {
            return (index as u64, index as u64);
        }
        let octave = (index / LAT_SUB) as u32; // >= 1
        let sub = (index % LAT_SUB) as u64;
        let shift = octave - 1;
        let low = (LAT_SUB as u64 + sub) << shift;
        let high = ((LAT_SUB as u64 + sub + 1) << shift) - 1;
        (low, high)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// [`Self::record`] for a [`std::time::Duration`] (saturating at
    /// `u64::MAX` nanoseconds — ~584 years).
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded sample (`None` when empty).
    pub fn min_nanos(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_nanos)
    }

    /// Exact largest recorded sample (`None` when empty).
    pub fn max_nanos(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_nanos)
    }

    /// Exact mean in nanoseconds (`None` when empty).
    pub fn mean_nanos(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_nanos as f64 / self.count as f64)
    }

    /// The sample at quantile `q ∈ [0, 1]`, as the midpoint of its bucket
    /// clamped to the exact recorded `[min, max]` — within 6.25% of the
    /// true order statistic. `None` when empty; `q` outside `[0, 1]` is
    /// clamped.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the order statistic asked for.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extremes are tracked exactly — answer them exactly.
        if rank == 1 {
            return Some(self.min_nanos);
        }
        if rank == self.count {
            return Some(self.max_nanos);
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (low, high) = Self::bucket_bounds(i);
                let mid = low + (high - low) / 2;
                return Some(mid.clamp(self.min_nanos, self.max_nanos));
            }
        }
        Some(self.max_nanos) // unreachable: counts sum to self.count
    }

    /// Merges another histogram into this one (lossless — geometry is
    /// fixed, so per-thread recorders always line up).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_bucket() {
        let mut h = DistanceHistogram::new(1.0, 10.0);
        h.record(0.3, true);
        h.record(0.9, false);
        h.record(5.5, true);
        let curve = h.probability_curve(1);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], (0.5, 0.5)); // bucket [0,1): 1 of 2
        assert_eq!(curve[1], (5.5, 1.0)); // bucket [5,6): 1 of 1
    }

    #[test]
    fn overflow_is_tracked_separately() {
        let mut h = DistanceHistogram::new(1.0, 10.0);
        h.record(50.0, true);
        h.record(9.99, true);
        assert_eq!(h.total_trials(), 2);
        assert_eq!(h.probability_curve(1).len(), 1);
    }

    #[test]
    fn min_trials_filters_sparse_buckets() {
        let mut h = DistanceHistogram::new(1.0, 10.0);
        h.record(1.5, true);
        h.record_bulk(2.5, 100, 7);
        let curve = h.probability_curve(10);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].1 - 0.07).abs() < 1e-12);
    }

    #[test]
    fn nan_and_negative_distances_ignored() {
        let mut h = DistanceHistogram::new(1.0, 10.0);
        h.record(f64::NAN, true);
        h.record(-1.0, true);
        assert_eq!(h.total_trials(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DistanceHistogram::new(1.0, 5.0);
        let mut b = DistanceHistogram::new(1.0, 5.0);
        a.record_bulk(2.5, 10, 1);
        b.record_bulk(2.5, 30, 3);
        a.merge(&b);
        let curve = a.probability_curve(1);
        assert_eq!(curve, vec![(2.5, 0.1)]);
        assert_eq!(a.total_trials(), 40);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = DistanceHistogram::new(1.0, 5.0);
        let b = DistanceHistogram::new(2.0, 5.0);
        a.merge(&b);
    }

    #[test]
    fn histogram_plus_fit_recovers_power_law() {
        // End-to-end: generate bucket counts from the paper's curve, fit back.
        let truth = crate::PowerLaw::PAPER_TWITTER;
        let mut h = DistanceHistogram::new(1.0, 2000.0);
        for i in 0..2000u64 {
            let center = i as f64 + 0.5;
            let p = truth.eval(center);
            let trials = 1_000_000u64;
            h.record_bulk(center, trials, (p * trials as f64).round() as u64);
        }
        let fit = crate::fit_log_log(&h.probability_curve(1)).unwrap();
        assert!((fit.alpha - truth.alpha).abs() < 0.01, "alpha {}", fit.alpha);
        assert!((fit.beta / truth.beta - 1.0).abs() < 0.05, "beta {}", fit.beta);
    }

    #[test]
    fn latency_buckets_are_contiguous_and_ordered() {
        // Every u64 maps to a bucket whose bounds contain it, and bucket
        // index is monotone in the sample value.
        let mut prev = 0usize;
        for shift in 0..64u32 {
            for v in [1u64 << shift, (1u64 << shift) + 1, (1u64 << shift).wrapping_sub(1).max(1)] {
                let i = LatencyHistogram::bucket_index(v);
                let (low, high) = LatencyHistogram::bucket_bounds(i);
                assert!(low <= v && v <= high, "v={v} i={i} range=[{low},{high}]");
            }
            let i = LatencyHistogram::bucket_index(1u64 << shift);
            assert!(i >= prev, "indices must not decrease across octaves");
            prev = i;
        }
        assert!(LatencyHistogram::bucket_index(u64::MAX) < LAT_BUCKETS);
    }

    #[test]
    fn latency_quantiles_are_within_relative_error() {
        let mut h = LatencyHistogram::new();
        // 1..=10_000 in a scrambled order; true p50 = 5000, p99 = 9900.
        let mut v = 1u64;
        for _ in 0..10_000 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record(v % 10_000 + 1);
        }
        assert_eq!(h.count(), 10_000);
        for (q, lo, hi) in [(0.5, 4000.0, 6000.0), (0.99, 9000.0, 10_000.0)] {
            let got = h.quantile(q).unwrap() as f64;
            assert!(got >= lo && got <= hi, "q={q} got={got}");
        }
        assert_eq!(h.quantile(1.0), h.max_nanos());
        assert_eq!(h.quantile(0.0), h.min_nanos());
    }

    #[test]
    fn latency_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for (q, want) in [(0.25, 3), (0.5, 7), (0.75, 11)] {
            assert_eq!(h.quantile(q).unwrap(), want, "q={q}");
        }
        assert_eq!(h.mean_nanos().unwrap(), 7.5);
    }

    #[test]
    fn latency_merge_matches_single_recorder() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 997 + 13;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            };
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min_nanos(), all.min_nanos());
        assert_eq!(a.max_nanos(), all.max_nanos());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn latency_empty_histogram_reports_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min_nanos(), None);
        assert_eq!(h.max_nanos(), None);
        assert_eq!(h.mean_nanos(), None);
        assert_eq!(h.count(), 0);
    }
}
