//! Distance-bucketed event histograms.
//!
//! Fig. 3(a) of the paper is built by bucketing ~2.5·10^10 labeled-user
//! pairs into 1-mile intervals and, per bucket, dividing the number of pairs
//! with a following relationship by the total pairs. [`DistanceHistogram`]
//! is that structure: a `trials` counter and a `successes` counter per
//! bucket, yielding an empirical probability curve that [`crate::powerlaw`]
//! can fit.

use serde::{Deserialize, Serialize};

/// Fixed-width distance histogram tracking Bernoulli trials per bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceHistogram {
    bucket_miles: f64,
    trials: Vec<u64>,
    successes: Vec<u64>,
    /// Trials at or beyond the last bucket edge.
    overflow_trials: u64,
    overflow_successes: u64,
}

impl DistanceHistogram {
    /// Creates a histogram covering `[0, max_miles)` with `bucket_miles`-wide
    /// buckets (the paper uses 1-mile buckets).
    ///
    /// # Panics
    /// Panics if `bucket_miles` or `max_miles` is not strictly positive.
    pub fn new(bucket_miles: f64, max_miles: f64) -> Self {
        assert!(bucket_miles > 0.0, "bucket width must be positive");
        assert!(max_miles > 0.0, "range must be positive");
        let n = (max_miles / bucket_miles).ceil() as usize;
        Self {
            bucket_miles,
            trials: vec![0; n],
            successes: vec![0; n],
            overflow_trials: 0,
            overflow_successes: 0,
        }
    }

    /// Number of in-range buckets.
    pub fn num_buckets(&self) -> usize {
        self.trials.len()
    }

    /// Bucket width in miles.
    pub fn bucket_miles(&self) -> f64 {
        self.bucket_miles
    }

    /// Records one trial at distance `d`; `success` marks whether the event
    /// (e.g. "this pair has a following relationship") occurred.
    #[inline]
    pub fn record(&mut self, d: f64, success: bool) {
        if !(d >= 0.0) {
            return; // NaN / negative distances carry no information
        }
        let idx = (d / self.bucket_miles) as usize;
        if idx < self.trials.len() {
            self.trials[idx] += 1;
            self.successes[idx] += success as u64;
        } else {
            self.overflow_trials += 1;
            self.overflow_successes += success as u64;
        }
    }

    /// Records `trials` trials with `successes` successes at distance `d`.
    ///
    /// Trials and successes may be recorded by *independent* calls — the
    /// power-law fitters bucket all candidate pairs first (`successes = 0`)
    /// and then stream observed edges in (`trials = 0`) — so `successes >
    /// trials` within one call is legal. Keeping the aggregate per-bucket
    /// ratio at or below 1 is the *caller's* invariant; curve consumers
    /// must reject `p > 1` buckets (both power-law fitters filter them).
    pub fn record_bulk(&mut self, d: f64, trials: u64, successes: u64) {
        if !(d >= 0.0) {
            return;
        }
        let idx = (d / self.bucket_miles) as usize;
        if idx < self.trials.len() {
            self.trials[idx] += trials;
            self.successes[idx] += successes;
        } else {
            self.overflow_trials += trials;
            self.overflow_successes += successes;
        }
    }

    /// Total trials recorded, including overflow.
    pub fn total_trials(&self) -> u64 {
        self.trials.iter().sum::<u64>() + self.overflow_trials
    }

    /// Total successes recorded, including overflow.
    pub fn total_successes(&self) -> u64 {
        self.successes.iter().sum::<u64>() + self.overflow_successes
    }

    /// Empirical probability per bucket as `(bucket_center_miles, p)` for
    /// buckets with at least `min_trials` trials and at least one success
    /// (zero-probability buckets are unusable in log–log space).
    pub fn probability_curve(&self, min_trials: u64) -> Vec<(f64, f64)> {
        self.trials
            .iter()
            .zip(&self.successes)
            .enumerate()
            .filter(|(_, (&t, &s))| t >= min_trials.max(1) && s > 0)
            .map(|(i, (&t, &s))| {
                let center = (i as f64 + 0.5) * self.bucket_miles;
                (center, s as f64 / t as f64)
            })
            .collect()
    }

    /// Weighted probability curve `(center, p, trials)` for
    /// [`crate::powerlaw::fit_log_log_weighted`].
    pub fn weighted_curve(&self, min_trials: u64) -> Vec<(f64, f64, f64)> {
        self.trials
            .iter()
            .zip(&self.successes)
            .enumerate()
            .filter(|(_, (&t, &s))| t >= min_trials.max(1) && s > 0)
            .map(|(i, (&t, &s))| {
                let center = (i as f64 + 0.5) * self.bucket_miles;
                (center, s as f64 / t as f64, t as f64)
            })
            .collect()
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    /// Panics if the two histograms have different bucket width or count.
    pub fn merge(&mut self, other: &DistanceHistogram) {
        assert_eq!(self.bucket_miles, other.bucket_miles, "bucket width mismatch");
        assert_eq!(self.trials.len(), other.trials.len(), "bucket count mismatch");
        for (a, b) in self.trials.iter_mut().zip(&other.trials) {
            *a += b;
        }
        for (a, b) in self.successes.iter_mut().zip(&other.successes) {
            *a += b;
        }
        self.overflow_trials += other.overflow_trials;
        self.overflow_successes += other.overflow_successes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_bucket() {
        let mut h = DistanceHistogram::new(1.0, 10.0);
        h.record(0.3, true);
        h.record(0.9, false);
        h.record(5.5, true);
        let curve = h.probability_curve(1);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], (0.5, 0.5)); // bucket [0,1): 1 of 2
        assert_eq!(curve[1], (5.5, 1.0)); // bucket [5,6): 1 of 1
    }

    #[test]
    fn overflow_is_tracked_separately() {
        let mut h = DistanceHistogram::new(1.0, 10.0);
        h.record(50.0, true);
        h.record(9.99, true);
        assert_eq!(h.total_trials(), 2);
        assert_eq!(h.probability_curve(1).len(), 1);
    }

    #[test]
    fn min_trials_filters_sparse_buckets() {
        let mut h = DistanceHistogram::new(1.0, 10.0);
        h.record(1.5, true);
        h.record_bulk(2.5, 100, 7);
        let curve = h.probability_curve(10);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].1 - 0.07).abs() < 1e-12);
    }

    #[test]
    fn nan_and_negative_distances_ignored() {
        let mut h = DistanceHistogram::new(1.0, 10.0);
        h.record(f64::NAN, true);
        h.record(-1.0, true);
        assert_eq!(h.total_trials(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DistanceHistogram::new(1.0, 5.0);
        let mut b = DistanceHistogram::new(1.0, 5.0);
        a.record_bulk(2.5, 10, 1);
        b.record_bulk(2.5, 30, 3);
        a.merge(&b);
        let curve = a.probability_curve(1);
        assert_eq!(curve, vec![(2.5, 0.1)]);
        assert_eq!(a.total_trials(), 40);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = DistanceHistogram::new(1.0, 5.0);
        let b = DistanceHistogram::new(2.0, 5.0);
        a.merge(&b);
    }

    #[test]
    fn histogram_plus_fit_recovers_power_law() {
        // End-to-end: generate bucket counts from the paper's curve, fit back.
        let truth = crate::PowerLaw::PAPER_TWITTER;
        let mut h = DistanceHistogram::new(1.0, 2000.0);
        for i in 0..2000u64 {
            let center = i as f64 + 0.5;
            let p = truth.eval(center);
            let trials = 1_000_000u64;
            h.record_bulk(center, trials, (p * trials as f64).round() as u64);
        }
        let fit = crate::fit_log_log(&h.probability_curve(1)).unwrap();
        assert!((fit.alpha - truth.alpha).abs() < 0.01, "alpha {}", fit.alpha);
        assert!((fit.beta / truth.beta - 1.0).abs() < 0.05, "beta {}", fit.beta);
    }
}
