//! The distance power law `P(follow | d) = β·d^α` (paper Sec. 4.1).
//!
//! The paper observes that the probability of a following relationship
//! between two users at distance `d` miles is a straight line in log–log
//! space and fits `α = −0.55`, `β = 0.0045` on their Twitter crawl (vs.
//! `α ≈ −1` on Facebook per Backstrom et al.). The same fit runs inside the
//! Gibbs-EM M-step (Sec. 4.5) to refine `(α, β)` from expected edge
//! distances.

use serde::{Deserialize, Serialize};

/// Distances below this floor are clamped before evaluating `d^α`, because
/// `α < 0` makes the density blow up at `d → 0`. The paper buckets its
/// empirical curve at 1-mile granularity, which amounts to the same floor.
pub const MIN_DISTANCE_MILES: f64 = 1.0;

/// A two-parameter power law `p(d) = β·d^α`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLaw {
    /// Exponent; negative for decaying probabilities (paper: −0.55).
    pub alpha: f64,
    /// Scale; the probability at `d = 1` mile (paper: 0.0045).
    pub beta: f64,
}

impl PowerLaw {
    /// The fit the paper reports for Twitter following relationships.
    pub const PAPER_TWITTER: PowerLaw = PowerLaw { alpha: -0.55, beta: 0.0045 };

    /// Creates a power law; returns `None` unless both parameters are finite
    /// and `beta > 0`.
    pub fn new(alpha: f64, beta: f64) -> Option<Self> {
        if alpha.is_finite() && beta.is_finite() && beta > 0.0 {
            Some(Self { alpha, beta })
        } else {
            None
        }
    }

    /// Probability (density) at distance `d` miles, with the 1-mile floor.
    ///
    /// The result is additionally capped at 1.0 so it can be used directly as
    /// a Bernoulli parameter.
    #[inline]
    pub fn eval(&self, d: f64) -> f64 {
        let d = d.max(MIN_DISTANCE_MILES);
        (self.beta * d.powf(self.alpha)).min(1.0)
    }

    /// Log-probability at distance `d`, with the same floor.
    ///
    /// The Gibbs sampler works in log space to avoid underflow when a user
    /// has hundreds of relationships.
    #[inline]
    pub fn log_eval(&self, d: f64) -> f64 {
        let d = d.max(MIN_DISTANCE_MILES);
        (self.beta.ln() + self.alpha * d.ln()).min(0.0)
    }

    /// The unnormalised `d^α` kernel used inside the sampling equations
    /// (Eqs. 7–8 drop β because it cancels in the normalisation).
    #[inline]
    pub fn kernel(&self, d: f64) -> f64 {
        d.max(MIN_DISTANCE_MILES).powf(self.alpha)
    }
}

impl Default for PowerLaw {
    fn default() -> Self {
        Self::PAPER_TWITTER
    }
}

/// Fits `p = β·d^α` to `(d, p)` observations by least squares in log–log
/// space, the standard "straight line on a log–log plot" procedure the paper
/// uses for Fig. 3(a).
///
/// Points with non-positive `d` or `p` carry no information in log space and
/// are skipped. Returns `None` when fewer than two usable points remain or
/// the distances are all identical (the slope is then unidentifiable).
pub fn fit_log_log(observations: &[(f64, f64)]) -> Option<PowerLaw> {
    let mut n = 0.0f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for &(d, p) in observations {
        if d > 0.0 && p > 0.0 && d.is_finite() && p.is_finite() {
            let x = d.ln();
            let y = p.ln();
            n += 1.0;
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
    }
    if n < 2.0 {
        return None;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let alpha = (n * sxy - sx * sy) / denom;
    let ln_beta = (sy - alpha * sx) / n;
    PowerLaw::new(alpha, ln_beta.exp())
}

/// Fits a power law from weighted observations `(d, p, w)`, where `w` is the
/// number of pairs in the distance bucket. Buckets with more pairs estimate
/// their probability more reliably and should pull the line harder.
pub fn fit_log_log_weighted(observations: &[(f64, f64, f64)]) -> Option<PowerLaw> {
    let mut n = 0.0f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for &(d, p, w) in observations {
        if d > 0.0 && p > 0.0 && w > 0.0 && d.is_finite() && p.is_finite() && w.is_finite() {
            let x = d.ln();
            let y = p.ln();
            n += w;
            sx += w * x;
            sy += w * y;
            sxx += w * x * x;
            sxy += w * x * y;
        }
    }
    if n <= 0.0 {
        return None;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let alpha = (n * sxy - sx * sy) / denom;
    let ln_beta = (sy - alpha * sx) / n;
    PowerLaw::new(alpha, ln_beta.exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_closed_form() {
        let pl = PowerLaw::new(-0.55, 0.0045).unwrap();
        let d: f64 = 100.0;
        let expect = 0.0045 * d.powf(-0.55);
        assert!((pl.eval(d) - expect).abs() < 1e-15);
    }

    #[test]
    fn eval_floors_small_distances() {
        let pl = PowerLaw::PAPER_TWITTER;
        assert_eq!(pl.eval(0.0), pl.eval(1.0));
        assert_eq!(pl.eval(0.5), pl.eval(1.0));
        assert!(pl.eval(0.0) <= 1.0);
    }

    #[test]
    fn eval_is_monotone_decreasing_for_negative_alpha() {
        let pl = PowerLaw::PAPER_TWITTER;
        let mut prev = pl.eval(1.0);
        for d in [2.0, 5.0, 10.0, 100.0, 1000.0, 3000.0] {
            let cur = pl.eval(d);
            assert!(cur < prev, "p({d}) = {cur} not < {prev}");
            prev = cur;
        }
    }

    #[test]
    fn log_eval_consistent_with_eval() {
        let pl = PowerLaw::new(-0.8, 0.01).unwrap();
        for d in [1.0, 3.0, 57.0, 988.0] {
            assert!((pl.log_eval(d) - pl.eval(d).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(PowerLaw::new(f64::NAN, 1.0).is_none());
        assert!(PowerLaw::new(-0.5, 0.0).is_none());
        assert!(PowerLaw::new(-0.5, -1.0).is_none());
        assert!(PowerLaw::new(-0.5, f64::INFINITY).is_none());
    }

    #[test]
    fn fit_recovers_exact_power_law() {
        let truth = PowerLaw::new(-0.55, 0.0045).unwrap();
        let obs: Vec<(f64, f64)> =
            (1..=2000).map(|d| (d as f64, truth.beta * (d as f64).powf(truth.alpha))).collect();
        let fit = fit_log_log(&obs).unwrap();
        assert!((fit.alpha - truth.alpha).abs() < 1e-9, "alpha {}", fit.alpha);
        assert!((fit.beta - truth.beta).abs() < 1e-9, "beta {}", fit.beta);
    }

    #[test]
    fn fit_tolerates_noise() {
        let truth = PowerLaw::new(-1.0, 0.01).unwrap();
        // Deterministic multiplicative "noise" alternating ±10%.
        let obs: Vec<(f64, f64)> = (1..=500)
            .map(|i| {
                let d = i as f64;
                let noise = if i % 2 == 0 { 1.1 } else { 0.9 };
                (d, truth.beta * d.powf(truth.alpha) * noise)
            })
            .collect();
        let fit = fit_log_log(&obs).unwrap();
        assert!((fit.alpha - truth.alpha).abs() < 0.05, "alpha {}", fit.alpha);
        assert!((fit.beta / truth.beta - 1.0).abs() < 0.15, "beta {}", fit.beta);
    }

    #[test]
    fn fit_skips_degenerate_points() {
        let obs = [(0.0, 0.5), (-3.0, 0.2), (10.0, 0.0), (5.0, f64::NAN)];
        assert!(fit_log_log(&obs).is_none());
    }

    #[test]
    fn fit_requires_two_distinct_distances() {
        assert!(fit_log_log(&[(5.0, 0.1)]).is_none());
        assert!(fit_log_log(&[(5.0, 0.1), (5.0, 0.2)]).is_none());
    }

    #[test]
    fn weighted_fit_prefers_heavy_buckets() {
        // Two regimes: d<=10 follows alpha=-0.5; d>10 points are outliers but
        // carry almost no weight, so the fit should track the first regime.
        let mut obs = Vec::new();
        for d in 1..=10 {
            let d = d as f64;
            obs.push((d, 0.01 * d.powf(-0.5), 1000.0));
        }
        obs.push((100.0, 0.5, 0.001));
        let fit = fit_log_log_weighted(&obs).unwrap();
        assert!((fit.alpha + 0.5).abs() < 0.05, "alpha {}", fit.alpha);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Fitting points generated from a power law recovers its parameters.
        #[test]
        fn fit_round_trip(alpha in -2.0f64..-0.1, beta in 1e-5f64..0.5) {
            let truth = PowerLaw::new(alpha, beta).unwrap();
            let obs: Vec<(f64, f64)> = (1..=200)
                .map(|d| (d as f64, truth.beta * (d as f64).powf(truth.alpha)))
                .collect();
            let fit = fit_log_log(&obs).unwrap();
            prop_assert!((fit.alpha - alpha).abs() < 1e-6);
            prop_assert!((fit.beta / beta - 1.0).abs() < 1e-6);
        }

        /// eval() is always a valid probability.
        #[test]
        fn eval_in_unit_interval(
            alpha in -3.0f64..0.0,
            beta in 1e-6f64..10.0,
            d in 0.0f64..10_000.0,
        ) {
            let pl = PowerLaw::new(alpha, beta).unwrap();
            let p = pl.eval(d);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
