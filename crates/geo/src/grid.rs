//! Uniform spatial grid index over a fixed point set.
//!
//! The generator needs "which cities lie within r miles of this city" and
//! "nearest city to this point" queries over a few hundred to a few thousand
//! cities, millions of times. A uniform lat/lon grid with cell size on the
//! order of the typical query radius answers both in near-constant time
//! without any external dependency.

use crate::distance::haversine_miles;
use crate::point::GeoPoint;
use crate::BoundingBox;

/// A uniform grid over an immutable set of points.
///
/// Points are identified by their index in the slice passed to
/// [`GridIndex::build`]; the index never stores the points themselves beyond
/// a copy for distance evaluation.
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<GeoPoint>,
    bbox: BoundingBox,
    cell_deg: f64,
    cols: usize,
    rows: usize,
    /// `cells[row * cols + col]` lists the point ids in that cell.
    cells: Vec<Vec<u32>>,
}

/// Approximate miles per degree of latitude; used to size grid cells.
const MILES_PER_DEG_LAT: f64 = 69.0;

impl GridIndex {
    /// Builds an index with cells roughly `cell_miles` across.
    ///
    /// Returns `None` for an empty point set or a non-positive cell size.
    pub fn build(points: &[GeoPoint], cell_miles: f64) -> Option<Self> {
        if points.is_empty() || !(cell_miles > 0.0) {
            return None;
        }
        // Expand slightly so boundary points index cleanly.
        let bbox = BoundingBox::covering(points)?.expanded(0.01);
        let cell_deg = cell_miles / MILES_PER_DEG_LAT;
        let cols = (bbox.lon_span() / cell_deg).ceil().max(1.0) as usize;
        let rows = (bbox.lat_span() / cell_deg).ceil().max(1.0) as usize;
        let mut cells = vec![Vec::new(); cols * rows];
        let mut idx =
            Self { points: points.to_vec(), bbox, cell_deg, cols, rows, cells: Vec::new() };
        for (i, p) in points.iter().enumerate() {
            let (r, c) = idx.cell_of(*p);
            cells[r * cols + c].push(i as u32);
        }
        idx.cells = cells;
        Some(idx)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty (never true for a built index).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in id order.
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    fn cell_of(&self, p: GeoPoint) -> (usize, usize) {
        let r = ((p.lat() - self.bbox.min_lat()) / self.cell_deg) as usize;
        let c = ((p.lon() - self.bbox.min_lon()) / self.cell_deg) as usize;
        (r.min(self.rows - 1), c.min(self.cols - 1))
    }

    /// Ids (and distances in miles) of all points within `radius_miles` of
    /// `center`, unsorted.
    pub fn within_radius(&self, center: GeoPoint, radius_miles: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        if !(radius_miles >= 0.0) {
            return out;
        }
        // Longitude degrees shrink with latitude; widen the column window
        // accordingly (clamped to avoid blow-up near the poles).
        let lat_cells = (radius_miles / (self.cell_deg * MILES_PER_DEG_LAT)).ceil() as isize + 1;
        let cos_lat = center.lat_rad().cos().max(0.1);
        let lon_cells =
            (radius_miles / (self.cell_deg * MILES_PER_DEG_LAT * cos_lat)).ceil() as isize + 1;
        let (r0, c0) = self.cell_of(clamp_into(&self.bbox, center));
        let (r0, c0) = (r0 as isize, c0 as isize);
        for r in (r0 - lat_cells).max(0)..=(r0 + lat_cells).min(self.rows as isize - 1) {
            for c in (c0 - lon_cells).max(0)..=(c0 + lon_cells).min(self.cols as isize - 1) {
                for &id in &self.cells[r as usize * self.cols + c as usize] {
                    let d = haversine_miles(center, self.points[id as usize]);
                    if d <= radius_miles {
                        out.push((id, d));
                    }
                }
            }
        }
        out
    }

    /// Id and distance of the nearest point to `center`.
    ///
    /// Runs an expanding ring search; always succeeds because the index is
    /// non-empty.
    pub fn nearest(&self, center: GeoPoint) -> (u32, f64) {
        let mut radius = self.cell_deg * MILES_PER_DEG_LAT;
        loop {
            let hits = self.within_radius(center, radius);
            if let Some(best) = hits.into_iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
                return best;
            }
            radius *= 2.0;
            // Once the radius covers the whole box diagonal, fall back to a
            // linear scan to guarantee termination.
            if radius > 2.0 * MILES_PER_DEG_LAT * (self.bbox.lat_span() + self.bbox.lon_span()) {
                return self.nearest_linear(center);
            }
        }
    }

    fn nearest_linear(&self, center: GeoPoint) -> (u32, f64) {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, haversine_miles(center, *p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("index is never empty")
    }

    /// Ids of the `k` nearest points to `center`, closest first.
    pub fn k_nearest(&self, center: GeoPoint, k: usize) -> Vec<(u32, f64)> {
        if k == 0 {
            return Vec::new();
        }
        if k >= self.points.len() {
            let mut all: Vec<(u32, f64)> = self
                .points
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u32, haversine_miles(center, *p)))
                .collect();
            all.sort_by(|a, b| a.1.total_cmp(&b.1));
            return all;
        }
        // Expanding search until at least k hits, then trim.
        let mut radius = self.cell_deg * MILES_PER_DEG_LAT * 2.0;
        loop {
            let mut hits = self.within_radius(center, radius);
            if hits.len() >= k {
                hits.sort_by(|a, b| a.1.total_cmp(&b.1));
                hits.truncate(k);
                return hits;
            }
            radius *= 2.0;
            if radius > 4.0 * MILES_PER_DEG_LAT * (self.bbox.lat_span() + self.bbox.lon_span()) {
                let mut all: Vec<(u32, f64)> = self
                    .points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i as u32, haversine_miles(center, *p)))
                    .collect();
                all.sort_by(|a, b| a.1.total_cmp(&b.1));
                all.truncate(k);
                return all;
            }
        }
    }
}

/// Clamps a query point into the index bounding box so cell coordinates stay
/// in range for queries slightly outside the covered area.
fn clamp_into(bbox: &BoundingBox, p: GeoPoint) -> GeoPoint {
    GeoPoint::new(
        p.lat().clamp(bbox.min_lat(), bbox.max_lat()),
        p.lon().clamp(bbox.min_lon(), bbox.max_lon()),
    )
    .expect("clamped coordinates are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn sample_cities() -> Vec<GeoPoint> {
        vec![
            p(40.7128, -74.0060),  // 0 NYC
            p(34.0522, -118.2437), // 1 LA
            p(30.2672, -97.7431),  // 2 Austin
            p(30.5083, -97.6789),  // 3 Round Rock (nr Austin)
            p(41.8781, -87.6298),  // 4 Chicago
            p(33.7490, -84.3880),  // 5 Atlanta
            p(47.6062, -122.3321), // 6 Seattle
            p(29.7604, -95.3698),  // 7 Houston
        ]
    }

    #[test]
    fn build_rejects_empty_and_bad_cell() {
        assert!(GridIndex::build(&[], 50.0).is_none());
        assert!(GridIndex::build(&sample_cities(), 0.0).is_none());
        assert!(GridIndex::build(&sample_cities(), f64::NAN).is_none());
    }

    #[test]
    fn within_radius_finds_neighbors() {
        let idx = GridIndex::build(&sample_cities(), 50.0).unwrap();
        let hits = idx.within_radius(p(30.2672, -97.7431), 30.0);
        let ids: Vec<u32> = hits.iter().map(|h| h.0).collect();
        assert!(ids.contains(&2), "Austin itself");
        assert!(ids.contains(&3), "Round Rock");
        assert!(!ids.contains(&7), "Houston is ~145 miles away");
    }

    #[test]
    fn within_radius_matches_linear_scan() {
        let cities = sample_cities();
        let idx = GridIndex::build(&cities, 75.0).unwrap();
        for center in [p(35.0, -100.0), p(40.0, -80.0), p(30.0, -97.0)] {
            for radius in [10.0, 200.0, 1500.0] {
                let mut fast: Vec<u32> =
                    idx.within_radius(center, radius).into_iter().map(|h| h.0).collect();
                fast.sort_unstable();
                let mut slow: Vec<u32> = cities
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| haversine_miles(center, **c) <= radius)
                    .map(|(i, _)| i as u32)
                    .collect();
                slow.sort_unstable();
                assert_eq!(fast, slow, "center {center:?} radius {radius}");
            }
        }
    }

    #[test]
    fn nearest_picks_the_closest_city() {
        let idx = GridIndex::build(&sample_cities(), 50.0).unwrap();
        // A point in west Texas: Round Rock edges out Austin as nearest.
        let (id, d) = idx.nearest(p(31.0, -99.0));
        assert_eq!(id, 3);
        assert!(d < 120.0);
        // Nearest to LA is LA itself.
        let (id, d) = idx.nearest(p(34.0522, -118.2437));
        assert_eq!(id, 1);
        assert!(d < 1e-9);
    }

    #[test]
    fn nearest_works_outside_bbox() {
        let idx = GridIndex::build(&sample_cities(), 50.0).unwrap();
        // Miami-ish, outside the covering box to the southeast.
        let (id, _) = idx.nearest(p(25.76, -80.19));
        assert_eq!(id, 5, "Atlanta is the closest sample city to Miami");
    }

    #[test]
    fn k_nearest_orders_by_distance() {
        let idx = GridIndex::build(&sample_cities(), 50.0).unwrap();
        let knn = idx.k_nearest(p(30.2672, -97.7431), 3);
        assert_eq!(knn.len(), 3);
        assert_eq!(knn[0].0, 2, "Austin first");
        assert_eq!(knn[1].0, 3, "Round Rock second");
        assert_eq!(knn[2].0, 7, "Houston third");
        assert!(knn[0].1 <= knn[1].1 && knn[1].1 <= knn[2].1);
    }

    #[test]
    fn k_nearest_with_k_larger_than_set() {
        let idx = GridIndex::build(&sample_cities(), 50.0).unwrap();
        let knn = idx.k_nearest(p(30.0, -97.0), 100);
        assert_eq!(knn.len(), 8);
    }

    #[test]
    fn single_point_index() {
        let idx = GridIndex::build(&[p(30.0, -97.0)], 50.0).unwrap();
        let (id, d) = idx.nearest(p(45.0, -120.0));
        assert_eq!(id, 0);
        assert!(d > 100.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_us_point() -> impl Strategy<Value = GeoPoint> {
        (25.0f64..49.0, -124.0f64..-67.0).prop_map(|(la, lo)| GeoPoint::new(la, lo).unwrap())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The grid's radius query returns exactly the linear-scan answer.
        #[test]
        fn radius_query_equals_linear_scan(
            pts in prop::collection::vec(arb_us_point(), 1..60),
            center in arb_us_point(),
            radius in 1.0f64..800.0,
        ) {
            let idx = GridIndex::build(&pts, 60.0).unwrap();
            let mut fast: Vec<u32> =
                idx.within_radius(center, radius).into_iter().map(|h| h.0).collect();
            fast.sort_unstable();
            let mut slow: Vec<u32> = pts.iter().enumerate()
                .filter(|(_, p)| haversine_miles(center, **p) <= radius)
                .map(|(i, _)| i as u32)
                .collect();
            slow.sort_unstable();
            prop_assert_eq!(fast, slow);
        }

        /// `nearest` agrees with the brute-force minimum.
        #[test]
        fn nearest_equals_linear_scan(
            pts in prop::collection::vec(arb_us_point(), 1..60),
            center in arb_us_point(),
        ) {
            let idx = GridIndex::build(&pts, 60.0).unwrap();
            let (_, fast_d) = idx.nearest(center);
            let slow_d = pts.iter()
                .map(|p| haversine_miles(center, *p))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((fast_d - slow_d).abs() < 1e-9);
        }
    }
}
