//! Axis-aligned latitude/longitude bounding boxes.

use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// An axis-aligned box in (lat, lon) space.
///
/// Used by [`crate::GridIndex`] for cell extents and by the synthetic
/// generator to confine city placement to a region (e.g. the continental US).
/// Longitude wrap-around is not modeled: all uses in this system stay within
/// the continental United States, far from the antimeridian.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min_lat: f64,
    max_lat: f64,
    min_lon: f64,
    max_lon: f64,
}

impl BoundingBox {
    /// The continental United States (the paper's gazetteer scope).
    pub const CONTINENTAL_US: BoundingBox =
        BoundingBox { min_lat: 24.5, max_lat: 49.5, min_lon: -124.8, max_lon: -66.9 };

    /// Creates a box from inclusive bounds.
    ///
    /// Returns `None` if the bounds are inverted or not finite.
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Option<Self> {
        let finite = min_lat.is_finite()
            && max_lat.is_finite()
            && min_lon.is_finite()
            && max_lon.is_finite();
        if !finite || min_lat > max_lat || min_lon > max_lon {
            return None;
        }
        Some(Self { min_lat, max_lat, min_lon, max_lon })
    }

    /// Smallest box covering all `points`. `None` on an empty slice.
    pub fn covering(points: &[GeoPoint]) -> Option<Self> {
        let first = points.first()?;
        let mut bb = Self {
            min_lat: first.lat(),
            max_lat: first.lat(),
            min_lon: first.lon(),
            max_lon: first.lon(),
        };
        for p in &points[1..] {
            bb.min_lat = bb.min_lat.min(p.lat());
            bb.max_lat = bb.max_lat.max(p.lat());
            bb.min_lon = bb.min_lon.min(p.lon());
            bb.max_lon = bb.max_lon.max(p.lon());
        }
        Some(bb)
    }

    /// Whether `p` lies inside the box (inclusive bounds).
    #[inline]
    pub fn contains(&self, p: GeoPoint) -> bool {
        (self.min_lat..=self.max_lat).contains(&p.lat())
            && (self.min_lon..=self.max_lon).contains(&p.lon())
    }

    /// Minimum latitude bound.
    pub fn min_lat(&self) -> f64 {
        self.min_lat
    }

    /// Maximum latitude bound.
    pub fn max_lat(&self) -> f64 {
        self.max_lat
    }

    /// Minimum longitude bound.
    pub fn min_lon(&self) -> f64 {
        self.min_lon
    }

    /// Maximum longitude bound.
    pub fn max_lon(&self) -> f64 {
        self.max_lon
    }

    /// Latitude extent in degrees.
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Longitude extent in degrees.
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Expands the box by `margin` degrees on every side, clamped to the
    /// valid coordinate domain.
    pub fn expanded(&self, margin: f64) -> Self {
        Self {
            min_lat: (self.min_lat - margin).max(-90.0),
            max_lat: (self.max_lat + margin).min(90.0),
            min_lon: (self.min_lon - margin).max(-180.0),
            max_lon: (self.max_lon + margin).min(180.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn contains_interior_and_boundary() {
        let bb = BoundingBox::new(30.0, 40.0, -100.0, -90.0).unwrap();
        assert!(bb.contains(p(35.0, -95.0)));
        assert!(bb.contains(p(30.0, -100.0)));
        assert!(bb.contains(p(40.0, -90.0)));
        assert!(!bb.contains(p(29.9, -95.0)));
        assert!(!bb.contains(p(35.0, -89.9)));
    }

    #[test]
    fn inverted_bounds_rejected() {
        assert!(BoundingBox::new(40.0, 30.0, -100.0, -90.0).is_none());
        assert!(BoundingBox::new(30.0, 40.0, -90.0, -100.0).is_none());
        assert!(BoundingBox::new(f64::NAN, 40.0, -100.0, -90.0).is_none());
    }

    #[test]
    fn covering_is_tight() {
        let pts = [p(30.0, -100.0), p(35.0, -95.0), p(32.0, -105.0)];
        let bb = BoundingBox::covering(&pts).unwrap();
        assert_eq!(bb.min_lat(), 30.0);
        assert_eq!(bb.max_lat(), 35.0);
        assert_eq!(bb.min_lon(), -105.0);
        assert_eq!(bb.max_lon(), -95.0);
        for q in pts {
            assert!(bb.contains(q));
        }
    }

    #[test]
    fn covering_empty_is_none() {
        assert!(BoundingBox::covering(&[]).is_none());
    }

    #[test]
    fn continental_us_contains_major_cities() {
        let bb = BoundingBox::CONTINENTAL_US;
        assert!(bb.contains(p(40.7128, -74.0060))); // NYC
        assert!(bb.contains(p(34.0522, -118.2437))); // LA
        assert!(bb.contains(p(47.6062, -122.3321))); // Seattle
        assert!(!bb.contains(p(21.3069, -157.8583))); // Honolulu
        assert!(!bb.contains(p(61.2181, -149.9003))); // Anchorage
    }

    #[test]
    fn expanded_grows_and_clamps() {
        let bb = BoundingBox::new(89.0, 90.0, 179.0, 180.0).unwrap().expanded(2.0);
        assert_eq!(bb.max_lat(), 90.0);
        assert_eq!(bb.max_lon(), 180.0);
        assert_eq!(bb.min_lat(), 87.0);
        assert_eq!(bb.min_lon(), 177.0);
    }
}
