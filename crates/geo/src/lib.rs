//! Geographic substrate for the MLP location-profiling system.
//!
//! This crate provides the geometric primitives the paper's model rests on:
//!
//! * [`GeoPoint`] — a validated latitude/longitude pair.
//! * [`distance`] — great-circle distance kernels in miles (the paper
//!   measures everything in miles: ACC@100 miles, 1-mile distance buckets).
//! * [`BoundingBox`] — axis-aligned lat/lon boxes used by the spatial index.
//! * [`GridIndex`] — a uniform spatial grid for "cities within r miles" and
//!   nearest-city queries, used by the synthetic data generator and the
//!   distance-based evaluation metrics.
//! * [`PowerLaw`] — the `P(follow | d) = β·d^α` distribution of Sec. 4.1 of
//!   the paper, with the log–log least-squares fitting procedure used both to
//!   initialise the model (α ≈ −0.55, β ≈ 0.0045 on the paper's crawl) and in
//!   the M-step of Gibbs-EM (Sec. 4.5).
//! * [`DistanceHistogram`] — the 1-mile-bucket empirical following-probability
//!   curve behind Fig. 3(a).
//! * [`DistanceMatrix`] — a dense symmetric city-pair distance cache so the
//!   Gibbs sampler never recomputes a haversine in its inner loop.

pub mod bbox;
pub mod distance;
pub mod grid;
pub mod histogram;
pub mod matrix;
pub mod point;
pub mod powerlaw;

pub use bbox::BoundingBox;
pub use distance::{equirectangular_miles, haversine_miles, EARTH_RADIUS_MILES};
pub use grid::GridIndex;
pub use histogram::{DistanceHistogram, LatencyHistogram};
pub use matrix::DistanceMatrix;
pub use point::GeoPoint;
pub use powerlaw::{fit_log_log, fit_log_log_weighted, PowerLaw};
