//! Great-circle distance kernels, in miles.
//!
//! The paper measures all geography in miles: accuracy at 100 miles,
//! following probabilities bucketed at 1 mile (Fig. 3(a)), DP/DR thresholds
//! at 100 miles. Both kernels here return statute miles.

use crate::point::GeoPoint;

/// Mean Earth radius in statute miles (IUGG mean radius 6371.0088 km).
pub const EARTH_RADIUS_MILES: f64 = 3958.7613;

/// Exact great-circle distance between two points (haversine formula).
///
/// Numerically stable for both antipodal and very close points.
#[inline]
pub fn haversine_miles(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    // Clamp guards against tiny negative rounding before sqrt.
    let h = h.clamp(0.0, 1.0);
    2.0 * EARTH_RADIUS_MILES * h.sqrt().asin()
}

/// Fast approximate distance using the equirectangular projection.
///
/// Within the continental-US scale this is accurate to well under 1% for
/// distances below ~500 miles and is several times cheaper than the
/// haversine. The Gibbs sampler's inner loop uses the precomputed
/// [`crate::DistanceMatrix`] instead, but the synthetic generator and the
/// spatial grid use this kernel for candidate filtering.
#[inline]
pub fn equirectangular_miles(a: GeoPoint, b: GeoPoint) -> f64 {
    let mean_lat = 0.5 * (a.lat_rad() + b.lat_rad());
    let x = (b.lon_rad() - a.lon_rad()) * mean_lat.cos();
    let y = b.lat_rad() - a.lat_rad();
    EARTH_RADIUS_MILES * (x * x + y * y).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    // Reference city coordinates used across the test suite.
    const NYC: (f64, f64) = (40.7128, -74.0060);
    const LA: (f64, f64) = (34.0522, -118.2437);
    const AUSTIN: (f64, f64) = (30.2672, -97.7431);
    const ROUND_ROCK: (f64, f64) = (30.5083, -97.6789);

    #[test]
    fn zero_distance_to_self() {
        let nyc = p(NYC.0, NYC.1);
        assert_eq!(haversine_miles(nyc, nyc), 0.0);
        assert_eq!(equirectangular_miles(nyc, nyc), 0.0);
    }

    #[test]
    fn nyc_to_la_matches_known_distance() {
        // Great-circle NYC->LA is ~2,445 miles.
        let d = haversine_miles(p(NYC.0, NYC.1), p(LA.0, LA.1));
        assert!((d - 2445.0).abs() < 15.0, "got {d}");
    }

    #[test]
    fn austin_to_round_rock_is_short() {
        // Round Rock is a ~17 mile suburb of Austin (paper Fig. 3(b) case).
        let d = haversine_miles(p(AUSTIN.0, AUSTIN.1), p(ROUND_ROCK.0, ROUND_ROCK.1));
        assert!((15.0..20.0).contains(&d), "got {d}");
    }

    #[test]
    fn symmetry() {
        let a = p(NYC.0, NYC.1);
        let b = p(AUSTIN.0, AUSTIN.1);
        assert!((haversine_miles(a, b) - haversine_miles(b, a)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 180.0);
        let d = haversine_miles(a, b);
        let half = std::f64::consts::PI * EARTH_RADIUS_MILES;
        assert!((d - half).abs() < 1e-6, "got {d}, want {half}");
    }

    #[test]
    fn equirectangular_close_to_haversine_at_regional_scale() {
        let a = p(AUSTIN.0, AUSTIN.1);
        let b = p(30.9, -96.9); // ~75 miles away
        let exact = haversine_miles(a, b);
        let approx = equirectangular_miles(a, b);
        assert!((exact - approx).abs() / exact < 0.01, "exact {exact} approx {approx}");
    }

    #[test]
    fn one_degree_latitude_is_about_69_miles() {
        let d = haversine_miles(p(40.0, -100.0), p(41.0, -100.0));
        assert!((d - 69.09).abs() < 0.3, "got {d}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = GeoPoint> {
        (-89.5f64..89.5, -179.5f64..179.5).prop_map(|(la, lo)| GeoPoint::new(la, lo).unwrap())
    }

    proptest! {
        /// d(a,b) == d(b,a)
        #[test]
        fn distance_is_symmetric(a in arb_point(), b in arb_point()) {
            let ab = haversine_miles(a, b);
            let ba = haversine_miles(b, a);
            prop_assert!((ab - ba).abs() < 1e-9);
        }

        /// d(a,b) >= 0 and bounded by half the circumference.
        #[test]
        fn distance_is_nonnegative_and_bounded(a in arb_point(), b in arb_point()) {
            let d = haversine_miles(a, b);
            prop_assert!(d >= 0.0);
            prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_MILES + 1e-6);
        }

        /// Triangle inequality over the sphere surface.
        #[test]
        fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
            let ab = haversine_miles(a, b);
            let bc = haversine_miles(b, c);
            let ac = haversine_miles(a, c);
            prop_assert!(ac <= ab + bc + 1e-6);
        }

        /// The fast kernel agrees with haversine within 2% for sub-200-mile
        /// pairs away from the poles (the regime the generator uses it in).
        #[test]
        fn equirectangular_accuracy_regional(
            lat in 25.0f64..49.0,
            lon in -124.0f64..-67.0,
            dlat in -1.5f64..1.5,
            dlon in -1.5f64..1.5,
        ) {
            let a = GeoPoint::new(lat, lon).unwrap();
            let b = GeoPoint::new(
                (lat + dlat).clamp(-89.0, 89.0),
                (lon + dlon).clamp(-179.0, 179.0),
            ).unwrap();
            let exact = haversine_miles(a, b);
            if exact > 5.0 {
                let approx = equirectangular_miles(a, b);
                prop_assert!((exact - approx).abs() / exact < 0.02,
                    "exact {} approx {}", exact, approx);
            }
        }
    }
}
