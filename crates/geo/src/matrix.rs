//! Dense symmetric distance matrix over a fixed city set.
//!
//! The Gibbs sampler evaluates `d(x, y)^α` for every candidate location of
//! every relationship endpoint on every sweep. With |L| cities there are only
//! |L|² distinct distances, so we precompute them once (f32 is plenty: the
//! model never needs sub-0.1-mile resolution at city scale) and the sampler's
//! inner loop becomes a table lookup.

use crate::distance::haversine_miles;
use crate::point::GeoPoint;

/// Symmetric `n × n` matrix of pairwise distances in miles.
///
/// Stored as the full square for branch-free indexing; at the paper's scale
/// (|L| = 5000) that is 5000² × 4 bytes ≈ 100 MB, and at our default bench
/// scale (|L| ≈ 300–1000) well under 4 MB.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f32>,
}

impl DistanceMatrix {
    /// Precomputes all pairwise distances between `points`.
    pub fn build(points: &[GeoPoint]) -> Self {
        let n = points.len();
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = haversine_miles(points[i], points[j]) as f32;
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        Self { n, data }
    }

    /// Number of points the matrix covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance in miles between points `i` and `j`.
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] as f64
    }

    /// Distance without bounds checks, for the sampler's hot loop.
    ///
    /// # Safety
    /// Both `i` and `j` must be `< self.len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        *self.data.get_unchecked(i * self.n + j) as f64
    }

    /// The row of distances from point `i` to every point.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.n, "index out of bounds");
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Ids of points within `radius` miles of point `i` (including `i`).
    pub fn within(&self, i: usize, radius: f64) -> Vec<usize> {
        self.row(i)
            .iter()
            .enumerate()
            .filter(|(_, &d)| (d as f64) <= radius)
            .map(|(j, _)| j)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn cities() -> Vec<GeoPoint> {
        vec![
            p(40.7128, -74.0060),  // NYC
            p(34.0522, -118.2437), // LA
            p(30.2672, -97.7431),  // Austin
        ]
    }

    #[test]
    fn matches_haversine() {
        let pts = cities();
        let m = DistanceMatrix::build(&pts);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let want = haversine_miles(pts[i], pts[j]);
                assert!((m.get(i, j) - want).abs() < 0.5, "({i},{j})");
            }
        }
    }

    #[test]
    fn diagonal_is_zero_and_symmetric() {
        let m = DistanceMatrix::build(&cities());
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn row_has_matrix_width() {
        let m = DistanceMatrix::build(&cities());
        assert_eq!(m.row(1).len(), 3);
        assert_eq!(m.row(1)[1], 0.0);
    }

    #[test]
    fn within_includes_self_and_filters() {
        let m = DistanceMatrix::build(&cities());
        let near_nyc = m.within(0, 500.0);
        assert_eq!(near_nyc, vec![0], "no sample city within 500mi of NYC");
        let all = m.within(0, 3000.0);
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::build(&[]);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_panics() {
        let m = DistanceMatrix::build(&cities());
        m.get(0, 3);
    }
}
