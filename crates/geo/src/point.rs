//! Validated latitude/longitude coordinates.

use serde::{Deserialize, Serialize};

/// A point on the Earth's surface, in decimal degrees.
///
/// Latitude is clamped-checked to `[-90, 90]`, longitude to `[-180, 180]`.
/// Construction through [`GeoPoint::new`] enforces validity; the fields stay
/// private so every `GeoPoint` in the system is known-valid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

/// Error returned when constructing a [`GeoPoint`] from out-of-range values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordError {
    /// Latitude outside `[-90, 90]` or not finite.
    Latitude,
    /// Longitude outside `[-180, 180]` or not finite.
    Longitude,
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::Latitude => write!(f, "latitude must be finite and within [-90, 90]"),
            CoordError::Longitude => write!(f, "longitude must be finite and within [-180, 180]"),
        }
    }
}

impl std::error::Error for CoordError {}

impl GeoPoint {
    /// Creates a point, validating both coordinates.
    pub fn new(lat: f64, lon: f64) -> Result<Self, CoordError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(CoordError::Latitude);
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(CoordError::Longitude);
        }
        Ok(Self { lat, lon })
    }

    /// Creates a point without validation.
    ///
    /// # Panics
    /// Panics in debug builds if the coordinates are invalid. Intended for
    /// compile-time-known constants such as the embedded gazetteer table.
    pub fn new_unchecked(lat: f64, lon: f64) -> Self {
        debug_assert!(lat.is_finite() && (-90.0..=90.0).contains(&lat));
        debug_assert!(lon.is_finite() && (-180.0..=180.0).contains(&lon));
        Self { lat, lon }
    }

    /// Latitude in decimal degrees.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in decimal degrees.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_point_round_trips() {
        let p = GeoPoint::new(40.7128, -74.0060).unwrap();
        assert_eq!(p.lat(), 40.7128);
        assert_eq!(p.lon(), -74.0060);
    }

    #[test]
    fn poles_and_antimeridian_are_valid() {
        assert!(GeoPoint::new(90.0, 0.0).is_ok());
        assert!(GeoPoint::new(-90.0, 0.0).is_ok());
        assert!(GeoPoint::new(0.0, 180.0).is_ok());
        assert!(GeoPoint::new(0.0, -180.0).is_ok());
    }

    #[test]
    fn out_of_range_latitude_rejected() {
        assert_eq!(GeoPoint::new(90.01, 0.0), Err(CoordError::Latitude));
        assert_eq!(GeoPoint::new(f64::NAN, 0.0), Err(CoordError::Latitude));
        assert_eq!(GeoPoint::new(f64::INFINITY, 0.0), Err(CoordError::Latitude));
    }

    #[test]
    fn out_of_range_longitude_rejected() {
        assert_eq!(GeoPoint::new(0.0, 180.5), Err(CoordError::Longitude));
        assert_eq!(GeoPoint::new(0.0, f64::NAN), Err(CoordError::Longitude));
    }

    #[test]
    fn radians_conversion() {
        let p = GeoPoint::new(180.0 / std::f64::consts::PI, 0.0).unwrap();
        assert!((p.lat_rad() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let p = GeoPoint::new(30.2672, -97.7431).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: GeoPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
