//! CSR adjacency over the following network.
//!
//! The sampler and the baselines repeatedly ask "who does u follow" and
//! "who follows u". Building a compressed sparse row structure once turns
//! both into slice lookups. Edge *indices* (not just neighbor ids) are
//! stored so the Gibbs sampler can find the assignment state of each
//! incident relationship.

use crate::csr::Csr;
use crate::model::{Dataset, UserId};

/// Bidirectional CSR adjacency; values are indices into `dataset.edges`.
///
/// Each direction (and the mention index) is one [`Csr`] built with the
/// stable counting sort, so the edge indices within a row always appear in
/// dataset order — build order never depends on hashing.
#[derive(Debug, Clone)]
pub struct Adjacency {
    out: Csr<u32>,
    r#in: Csr<u32>,
    /// Mention indices per user.
    mentions: Csr<u32>,
}

impl Adjacency {
    /// Builds adjacency from a dataset.
    pub fn build(dataset: &Dataset) -> Self {
        let n = dataset.num_users();
        Self {
            out: Csr::from_buckets(n, dataset.edges.iter().map(|e| e.follower.index())),
            r#in: Csr::from_buckets(n, dataset.edges.iter().map(|e| e.friend.index())),
            mentions: Csr::from_buckets(n, dataset.mentions.iter().map(|m| m.user.index())),
        }
    }

    /// Edge indices where `u` is the follower (u's "friends" edges).
    #[inline]
    pub fn out_edges(&self, u: UserId) -> &[u32] {
        self.out.row(u.index())
    }

    /// Edge indices where `u` is the friend (u's "followers" edges).
    #[inline]
    pub fn in_edges(&self, u: UserId) -> &[u32] {
        self.r#in.row(u.index())
    }

    /// Mention indices tweeted by `u`.
    #[inline]
    pub fn mentions_of(&self, u: UserId) -> &[u32] {
        self.mentions.row(u.index())
    }

    /// Out-degree (number of friends) of `u`.
    pub fn num_friends(&self, u: UserId) -> usize {
        self.out_edges(u).len()
    }

    /// In-degree (number of followers) of `u`.
    pub fn num_followers(&self, u: UserId) -> usize {
        self.in_edges(u).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FollowEdge, TweetMention};
    use mlp_gazetteer::VenueId;

    fn dataset() -> Dataset {
        let mut d = Dataset::new(4);
        let e = |a: u32, b: u32| FollowEdge { follower: UserId(a), friend: UserId(b) };
        d.edges = vec![e(0, 1), e(0, 2), e(1, 0), e(3, 0), e(2, 1)];
        let m = |u: u32, v: u32| TweetMention { user: UserId(u), venue: VenueId(v) };
        d.mentions = vec![m(0, 5), m(0, 6), m(2, 5)];
        d
    }

    #[test]
    fn out_edges_index_the_dataset() {
        let d = dataset();
        let adj = Adjacency::build(&d);
        let out0: Vec<u32> = adj.out_edges(UserId(0)).to_vec();
        assert_eq!(out0, vec![0, 1]);
        for &s in &out0 {
            assert_eq!(d.edges[s as usize].follower, UserId(0));
        }
        assert_eq!(adj.num_friends(UserId(0)), 2);
        assert_eq!(adj.num_friends(UserId(3)), 1);
    }

    #[test]
    fn in_edges_index_the_dataset() {
        let d = dataset();
        let adj = Adjacency::build(&d);
        let in0: Vec<u32> = adj.in_edges(UserId(0)).to_vec();
        assert_eq!(in0.len(), 2);
        for &s in &in0 {
            assert_eq!(d.edges[s as usize].friend, UserId(0));
        }
        assert_eq!(adj.num_followers(UserId(1)), 2);
        assert_eq!(adj.num_followers(UserId(3)), 0);
    }

    #[test]
    fn mentions_per_user() {
        let d = dataset();
        let adj = Adjacency::build(&d);
        assert_eq!(adj.mentions_of(UserId(0)), &[0, 1]);
        assert_eq!(adj.mentions_of(UserId(2)), &[2]);
        assert!(adj.mentions_of(UserId(1)).is_empty());
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(2);
        let adj = Adjacency::build(&d);
        assert!(adj.out_edges(UserId(0)).is_empty());
        assert!(adj.in_edges(UserId(1)).is_empty());
        assert!(adj.mentions_of(UserId(0)).is_empty());
    }

    #[test]
    fn edge_partition_is_complete() {
        // Every edge appears exactly once in out-CSR and once in in-CSR.
        let d = dataset();
        let adj = Adjacency::build(&d);
        let mut out_all: Vec<u32> =
            (0..4).flat_map(|u| adj.out_edges(UserId(u)).to_vec()).collect();
        out_all.sort_unstable();
        assert_eq!(out_all, vec![0, 1, 2, 3, 4]);
        let mut in_all: Vec<u32> = (0..4).flat_map(|u| adj.in_edges(UserId(u)).to_vec()).collect();
        in_all.sort_unstable();
        assert_eq!(in_all, vec![0, 1, 2, 3, 4]);
    }
}
