//! CSR adjacency over the following network.
//!
//! The sampler and the baselines repeatedly ask "who does u follow" and
//! "who follows u". Building a compressed sparse row structure once turns
//! both into slice lookups. Edge *indices* (not just neighbor ids) are
//! stored so the Gibbs sampler can find the assignment state of each
//! incident relationship.

use crate::model::{Dataset, UserId};

/// Bidirectional CSR adjacency; values are indices into `dataset.edges`.
#[derive(Debug, Clone)]
pub struct Adjacency {
    out_offsets: Vec<u32>,
    out_edges: Vec<u32>,
    in_offsets: Vec<u32>,
    in_edges: Vec<u32>,
    /// Mention indices per user, CSR.
    mention_offsets: Vec<u32>,
    mention_ids: Vec<u32>,
}

impl Adjacency {
    /// Builds adjacency from a dataset.
    pub fn build(dataset: &Dataset) -> Self {
        let n = dataset.num_users();
        let (out_offsets, out_edges) = csr(n, dataset.edges.iter().map(|e| e.follower.index()));
        let (in_offsets, in_edges) = csr(n, dataset.edges.iter().map(|e| e.friend.index()));
        let (mention_offsets, mention_ids) =
            csr(n, dataset.mentions.iter().map(|m| m.user.index()));
        Self { out_offsets, out_edges, in_offsets, in_edges, mention_offsets, mention_ids }
    }

    /// Edge indices where `u` is the follower (u's "friends" edges).
    #[inline]
    pub fn out_edges(&self, u: UserId) -> &[u32] {
        let i = u.index();
        &self.out_edges[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// Edge indices where `u` is the friend (u's "followers" edges).
    #[inline]
    pub fn in_edges(&self, u: UserId) -> &[u32] {
        let i = u.index();
        &self.in_edges[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Mention indices tweeted by `u`.
    #[inline]
    pub fn mentions_of(&self, u: UserId) -> &[u32] {
        let i = u.index();
        &self.mention_ids[self.mention_offsets[i] as usize..self.mention_offsets[i + 1] as usize]
    }

    /// Out-degree (number of friends) of `u`.
    pub fn num_friends(&self, u: UserId) -> usize {
        self.out_edges(u).len()
    }

    /// In-degree (number of followers) of `u`.
    pub fn num_followers(&self, u: UserId) -> usize {
        self.in_edges(u).len()
    }
}

/// Builds CSR offsets + values from an item→bucket assignment stream.
fn csr(n: usize, buckets: impl Iterator<Item = usize> + Clone) -> (Vec<u32>, Vec<u32>) {
    let mut counts = vec![0u32; n + 1];
    for b in buckets.clone() {
        counts[b + 1] += 1;
    }
    for i in 1..=n {
        counts[i] += counts[i - 1];
    }
    let offsets = counts.clone();
    let mut cursor = offsets.clone();
    let mut values = vec![0u32; offsets[n] as usize];
    for (idx, b) in buckets.enumerate() {
        values[cursor[b] as usize] = idx as u32;
        cursor[b] += 1;
    }
    (offsets, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FollowEdge, TweetMention};
    use mlp_gazetteer::VenueId;

    fn dataset() -> Dataset {
        let mut d = Dataset::new(4);
        let e = |a: u32, b: u32| FollowEdge { follower: UserId(a), friend: UserId(b) };
        d.edges = vec![e(0, 1), e(0, 2), e(1, 0), e(3, 0), e(2, 1)];
        let m = |u: u32, v: u32| TweetMention { user: UserId(u), venue: VenueId(v) };
        d.mentions = vec![m(0, 5), m(0, 6), m(2, 5)];
        d
    }

    #[test]
    fn out_edges_index_the_dataset() {
        let d = dataset();
        let adj = Adjacency::build(&d);
        let out0: Vec<u32> = adj.out_edges(UserId(0)).to_vec();
        assert_eq!(out0, vec![0, 1]);
        for &s in &out0 {
            assert_eq!(d.edges[s as usize].follower, UserId(0));
        }
        assert_eq!(adj.num_friends(UserId(0)), 2);
        assert_eq!(adj.num_friends(UserId(3)), 1);
    }

    #[test]
    fn in_edges_index_the_dataset() {
        let d = dataset();
        let adj = Adjacency::build(&d);
        let in0: Vec<u32> = adj.in_edges(UserId(0)).to_vec();
        assert_eq!(in0.len(), 2);
        for &s in &in0 {
            assert_eq!(d.edges[s as usize].friend, UserId(0));
        }
        assert_eq!(adj.num_followers(UserId(1)), 2);
        assert_eq!(adj.num_followers(UserId(3)), 0);
    }

    #[test]
    fn mentions_per_user() {
        let d = dataset();
        let adj = Adjacency::build(&d);
        assert_eq!(adj.mentions_of(UserId(0)), &[0, 1]);
        assert_eq!(adj.mentions_of(UserId(2)), &[2]);
        assert!(adj.mentions_of(UserId(1)).is_empty());
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(2);
        let adj = Adjacency::build(&d);
        assert!(adj.out_edges(UserId(0)).is_empty());
        assert!(adj.in_edges(UserId(1)).is_empty());
        assert!(adj.mentions_of(UserId(0)).is_empty());
    }

    #[test]
    fn edge_partition_is_complete() {
        // Every edge appears exactly once in out-CSR and once in in-CSR.
        let d = dataset();
        let adj = Adjacency::build(&d);
        let mut out_all: Vec<u32> =
            (0..4).flat_map(|u| adj.out_edges(UserId(u)).to_vec()).collect();
        out_all.sort_unstable();
        assert_eq!(out_all, vec![0, 1, 2, 3, 4]);
        let mut in_all: Vec<u32> = (0..4).flat_map(|u| adj.in_edges(UserId(u)).to_vec()).collect();
        in_all.sort_unstable();
        assert_eq!(in_all, vec![0, 1, 2, 3, 4]);
    }
}
