//! The abstract data of paper Sec. 3: users, following relationships,
//! tweeting relationships, and partially observed home locations.

use mlp_gazetteer::{CityId, VenueId};
use serde::{Deserialize, Serialize};

/// Index of a user — the paper's `u_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct UserId(pub u32);

impl UserId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// A following relationship `f⟨i,j⟩`: `follower` follows `friend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FollowEdge {
    /// The user who follows (the paper's `u_i`).
    pub follower: UserId,
    /// The user being followed (the paper's `u_j`).
    pub friend: UserId,
}

/// A tweeting relationship `t⟨i,j⟩`: `user` mentioned `venue` in a tweet.
///
/// A user can mention the same venue many times; each mention is a separate
/// relationship (the paper's `t_{1:K}` are token instances, not types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TweetMention {
    /// The tweeting user.
    pub user: UserId,
    /// The venue name mentioned.
    pub venue: VenueId,
}

/// The observed data for one profiling problem instance.
///
/// `registered` holds the home location a user exposes in their profile
/// (`None` = unlabeled). The evaluation harness additionally *masks* a test
/// fold of registered locations; see [`crate::folds`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Number of users `N`; user ids are `0..num_users`.
    pub num_users: u32,
    /// Registered (observed) home location per user, `None` if not exposed.
    pub registered: Vec<Option<CityId>>,
    /// All following relationships `f_{1:S}`.
    pub edges: Vec<FollowEdge>,
    /// All tweeting relationships `t_{1:K}`.
    pub mentions: Vec<TweetMention>,
}

impl Dataset {
    /// Creates an empty dataset over `num_users` users.
    pub fn new(num_users: u32) -> Self {
        Self {
            num_users,
            registered: vec![None; num_users as usize],
            edges: Vec::new(),
            mentions: Vec::new(),
        }
    }

    /// Number of users `N`.
    pub fn num_users(&self) -> usize {
        self.num_users as usize
    }

    /// Number of following relationships `S`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of tweeting relationships `K`.
    pub fn num_mentions(&self) -> usize {
        self.mentions.len()
    }

    /// Ids of labeled users `U*` (registered location present).
    pub fn labeled_users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.registered
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| UserId(i as u32))
    }

    /// Number of labeled users.
    pub fn num_labeled(&self) -> usize {
        self.registered.iter().filter(|r| r.is_some()).count()
    }

    /// Returns a copy with the registered locations of `mask` hidden —
    /// the train view for one cross-validation fold.
    pub fn mask_users(&self, mask: &[UserId]) -> Dataset {
        let mut out = self.clone();
        for &u in mask {
            out.registered[u.index()] = None;
        }
        out
    }

    /// The sub-dataset over users `0..n` as if the rest never existed:
    /// labels truncated, and only edges/mentions whose endpoints all fall
    /// below `n` kept. This is the train corpus for an online-refresh
    /// split — users `n..` arrive later as serving requests.
    pub fn prefix(&self, n: usize) -> Dataset {
        let n = n.min(self.num_users());
        let mut out = Dataset::new(n as u32);
        out.registered.copy_from_slice(&self.registered[..n]);
        out.edges = self
            .edges
            .iter()
            .filter(|e| e.follower.index() < n && e.friend.index() < n)
            .copied()
            .collect();
        out.mentions = self.mentions.iter().filter(|m| m.user.index() < n).copied().collect();
        out
    }

    /// Validates internal consistency (ids in range); returns a description
    /// of the first violation found.
    pub fn validate(&self, num_cities: usize, num_venues: usize) -> Result<(), String> {
        let n = self.num_users;
        if self.registered.len() != n as usize {
            return Err(format!(
                "registered has {} entries for {} users",
                self.registered.len(),
                n
            ));
        }
        for (i, r) in self.registered.iter().enumerate() {
            if let Some(c) = r {
                if c.index() >= num_cities {
                    return Err(format!("user {i} registered at out-of-range city {c}"));
                }
            }
        }
        for (s, e) in self.edges.iter().enumerate() {
            if e.follower.0 >= n || e.friend.0 >= n {
                return Err(format!("edge {s} references user out of range"));
            }
            if e.follower == e.friend {
                return Err(format!("edge {s} is a self-loop at {}", e.follower));
            }
        }
        for (k, m) in self.mentions.iter().enumerate() {
            if m.user.0 >= n {
                return Err(format!("mention {k} references user out of range"));
            }
            if m.venue.index() >= num_venues {
                return Err(format!("mention {k} references venue out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut d = Dataset::new(3);
        d.registered[0] = Some(CityId(0));
        d.edges.push(FollowEdge { follower: UserId(0), friend: UserId(1) });
        d.mentions.push(TweetMention { user: UserId(2), venue: VenueId(1) });
        d
    }

    #[test]
    fn counts() {
        let d = tiny();
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_edges(), 1);
        assert_eq!(d.num_mentions(), 1);
        assert_eq!(d.num_labeled(), 1);
        assert_eq!(d.labeled_users().collect::<Vec<_>>(), vec![UserId(0)]);
    }

    #[test]
    fn mask_hides_labels() {
        let d = tiny();
        let masked = d.mask_users(&[UserId(0)]);
        assert_eq!(masked.num_labeled(), 0);
        assert_eq!(d.num_labeled(), 1, "original untouched");
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(tiny().validate(5, 5), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_city() {
        let mut d = tiny();
        d.registered[1] = Some(CityId(99));
        assert!(d.validate(5, 5).is_err());
    }

    #[test]
    fn validate_rejects_self_loop() {
        let mut d = tiny();
        d.edges.push(FollowEdge { follower: UserId(1), friend: UserId(1) });
        assert!(d.validate(5, 5).unwrap_err().contains("self-loop"));
    }

    #[test]
    fn validate_rejects_out_of_range_user() {
        let mut d = tiny();
        d.edges.push(FollowEdge { follower: UserId(9), friend: UserId(1) });
        assert!(d.validate(5, 5).is_err());
    }

    #[test]
    fn user_id_display() {
        assert_eq!(UserId(7).to_string(), "U7");
    }
}
