//! Event-scripted world simulation over the synthetic Twitter.
//!
//! The generator ([`crate::generator`]) produces one *static* world; this
//! module makes that world move. A [`ScenarioScript`] is a deterministic
//! timeline of interventions — steady user arrivals plus scheduled
//! events — and a [`ScenarioWorld`] advances the world one tick at a
//! time, mutating the dataset in place with the generator's own
//! generative story (the same ψ_l venue mixtures, distance power law,
//! and celebrity noise models) and reporting what changed as a
//! [`TickDelta`]:
//!
//! * **arrivals** — new users join with profiles, mentions, and edges
//!   drawn exactly as the generator would have drawn them;
//! * **migration waves** ([`ScenarioEvent::MigrationWave`]) — users
//!   change home city: the registered label moves, their old tweets age
//!   out of the crawl window and are regenerated from the new profile,
//!   and about half of their follow edges churn and are re-drawn;
//! * **graph churn** ([`ScenarioEvent::EdgeChurn`]) — edges decay
//!   uniformly and fresh ones grow from current profiles;
//! * **label noise** ([`ScenarioEvent::NoiseBurst`]) — a burst of
//!   corrupted registered locations (truth is untouched — only the
//!   labels lie);
//! * **traffic spikes** ([`ScenarioEvent::TrafficSpike`]) — a serving
//!   load multiplier for the tick, for closed-loop drivers.
//!
//! Everything is a pure function of `(gazetteer, generator config,
//! script)`: each tick draws from RNG streams derived from the master
//! seed, the tick number, and the operation index, so the same inputs
//! replay the same event stream byte for byte — pinned by
//! [`ScenarioWorld::event_fingerprint`], an FNV-1a hash folded over
//! every mutation as it happens.
//!
//! The closed loop through the serving stack (refresh vs retrain
//! decisions, accuracy-over-time curves) lives in `mlp_eval::scenario`;
//! this module is only the world.

use crate::generator::{sample_profile, GeneratedData, Generator, GeneratorConfig};
use crate::model::{Dataset, FollowEdge, TweetMention, UserId};
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_sampling::{sample_poisson, AliasTable, Pcg64, SplitMix64};
use std::collections::HashSet;

/// One intervention a script can schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// `count` extra users join this tick (on top of the script's
    /// steady `arrivals_per_tick`).
    Arrivals {
        /// How many users arrive.
        count: usize,
    },
    /// Each existing user migrates to a new home city with probability
    /// `fraction`. A migrant's registered label moves to the new home,
    /// their tweets are regenerated from the new profile (the old ones
    /// age out of the crawl window), and roughly half of their follow
    /// edges churn and are re-drawn around the new home.
    MigrationWave {
        /// Per-user migration probability.
        fraction: f64,
    },
    /// Uniform graph decay plus growth: every edge is dropped with
    /// probability `remove_fraction`, then about `add_per_user` fresh
    /// edges per current user grow from current profiles.
    EdgeChurn {
        /// Per-edge removal probability.
        remove_fraction: f64,
        /// Mean fresh edges per current user (Poisson; 0 adds none).
        add_per_user: f64,
    },
    /// Each labeled user's registered location is corrupted (to a
    /// random non-home city) with probability `fraction`. True profiles
    /// are untouched.
    NoiseBurst {
        /// Per-label corruption probability.
        fraction: f64,
    },
    /// Multiplies this tick's serving-traffic level (advisory — the
    /// world itself does not serve; closed-loop drivers read it off the
    /// [`TickDelta`]).
    TrafficSpike {
        /// Traffic multiplier for the tick.
        multiplier: f64,
    },
}

/// An event pinned to a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// The tick (1-based) this event fires on.
    pub tick: usize,
    /// What happens.
    pub event: ScenarioEvent,
}

/// A deterministic timeline: initial world size, tick count, steady
/// arrival rate, and scheduled events. Construct one of the canned
/// scenarios ([`Self::steady_state`], [`Self::migration_wave`],
/// [`Self::churn_storm`], [`Self::noise_burst`] — or [`Self::by_name`])
/// or build your own and [`Self::validate`] it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioScript {
    /// Scenario name (used in reports).
    pub name: String,
    /// Users in the world before tick 1.
    pub initial_users: usize,
    /// How many ticks the scenario runs.
    pub ticks: usize,
    /// Users arriving every tick, before any scheduled event.
    pub arrivals_per_tick: usize,
    /// The scheduled interventions.
    pub events: Vec<ScheduledEvent>,
}

/// The canned scenario names accepted by [`ScenarioScript::by_name`].
pub const CANNED_SCENARIOS: [&str; 4] =
    ["steady-state", "migration-wave", "churn-storm", "noise-burst"];

impl ScenarioScript {
    /// Steady state: arrivals only, no interventions. The baseline the
    /// other scenarios are read against — incremental refresh should
    /// hold accuracy without ever retraining.
    pub fn steady_state(initial_users: usize, ticks: usize) -> Self {
        Self {
            name: "steady-state".into(),
            initial_users,
            ticks,
            arrivals_per_tick: (initial_users / 20).max(1),
            events: Vec::new(),
        }
    }

    /// A migration wave: 30% of users change home city at ~40% of the
    /// timeline. The canonical staleness regime — the posterior's
    /// absorbed homes go stale in one tick, accuracy dips, drift
    /// crosses threshold, and the closed loop must retrain to recover.
    pub fn migration_wave(initial_users: usize, ticks: usize) -> Self {
        let wave = (ticks * 2 / 5).max(1);
        Self {
            name: "migration-wave".into(),
            initial_users,
            ticks,
            arrivals_per_tick: (initial_users / 20).max(1),
            events: vec![ScheduledEvent {
                tick: wave,
                event: ScenarioEvent::MigrationWave { fraction: 0.3 },
            }],
        }
    }

    /// A churn storm: three consecutive ticks of heavy edge decay and
    /// regrowth under a traffic spike. Homes never move, so the
    /// posterior stays valid — the scenario probes robustness of the
    /// refresh path (and serving latency) to graph turbulence.
    pub fn churn_storm(initial_users: usize, ticks: usize) -> Self {
        let storm = (ticks / 2).max(1);
        let mut events: Vec<ScheduledEvent> = (0..3)
            .map(|i| ScheduledEvent {
                tick: (storm + i).min(ticks),
                event: ScenarioEvent::EdgeChurn { remove_fraction: 0.25, add_per_user: 2.0 },
            })
            .collect();
        events.push(ScheduledEvent {
            tick: storm,
            event: ScenarioEvent::TrafficSpike { multiplier: 3.0 },
        });
        Self {
            name: "churn-storm".into(),
            initial_users,
            ticks,
            arrivals_per_tick: (initial_users / 20).max(1),
            events,
        }
    }

    /// A label-noise burst followed by a migration wave: 35% of labels
    /// are corrupted first, then the wave forces the closed loop to
    /// retrain *on the noisy labels* — measuring how much of the
    /// migration recovery label noise costs.
    pub fn noise_burst(initial_users: usize, ticks: usize) -> Self {
        let burst = (ticks * 2 / 5).max(1);
        let wave = (burst + 1).min(ticks);
        Self {
            name: "noise-burst".into(),
            initial_users,
            ticks,
            arrivals_per_tick: (initial_users / 20).max(1),
            events: vec![
                ScheduledEvent { tick: burst, event: ScenarioEvent::NoiseBurst { fraction: 0.35 } },
                ScheduledEvent {
                    tick: wave,
                    event: ScenarioEvent::MigrationWave { fraction: 0.3 },
                },
            ],
        }
    }

    /// Looks a canned scenario up by name (see [`CANNED_SCENARIOS`]).
    pub fn by_name(name: &str, initial_users: usize, ticks: usize) -> Option<Self> {
        match name {
            "steady-state" => Some(Self::steady_state(initial_users, ticks)),
            "migration-wave" => Some(Self::migration_wave(initial_users, ticks)),
            "churn-storm" => Some(Self::churn_storm(initial_users, ticks)),
            "noise-burst" => Some(Self::noise_burst(initial_users, ticks)),
            _ => None,
        }
    }

    /// Checks the script is well-formed: at least one user and one
    /// tick, every event inside the timeline, probabilities in `[0, 1]`,
    /// rates finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_users == 0 {
            return Err("scenario needs at least one initial user".into());
        }
        if self.ticks == 0 {
            return Err("scenario needs at least one tick".into());
        }
        for (i, e) in self.events.iter().enumerate() {
            if e.tick == 0 || e.tick > self.ticks {
                return Err(format!(
                    "event {i} scheduled at tick {} outside 1..={}",
                    e.tick, self.ticks
                ));
            }
            let prob = |name: &str, p: f64| -> Result<(), String> {
                if (0.0..=1.0).contains(&p) {
                    Ok(())
                } else {
                    Err(format!("event {i}: {name} = {p} is not a probability"))
                }
            };
            match &e.event {
                ScenarioEvent::Arrivals { .. } => {}
                ScenarioEvent::MigrationWave { fraction } => prob("fraction", *fraction)?,
                ScenarioEvent::NoiseBurst { fraction } => prob("fraction", *fraction)?,
                ScenarioEvent::EdgeChurn { remove_fraction, add_per_user } => {
                    prob("remove_fraction", *remove_fraction)?;
                    if !add_per_user.is_finite() || *add_per_user < 0.0 {
                        return Err(format!("event {i}: add_per_user = {add_per_user} invalid"));
                    }
                }
                ScenarioEvent::TrafficSpike { multiplier } => {
                    if !multiplier.is_finite() || *multiplier <= 0.0 {
                        return Err(format!("event {i}: multiplier = {multiplier} invalid"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One user's home move, as reported in a [`TickDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Who moved.
    pub user: UserId,
    /// The old home city.
    pub from: CityId,
    /// The new home city.
    pub to: CityId,
}

/// What one [`ScenarioWorld::tick`] changed.
#[derive(Debug, Clone, PartialEq)]
pub struct TickDelta {
    /// The tick this delta describes (1-based).
    pub tick: usize,
    /// Users who joined this tick, in arrival order.
    pub new_users: Vec<UserId>,
    /// Users whose home moved this tick.
    pub migrated: Vec<Migration>,
    /// Follow edges added (post-dedup).
    pub edges_added: usize,
    /// Follow edges removed.
    pub edges_removed: usize,
    /// Tweet mentions added.
    pub mentions_added: usize,
    /// Tweet mentions that aged out.
    pub mentions_removed: usize,
    /// Registered labels corrupted this tick.
    pub labels_corrupted: usize,
    /// Serving-traffic multiplier for the tick (1.0 unless a
    /// [`ScenarioEvent::TrafficSpike`] fired).
    pub traffic: f64,
}

// Fingerprint op codes — arbitrary distinct constants folded ahead of
// each mutation's payload.
const FOLD_ARRIVAL: u64 = 0xA1;
const FOLD_MIGRATE: u64 = 0xA2;
const FOLD_EDGE_ADD: u64 = 0xA3;
const FOLD_EDGE_DROP: u64 = 0xA4;
const FOLD_MENTION_ADD: u64 = 0xA5;
const FOLD_MENTIONS_AGED: u64 = 0xA6;
const FOLD_NOISE: u64 = 0xA7;
const FOLD_TRAFFIC: u64 = 0xA8;

/// The RNG stream namespace for the world's own draws; disjoint from
/// the generator's phases 1–4 by construction (see [`ScenarioWorld::op_rng`]).
const CELEB_PHASE: u64 = 0xCE1EB;

/// A living synthetic Twitter: the generator's world plus the script
/// driving it forward. See the [module docs](self) for the event
/// vocabulary and the determinism contract.
pub struct ScenarioWorld<'g> {
    gen: Generator<'g>,
    script: ScenarioScript,
    tick: usize,
    /// Current true profiles — the accuracy oracle for closed-loop
    /// drivers. `profiles[u][0].0` is the current true home.
    profiles: Vec<Vec<(CityId, f64)>>,
    dataset: Dataset,
    /// city → users whose current profile contains it (the generator's
    /// index, maintained incrementally).
    users_at: Vec<Vec<UserId>>,
    city_user_counts: Vec<f64>,
    /// Dedup set over (follower, friend) — membership checks only,
    /// never iterated, so `HashSet` order cannot leak into the output.
    edge_set: HashSet<(u32, u32)>,
    pop_alias: AliasTable,
    popular: (Vec<VenueId>, AliasTable),
    psi_cache: Vec<Option<(Vec<VenueId>, AliasTable)>>,
    /// Friend-city alias tables ∝ users(y)·d(x,y)^α — invalidated each
    /// tick (the user distribution moved) and rebuilt lazily.
    city_alias: Vec<Option<AliasTable>>,
    celebs: Vec<UserId>,
    celeb_alias: AliasTable,
    fingerprint: u64,
}

impl<'g> ScenarioWorld<'g> {
    /// Builds the initial world (a full generator run over
    /// `script.initial_users` users) and arms the script.
    ///
    /// `config.num_users` is overridden by the script; everything else
    /// (seed, rates, mixtures) applies to both the initial world and
    /// every tick's draws.
    ///
    /// # Panics
    /// Panics if `config` is degenerate (same contract as
    /// [`Generator::new`]); script problems return `Err` instead.
    pub fn new(
        gaz: &'g Gazetteer,
        config: GeneratorConfig,
        script: ScenarioScript,
    ) -> Result<Self, String> {
        script.validate()?;
        let config = GeneratorConfig { num_users: script.initial_users, ..config };
        let gen = Generator::new(gaz, config);
        let GeneratedData { dataset, truth } = gen.generate();
        let mut users_at = vec![Vec::new(); gaz.num_cities()];
        for (i, profile) in truth.profiles.iter().enumerate() {
            for &(c, _) in profile {
                users_at[c.index()].push(UserId(i as u32));
            }
        }
        let city_user_counts = users_at.iter().map(|u| u.len() as f64).collect();
        let edge_set = dataset.edges.iter().map(|e| (e.follower.0, e.friend.0)).collect();
        let pop_alias = AliasTable::new(&gaz.population_weights())
            .ok_or_else(|| "gazetteer has no populated cities".to_string())?;
        let popular = gen.global_venue_popularity();

        // The world's celebrity pool mirrors the generator's shape
        // (Zipf attractiveness over seed-picked initial users) but draws
        // from its own stream — the generator's pool is internal to its
        // edge phase.
        let n = script.initial_users;
        let mut celeb_rng = Pcg64::new(SplitMix64::derive(gen.config.seed, CELEB_PHASE));
        let num_celebs = ((n as f64 * gen.config.celebrity_fraction).ceil() as usize).max(1);
        let celebs: Vec<UserId> =
            (0..num_celebs).map(|_| UserId(celeb_rng.next_bounded(n) as u32)).collect();
        let celeb_weights: Vec<f64> = (0..num_celebs).map(|r| 1.0 / (1.0 + r as f64)).collect();
        let celeb_alias = AliasTable::new(&celeb_weights).expect("non-empty celebrity pool");

        let mut world = Self {
            gen,
            script,
            tick: 0,
            profiles: truth.profiles,
            dataset,
            users_at,
            city_user_counts,
            edge_set,
            pop_alias,
            popular,
            psi_cache: vec![None; gaz.num_cities()],
            city_alias: vec![None; gaz.num_cities()],
            celebs,
            celeb_alias,
            fingerprint: 0xcbf29ce484222325,
        };
        let seed = world.gen.config.seed;
        world.fold(&[seed, world.script.initial_users as u64]);
        let name_bytes: Vec<u64> = world.script.name.bytes().map(u64::from).collect();
        world.fold(&name_bytes);
        Ok(world)
    }

    /// The script driving this world.
    pub fn script(&self) -> &ScenarioScript {
        &self.script
    }

    /// Ticks advanced so far (0 before the first [`Self::tick`]).
    pub fn current_tick(&self) -> usize {
        self.tick
    }

    /// Current user count.
    pub fn num_users(&self) -> usize {
        self.dataset.num_users()
    }

    /// The observable dataset as of the last tick — what the serving
    /// stack trains and refreshes on.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The current true home of `u` (ground truth; may disagree with
    /// the registered label after a [`ScenarioEvent::NoiseBurst`]).
    pub fn true_home(&self, u: UserId) -> CityId {
        self.profiles[u.index()][0].0
    }

    /// Current true profiles, indexed by user.
    pub fn profiles(&self) -> &[Vec<(CityId, f64)>] {
        &self.profiles
    }

    /// FNV-1a hash folded over every mutation since the world was
    /// built: same `(gazetteer, config, script)` ⇒ same fingerprint
    /// after the same number of ticks; any divergence in the event
    /// stream changes it.
    pub fn event_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Advances the world one tick: steady arrivals first, then this
    /// tick's scheduled events in script order. Ticking past
    /// `script.ticks` is allowed (arrivals continue; no events remain).
    pub fn tick(&mut self) -> TickDelta {
        self.tick += 1;
        let t = self.tick;
        // The user distribution moved last tick — friend-city tables
        // are stale. Rebuilt lazily, in draw order, so rebuilds are as
        // deterministic as the draws themselves.
        for slot in &mut self.city_alias {
            *slot = None;
        }
        let mut delta = TickDelta {
            tick: t,
            new_users: Vec::new(),
            migrated: Vec::new(),
            edges_added: 0,
            edges_removed: 0,
            mentions_added: 0,
            mentions_removed: 0,
            labels_corrupted: 0,
            traffic: 1.0,
        };
        let mut op = 0u64;
        if self.script.arrivals_per_tick > 0 {
            let mut rng = self.op_rng(t, op);
            op += 1;
            self.arrivals(self.script.arrivals_per_tick, &mut rng, &mut delta);
        }
        let events: Vec<ScenarioEvent> =
            self.script.events.iter().filter(|e| e.tick == t).map(|e| e.event.clone()).collect();
        for event in events {
            let mut rng = self.op_rng(t, op);
            op += 1;
            match event {
                ScenarioEvent::Arrivals { count } => self.arrivals(count, &mut rng, &mut delta),
                ScenarioEvent::MigrationWave { fraction } => {
                    self.migration_wave(fraction, &mut rng, &mut delta)
                }
                ScenarioEvent::EdgeChurn { remove_fraction, add_per_user } => {
                    self.edge_churn(remove_fraction, add_per_user, &mut rng, &mut delta)
                }
                ScenarioEvent::NoiseBurst { fraction } => {
                    self.noise_burst(fraction, &mut rng, &mut delta)
                }
                ScenarioEvent::TrafficSpike { multiplier } => {
                    delta.traffic *= multiplier;
                    self.fold(&[FOLD_TRAFFIC, multiplier.to_bits()]);
                }
            }
        }
        debug_assert_eq!(
            self.dataset.validate(self.gen.gaz.num_cities(), self.gen.gaz.num_venues()),
            Ok(())
        );
        delta
    }

    /// One RNG stream per (tick, operation): disjoint from the
    /// generator's phases 1–4 and [`CELEB_PHASE`] because
    /// `tick >= 1 ⇒ (tick << 20 | op) >= 2^20`, and two operations in
    /// one tick never share a stream.
    fn op_rng(&self, tick: usize, op: u64) -> Pcg64 {
        Pcg64::new(SplitMix64::derive(self.gen.config.seed, ((tick as u64) << 20) | op))
    }

    fn fold(&mut self, words: &[u64]) {
        for &w in words {
            for b in w.to_le_bytes() {
                self.fingerprint ^= b as u64;
                self.fingerprint = self.fingerprint.wrapping_mul(0x100000001b3);
            }
        }
    }

    fn arrivals(&mut self, count: usize, rng: &mut Pcg64, delta: &mut TickDelta) {
        let cfg = self.gen.config.clone();
        for _ in 0..count {
            let id = UserId(self.dataset.num_users);
            let home = CityId(self.pop_alias.sample(rng) as u32);
            let mut profile = vec![(home, 1.0)];
            if rng.bernoulli(cfg.multi_location_fraction) {
                if let Some(second) = self.gen.pick_second_location(rng, home, &self.pop_alias) {
                    profile = vec![(home, 0.65), (second, 0.35)];
                }
            }
            let registered = rng.bernoulli(cfg.registered_fraction).then_some(home);
            self.dataset.num_users += 1;
            self.dataset.registered.push(registered);
            self.fold(&[FOLD_ARRIVAL, id.0 as u64, home.0 as u64]);
            let mentions = sample_poisson(rng, cfg.mean_mentions) as usize;
            for _ in 0..mentions {
                self.push_mention(id, &profile, rng);
            }
            delta.mentions_added += mentions;
            let friends = sample_poisson(rng, cfg.mean_friends) as usize;
            for _ in 0..friends {
                if self.push_edge(id, &profile, rng) {
                    delta.edges_added += 1;
                }
            }
            for &(c, _) in &profile {
                self.users_at[c.index()].push(id);
                self.city_user_counts[c.index()] += 1.0;
            }
            self.profiles.push(profile);
            delta.new_users.push(id);
        }
    }

    fn migration_wave(&mut self, fraction: f64, rng: &mut Pcg64, delta: &mut TickDelta) {
        let cfg = self.gen.config.clone();
        // Pass 1: who moves, and where. Arrivals earlier in the tick
        // participate — they are existing users by now.
        let existing = self.dataset.num_users;
        let mut moves: Vec<Migration> = Vec::new();
        for u in 0..existing {
            if !rng.bernoulli(fraction) {
                continue;
            }
            let from = self.profiles[u as usize][0].0;
            let Some(to) = self.gen.pick_distinct_city(rng, &self.pop_alias, &[from]) else {
                continue;
            };
            moves.push(Migration { user: UserId(u), from, to });
        }
        if moves.is_empty() {
            return;
        }
        let migrants: HashSet<u32> = moves.iter().map(|m| m.user.0).collect();

        // Pass 2: a migrant's old tweets age out of the crawl window.
        let before = self.dataset.mentions.len();
        self.dataset.mentions.retain(|m| !migrants.contains(&m.user.0));
        let aged = before - self.dataset.mentions.len();
        delta.mentions_removed += aged;
        self.fold(&[FOLD_MENTIONS_AGED, aged as u64, moves.len() as u64]);

        // Pass 3: half of the edges touching a migrant churn away (one
        // draw per touched edge, in edge order — deterministic).
        let mut kept = Vec::with_capacity(self.dataset.edges.len());
        for e in std::mem::take(&mut self.dataset.edges) {
            let touched = migrants.contains(&e.follower.0) || migrants.contains(&e.friend.0);
            if touched && rng.bernoulli(0.5) {
                self.edge_set.remove(&(e.follower.0, e.friend.0));
                self.fold(&[FOLD_EDGE_DROP, e.follower.0 as u64, e.friend.0 as u64]);
                delta.edges_removed += 1;
            } else {
                kept.push(e);
            }
        }
        self.dataset.edges = kept;

        // Pass 4: per migrant — re-home, relabel, fresh evidence.
        for mv in moves {
            let u = mv.user;
            let old_profile = std::mem::take(&mut self.profiles[u.index()]);
            for &(c, _) in &old_profile {
                self.users_at[c.index()].retain(|&x| x != u);
                self.city_user_counts[c.index()] -= 1.0;
            }
            // The new home dominates; the old one lingers as a second
            // long-term location (friends and habits do not vanish).
            let profile = vec![(mv.to, 0.7), (mv.from, 0.3)];
            for &(c, _) in &profile {
                self.users_at[c.index()].push(u);
                self.city_user_counts[c.index()] += 1.0;
            }
            if self.dataset.registered[u.index()].is_some() {
                self.dataset.registered[u.index()] = Some(mv.to);
            }
            self.fold(&[FOLD_MIGRATE, u.0 as u64, mv.from.0 as u64, mv.to.0 as u64]);
            let mentions = sample_poisson(rng, cfg.mean_mentions) as usize;
            for _ in 0..mentions {
                self.push_mention(u, &profile, rng);
            }
            delta.mentions_added += mentions;
            let friends = sample_poisson(rng, cfg.mean_friends * 0.5) as usize;
            for _ in 0..friends {
                if self.push_edge(u, &profile, rng) {
                    delta.edges_added += 1;
                }
            }
            self.profiles[u.index()] = profile;
            delta.migrated.push(mv);
        }
    }

    fn edge_churn(
        &mut self,
        remove_fraction: f64,
        add_per_user: f64,
        rng: &mut Pcg64,
        delta: &mut TickDelta,
    ) {
        let mut kept = Vec::with_capacity(self.dataset.edges.len());
        for e in std::mem::take(&mut self.dataset.edges) {
            if rng.bernoulli(remove_fraction) {
                self.edge_set.remove(&(e.follower.0, e.friend.0));
                self.fold(&[FOLD_EDGE_DROP, e.follower.0 as u64, e.friend.0 as u64]);
                delta.edges_removed += 1;
            } else {
                kept.push(e);
            }
        }
        self.dataset.edges = kept;
        if add_per_user > 0.0 {
            let n = self.dataset.num_users();
            let adds = sample_poisson(rng, n as f64 * add_per_user) as usize;
            for _ in 0..adds {
                let follower = UserId(rng.next_bounded(n) as u32);
                let profile = self.profiles[follower.index()].clone();
                if self.push_edge(follower, &profile, rng) {
                    delta.edges_added += 1;
                }
            }
        }
    }

    fn noise_burst(&mut self, fraction: f64, rng: &mut Pcg64, delta: &mut TickDelta) {
        let n_cities = self.gen.gaz.num_cities();
        for u in 0..self.dataset.num_users() {
            if self.dataset.registered[u].is_none() || !rng.bernoulli(fraction) {
                continue;
            }
            let truth = self.profiles[u][0].0;
            let wrong = loop {
                let c = CityId(rng.next_bounded(n_cities) as u32);
                if c != truth || n_cities == 1 {
                    break c;
                }
            };
            self.dataset.registered[u] = Some(wrong);
            self.fold(&[FOLD_NOISE, u as u64, wrong.0 as u64]);
            delta.labels_corrupted += 1;
        }
    }

    /// Draws one tweet mention for `user` from the generator's tweeting
    /// story (noisy popularity vs ψ of a profile draw).
    fn push_mention(&mut self, user: UserId, profile: &[(CityId, f64)], rng: &mut Pcg64) {
        let venue = if rng.bernoulli(self.gen.config.noisy_mention_fraction) {
            self.popular.0[self.popular.1.sample(rng)]
        } else {
            let z = sample_profile(rng, profile);
            let (ids, table) = self.gen.psi(&mut self.psi_cache, z);
            ids[table.sample(rng)]
        };
        self.dataset.mentions.push(TweetMention { user, venue });
        self.fold(&[FOLD_MENTION_ADD, user.0 as u64, venue.0 as u64]);
    }

    /// Draws one follow edge for `follower` from the generator's
    /// following story, against the *current* world (pool sizes and the
    /// uniform-user range track arrivals). Returns false on dedup.
    fn push_edge(&mut self, follower: UserId, profile: &[(CityId, f64)], rng: &mut Pcg64) -> bool {
        let friend = if rng.bernoulli(self.gen.config.noisy_edge_fraction) {
            self.noisy_friend(follower, rng)
        } else {
            match self.based_friend(follower, profile, rng) {
                Some(f) => f,
                None => self.noisy_friend(follower, rng),
            }
        };
        if friend == follower {
            return false; // degenerate single-user world
        }
        if self.edge_set.insert((follower.0, friend.0)) {
            self.dataset.edges.push(FollowEdge { follower, friend });
            self.fold(&[FOLD_EDGE_ADD, follower.0 as u64, friend.0 as u64]);
            true
        } else {
            false
        }
    }

    /// The random following model over the current user range — the
    /// generator's [`Generator::noisy_edge`] with `n` tracking arrivals.
    fn noisy_friend(&self, follower: UserId, rng: &mut Pcg64) -> UserId {
        let n = self.dataset.num_users();
        loop {
            let candidate = if rng.bernoulli(0.7) {
                self.celebs[self.celeb_alias.sample(rng)]
            } else {
                UserId(rng.next_bounded(n) as u32)
            };
            if candidate != follower || n == 1 {
                return candidate;
            }
        }
    }

    /// The location-based following model over the current index — the
    /// generator's [`Generator::based_edge`] against the world's
    /// maintained `users_at` / counts, with tables rebuilt lazily per
    /// tick.
    fn based_friend(
        &mut self,
        follower: UserId,
        profile: &[(CityId, f64)],
        rng: &mut Pcg64,
    ) -> Option<UserId> {
        let x = sample_profile(rng, profile);
        if self.city_alias[x.index()].is_none() {
            let row = self.gen.gaz.distances().row(x.index());
            let weights: Vec<f64> = row
                .iter()
                .zip(&self.city_user_counts)
                .map(|(&d, &cnt)| {
                    if cnt <= 0.0 {
                        0.0
                    } else {
                        cnt * self.gen.config.power_law.kernel(d as f64)
                    }
                })
                .collect();
            self.city_alias[x.index()] = AliasTable::new(&weights);
        }
        let table = self.city_alias[x.index()].as_ref()?;
        for _ in 0..16 {
            let y = CityId(table.sample(rng) as u32);
            let pool = &self.users_at[y.index()];
            if pool.is_empty() {
                continue;
            }
            let friend = pool[rng.next_bounded(pool.len())];
            if friend != follower {
                return Some(friend);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(script: ScenarioScript, seed: u64) -> (Gazetteer, ScenarioScript) {
        (Gazetteer::us_cities(), {
            let mut s = script;
            s.name = format!("{}-{seed}", s.name);
            s
        })
    }

    fn run_world(gaz: &Gazetteer, script: &ScenarioScript, seed: u64) -> (Vec<TickDelta>, u64) {
        let config = GeneratorConfig { seed, ..Default::default() };
        let mut w = ScenarioWorld::new(gaz, config, script.clone()).unwrap();
        let deltas: Vec<TickDelta> = (0..script.ticks).map(|_| w.tick()).collect();
        let fp = w.event_fingerprint();
        assert_eq!(
            w.dataset().validate(gaz.num_cities(), gaz.num_venues()),
            Ok(()),
            "world must stay valid after the full script"
        );
        (deltas, fp)
    }

    #[test]
    fn scripts_validate() {
        for name in CANNED_SCENARIOS {
            let s = ScenarioScript::by_name(name, 100, 8).unwrap();
            assert_eq!(s.validate(), Ok(()), "{name}");
            assert_eq!(s.name, name);
        }
        assert!(ScenarioScript::by_name("nope", 100, 8).is_none());

        let mut bad = ScenarioScript::steady_state(100, 4);
        bad.events.push(ScheduledEvent { tick: 9, event: ScenarioEvent::Arrivals { count: 1 } });
        assert!(bad.validate().unwrap_err().contains("outside"));

        let mut bad = ScenarioScript::steady_state(100, 4);
        bad.events.push(ScheduledEvent {
            tick: 2,
            event: ScenarioEvent::MigrationWave { fraction: 1.5 },
        });
        assert!(bad.validate().unwrap_err().contains("not a probability"));

        assert!(ScenarioScript::steady_state(0, 4).validate().is_err());
        assert!(ScenarioScript::steady_state(10, 0).validate().is_err());
    }

    #[test]
    fn ticks_are_deterministic_and_seed_sensitive() {
        let (gaz, script) = world(ScenarioScript::migration_wave(150, 6), 41);
        let (a, fa) = run_world(&gaz, &script, 41);
        let (b, fb) = run_world(&gaz, &script, 41);
        assert_eq!(a, b, "same (seed, script) must replay the same deltas");
        assert_eq!(fa, fb);
        let (_, fc) = run_world(&gaz, &script, 43);
        assert_ne!(fa, fc, "a different seed must change the event stream");
    }

    #[test]
    fn arrivals_grow_the_world_consistently() {
        let gaz = Gazetteer::us_cities();
        let script = ScenarioScript::steady_state(120, 5);
        let per_tick = script.arrivals_per_tick;
        let mut w =
            ScenarioWorld::new(&gaz, GeneratorConfig { seed: 7, ..Default::default() }, script)
                .unwrap();
        for t in 1..=5 {
            let d = w.tick();
            assert_eq!(d.tick, t);
            assert_eq!(d.new_users.len(), per_tick);
            assert!(d.migrated.is_empty());
            assert_eq!(d.traffic, 1.0);
        }
        assert_eq!(w.num_users(), 120 + 5 * per_tick);
        assert_eq!(w.profiles().len(), w.num_users());
        assert_eq!(w.dataset().registered.len(), w.num_users());
        // The city index matches the profiles exactly.
        let mut expect = vec![0usize; gaz.num_cities()];
        for p in w.profiles() {
            for &(c, _) in p {
                expect[c.index()] += 1;
            }
        }
        for (c, &n) in expect.iter().enumerate() {
            assert_eq!(w.users_at[c].len(), n, "city {c} index out of sync");
        }
    }

    #[test]
    fn migration_moves_homes_labels_and_evidence() {
        let gaz = Gazetteer::us_cities();
        let script = ScenarioScript {
            name: "one-wave".into(),
            initial_users: 200,
            ticks: 1,
            arrivals_per_tick: 0,
            events: vec![ScheduledEvent {
                tick: 1,
                event: ScenarioEvent::MigrationWave { fraction: 0.4 },
            }],
        };
        let mut w =
            ScenarioWorld::new(&gaz, GeneratorConfig { seed: 9, ..Default::default() }, script)
                .unwrap();
        let before: Vec<CityId> = (0..200).map(|u| w.true_home(UserId(u))).collect();
        let d = w.tick();
        let frac = d.migrated.len() as f64 / 200.0;
        assert!((0.25..0.55).contains(&frac), "migrated fraction {frac}");
        assert!(d.mentions_removed > 0 && d.mentions_added > 0);
        assert!(d.edges_removed > 0 && d.edges_added > 0);
        for mv in &d.migrated {
            assert_eq!(before[mv.user.index()], mv.from);
            assert_ne!(mv.from, mv.to);
            assert_eq!(w.true_home(mv.user), mv.to, "profile must lead with the new home");
            // Labels follow the move (registered_fraction is 1.0 here).
            assert_eq!(w.dataset().registered[mv.user.index()], Some(mv.to));
        }
    }

    #[test]
    fn noise_burst_corrupts_labels_not_truth() {
        let gaz = Gazetteer::us_cities();
        let script = ScenarioScript {
            name: "one-burst".into(),
            initial_users: 200,
            ticks: 1,
            arrivals_per_tick: 0,
            events: vec![ScheduledEvent {
                tick: 1,
                event: ScenarioEvent::NoiseBurst { fraction: 0.3 },
            }],
        };
        let mut w =
            ScenarioWorld::new(&gaz, GeneratorConfig { seed: 13, ..Default::default() }, script)
                .unwrap();
        let homes: Vec<CityId> = (0..200).map(|u| w.true_home(UserId(u))).collect();
        let d = w.tick();
        let frac = d.labels_corrupted as f64 / 200.0;
        assert!((0.2..0.4).contains(&frac), "corrupted fraction {frac}");
        let wrong = (0..200u32)
            .filter(|&u| w.dataset().registered[u as usize] != Some(homes[u as usize]))
            .count();
        assert_eq!(wrong, d.labels_corrupted, "truth must be untouched; only labels lie");
    }

    #[test]
    fn edge_churn_decays_and_regrows() {
        let gaz = Gazetteer::us_cities();
        let script = ScenarioScript {
            name: "one-storm".into(),
            initial_users: 200,
            ticks: 1,
            arrivals_per_tick: 0,
            events: vec![ScheduledEvent {
                tick: 1,
                event: ScenarioEvent::EdgeChurn { remove_fraction: 0.5, add_per_user: 1.0 },
            }],
        };
        let mut w =
            ScenarioWorld::new(&gaz, GeneratorConfig { seed: 17, ..Default::default() }, script)
                .unwrap();
        let before = w.dataset().num_edges();
        let d = w.tick();
        let removed_frac = d.edges_removed as f64 / before as f64;
        assert!((0.4..0.6).contains(&removed_frac), "removed fraction {removed_frac}");
        assert!(d.edges_added > 100, "regrowth too small: {}", d.edges_added);
        assert_eq!(w.dataset().num_edges(), before - d.edges_removed + d.edges_added);
    }

    #[test]
    fn traffic_spike_is_advisory_only() {
        let gaz = Gazetteer::us_cities();
        let script = ScenarioScript {
            name: "one-spike".into(),
            initial_users: 50,
            ticks: 2,
            arrivals_per_tick: 0,
            events: vec![ScheduledEvent {
                tick: 1,
                event: ScenarioEvent::TrafficSpike { multiplier: 4.0 },
            }],
        };
        let mut w =
            ScenarioWorld::new(&gaz, GeneratorConfig { seed: 19, ..Default::default() }, script)
                .unwrap();
        let users = w.num_users();
        let edges = w.dataset().num_edges();
        let d = w.tick();
        assert_eq!(d.traffic, 4.0);
        assert_eq!(w.num_users(), users);
        assert_eq!(w.dataset().num_edges(), edges);
        assert_eq!(w.tick().traffic, 1.0, "the spike lasts one tick");
    }
}
