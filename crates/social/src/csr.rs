//! A reusable compressed-sparse-row container, generic over its backing
//! storage.
//!
//! Every layer of the system stores "per-row variable-length data" somewhere:
//! the adjacency lists here in `mlp_social`, the per-user count rows and the
//! per-city venue-count support in `mlp-core`'s sampler state, and the frozen
//! posterior arenas a snapshot serialises. [`Csr`] is the one primitive they
//! all share: an offset table into a single flat value slab, so a whole
//! column of the corpus is one contiguous allocation instead of a
//! `Vec<Vec<_>>` (or a `HashMap`) of scattered heaps.
//!
//! Since format v5 the slabs are also what a snapshot *maps*: a [`Slab`] can
//! either own a `Vec<T>` or borrow a `&[T]` view straight out of a mapped
//! artifact (kept alive by an `Arc` token), with an owned tail so deltas can
//! append whole rows on top of a mapped base without copying it. Rows never
//! straddle the head/tail boundary — appends always add whole rows — so
//! `row()` stays a plain slice either way.

use std::any::Any;
use std::sync::Arc;

/// Marker for types whose values are plain fixed-width bytes, safe to
/// reinterpret from a little-endian on-disk slab.
///
/// # Safety
///
/// Implementors must be `#[repr(transparent)]` or `#[repr(C)]` wrappers over
/// (or exactly) a primitive with no padding, no invalid bit patterns, and no
/// drop glue, so that any properly aligned byte sequence of `size_of::<T>()`
/// bytes is a valid `T`.
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
// `#[repr(transparent)]` newtypes over `u32`.
unsafe impl Pod for mlp_gazetteer::CityId {}
unsafe impl Pod for mlp_gazetteer::VenueId {}
unsafe impl Pod for crate::model::UserId {}

/// The immutable "head" of a [`Slab`]: either an owned vec or a borrowed
/// view into memory owned by `keep` (typically a mapped artifact).
enum SlabHead<T> {
    Owned(Vec<T>),
    View {
        ptr: *const T,
        len: usize,
        /// Keeps the backing memory (e.g. an `Mmap`) alive for as long as
        /// any clone of this slab exists.
        #[allow(dead_code)]
        keep: Arc<dyn Any + Send + Sync>,
    },
}

impl<T> SlabHead<T> {
    #[inline]
    fn as_slice(&self) -> &[T] {
        match self {
            SlabHead::Owned(v) => v.as_slice(),
            // Safety: `view()`'s contract — `ptr..ptr+len` is valid, aligned,
            // initialized `T`s owned (and kept immutable) by `keep`.
            SlabHead::View { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T: Clone> Clone for SlabHead<T> {
    fn clone(&self) -> Self {
        match self {
            SlabHead::Owned(v) => SlabHead::Owned(v.clone()),
            SlabHead::View { ptr, len, keep } => {
                SlabHead::View { ptr: *ptr, len: *len, keep: Arc::clone(keep) }
            }
        }
    }
}

/// One flat value column, owned or borrowed.
///
/// Invariants:
/// - an `Owned` head always has an empty tail (appends extend the vec);
/// - a `View` head routes appends to the owned `tail`;
/// - callers append whole rows, so a row never straddles head and tail.
pub struct Slab<T> {
    head: SlabHead<T>,
    tail: Vec<T>,
}

// Safety: a `View` head is a plain shared borrow of memory held alive by the
// `Send + Sync` keep token; the raw pointer adds no thread affinity beyond
// what `&[T]` would have.
unsafe impl<T: Send + Sync> Send for Slab<T> {}
unsafe impl<T: Send + Sync> Sync for Slab<T> {}

impl<T> Slab<T> {
    /// An empty owned slab.
    #[inline]
    pub fn new() -> Self {
        Slab { head: SlabHead::Owned(Vec::new()), tail: Vec::new() }
    }

    /// Wraps an owned vec.
    #[inline]
    pub fn from_vec(values: Vec<T>) -> Self {
        Slab { head: SlabHead::Owned(values), tail: Vec::new() }
    }

    /// Total logical length (head + tail).
    #[inline]
    pub fn len(&self) -> usize {
        self.head_len() + self.tail.len()
    }

    /// Whether the slab holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the head borrows mapped memory instead of owning it.
    #[inline]
    pub fn is_zero_copy(&self) -> bool {
        matches!(self.head, SlabHead::View { .. })
    }

    #[inline]
    fn head_len(&self) -> usize {
        match &self.head {
            SlabHead::Owned(v) => v.len(),
            SlabHead::View { len, .. } => *len,
        }
    }

    /// The head and tail segments; the logical contents is their
    /// concatenation (tail is empty for fully owned slabs).
    #[inline]
    pub fn segments(&self) -> (&[T], &[T]) {
        (self.head.as_slice(), self.tail.as_slice())
    }

    /// Element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        let head = self.head.as_slice();
        if i < head.len() {
            head[i]
        } else {
            self.tail[i - head.len()]
        }
    }

    /// Slice `start..end`, which must not straddle the head/tail boundary
    /// (structurally guaranteed for row ranges, since appends add whole
    /// rows).
    #[inline]
    pub fn slice(&self, start: usize, end: usize) -> &[T] {
        let head_len = self.head_len();
        if start >= head_len {
            &self.tail[start - head_len..end - head_len]
        } else if end <= head_len {
            &self.head.as_slice()[start..end]
        } else {
            panic!("slab range {start}..{end} straddles the head/tail boundary at {head_len}")
        }
    }

    /// Iterates the logical contents.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.head.as_slice().iter().chain(self.tail.iter())
    }

    /// Appends one value (to the vec when owned, to the tail when mapped).
    #[inline]
    pub fn push(&mut self, value: T) {
        match &mut self.head {
            SlabHead::Owned(v) if self.tail.is_empty() => v.push(value),
            _ => self.tail.push(value),
        }
    }

    /// Appends a run of values.
    pub fn extend_from_slice(&mut self, values: &[T])
    where
        T: Clone,
    {
        match &mut self.head {
            SlabHead::Owned(v) if self.tail.is_empty() => v.extend_from_slice(values),
            _ => self.tail.extend_from_slice(values),
        }
    }

    /// The whole slab as one contiguous slice. Panics when the slab has a
    /// mapped head *and* an appended tail (call [`Slab::make_owned`] or use
    /// [`Slab::segments`] there instead).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.tail.is_empty() {
            self.head.as_slice()
        } else if self.head_len() == 0 {
            self.tail.as_slice()
        } else {
            panic!("slab is not contiguous: mapped head with an appended tail")
        }
    }

    /// Copies a mapped head (plus tail) into a single owned vec; no-op when
    /// already owned with no tail.
    pub fn make_owned(&mut self)
    where
        T: Clone,
    {
        if matches!(self.head, SlabHead::Owned(_)) && self.tail.is_empty() {
            return;
        }
        let mut v = Vec::with_capacity(self.len());
        v.extend_from_slice(self.head.as_slice());
        v.append(&mut self.tail);
        self.head = SlabHead::Owned(v);
    }

    /// The whole slab as one mutable slice, materializing first if mapped.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T]
    where
        T: Clone,
    {
        self.make_owned();
        match &mut self.head {
            SlabHead::Owned(v) => v.as_mut_slice(),
            SlabHead::View { .. } => unreachable!("make_owned left a view head"),
        }
    }

    /// Consumes the slab into an owned vec.
    pub fn into_vec(mut self) -> Vec<T>
    where
        T: Clone,
    {
        self.make_owned();
        match self.head {
            SlabHead::Owned(v) => v,
            SlabHead::View { .. } => unreachable!("make_owned left a view head"),
        }
    }
}

impl<T: Pod> Slab<T> {
    /// Borrows a slab view over `bytes`, which must live inside memory owned
    /// by `keep` (e.g. a mapped artifact).
    ///
    /// Fails (without UB) when `bytes` is misaligned for `T` or not a whole
    /// number of elements. Only meaningful on little-endian targets, where
    /// the on-disk and in-memory representations coincide; callers gate on
    /// that before reinterpreting.
    ///
    /// # Safety
    ///
    /// `bytes` must point into an allocation owned by `keep`, remain valid
    /// and unmodified for as long as `keep` (or any clone of this slab) is
    /// alive.
    pub unsafe fn view(
        bytes: &[u8],
        keep: Arc<dyn Any + Send + Sync>,
    ) -> Result<Self, &'static str> {
        let size = std::mem::size_of::<T>();
        if size == 0 {
            return Err("zero-sized slab element");
        }
        if !bytes.len().is_multiple_of(size) {
            return Err("slab byte length is not a whole number of elements");
        }
        if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err("slab is misaligned for its element type");
        }
        Ok(Slab {
            head: SlabHead::View { ptr: bytes.as_ptr() as *const T, len: bytes.len() / size, keep },
            tail: Vec::new(),
        })
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T: Clone> Clone for Slab<T> {
    fn clone(&self) -> Self {
        Slab { head: self.head.clone(), tail: self.tail.clone() }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len())
            .field("zero_copy", &self.is_zero_copy())
            .field("tail_len", &self.tail.len())
            .finish()
    }
}

impl<T: PartialEq> PartialEq for Slab<T> {
    /// Logical (content) equality: a mapped slab equals its owned copy.
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq> Eq for Slab<T> {}

impl<T: Clone> From<Vec<T>> for Slab<T> {
    fn from(values: Vec<T>) -> Self {
        Slab::from_vec(values)
    }
}

impl<'a, T> IntoIterator for &'a Slab<T> {
    type Item = &'a T;
    type IntoIter = std::iter::Chain<std::slice::Iter<'a, T>, std::slice::Iter<'a, T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.head.as_slice().iter().chain(self.tail.iter())
    }
}

/// An offset table plus one flat value slab; row `i` is
/// `values[offsets[i]..offsets[i + 1]]`.
///
/// Both columns are [`Slab`]s, so a `Csr` can sit on owned vecs (the sampler
/// state, trained arenas) or borrow a mapped artifact zero-copy (a v5
/// snapshot), with the same row/slot logic either way.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    offsets: Slab<u32>,
    values: Slab<T>,
}

impl<T: Eq> Eq for Csr<T> {}

impl Csr<u32> {
    /// Builds a CSR whose row `i` holds the *item indices* assigned to
    /// bucket `i`, in item order (a stable counting sort — two passes over
    /// the assignment stream, no comparisons, no hashing).
    pub fn from_buckets(num_rows: usize, buckets: impl Iterator<Item = usize> + Clone) -> Csr<u32> {
        let mut offsets = vec![0u32; num_rows + 1];
        for b in buckets.clone() {
            offsets[b + 1] += 1;
        }
        for i in 1..=num_rows {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut values = vec![0u32; offsets[num_rows] as usize];
        for (idx, b) in buckets.enumerate() {
            values[cursor[b] as usize] = idx as u32;
            cursor[b] += 1;
        }
        Csr::from_parts(offsets, values)
    }
}

impl<T> Csr<T> {
    /// An empty CSR (zero rows, zero values).
    pub fn empty() -> Self {
        Csr { offsets: Slab::from_vec(vec![0u32]), values: Slab::new() }
    }

    /// Builds a CSR from an owned offset table and value slab. The offset
    /// table must have `num_rows + 1` monotone entries spanning `values`
    /// (debug-asserted; serialized inputs are validated by their decoders
    /// before reaching here).
    pub fn from_parts(offsets: Vec<u32>, values: Vec<T>) -> Self {
        debug_assert!(!offsets.is_empty(), "offset table needs a leading 0");
        debug_assert_eq!(*offsets.last().unwrap() as usize, values.len());
        Csr { offsets: Slab::from_vec(offsets), values: Slab::from_vec(values) }
    }

    /// Builds a CSR from pre-validated slabs (owned or mapped). The caller
    /// must have checked the offset table is monotone and spans `values` —
    /// snapshot decoding does this before constructing arenas.
    pub fn from_slabs(offsets: Slab<u32>, values: Slab<T>) -> Self {
        debug_assert!(!offsets.is_empty(), "offset table needs a leading 0");
        debug_assert_eq!(offsets.get(offsets.len() - 1) as usize, values.len());
        Csr { offsets, values }
    }

    /// Builds a CSR with the given row lengths, every value defaulted —
    /// the shape of a zeroed count arena.
    pub fn with_row_lens(lens: impl Iterator<Item = usize>) -> Self
    where
        T: Default + Clone,
    {
        let mut offsets = vec![0u32];
        let mut total = 0u32;
        for len in lens {
            total += len as u32;
            offsets.push(total);
        }
        let values = vec![T::default(); total as usize];
        Csr { offsets: Slab::from_vec(offsets), values: Slab::from_vec(values) }
    }

    /// Builds a CSR by concatenating owned rows.
    pub fn from_rows(rows: impl Iterator<Item = Vec<T>>) -> Self {
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        for row in rows {
            values.extend(row);
            offsets.push(values.len() as u32);
        }
        Csr { offsets: Slab::from_vec(offsets), values: Slab::from_vec(values) }
    }

    /// Appends one row (to the owned tail when the base is mapped).
    pub fn push_row(&mut self, row: &[T])
    where
        T: Clone,
    {
        self.values.extend_from_slice(row);
        self.offsets.push(self.values.len() as u32);
    }

    /// Appends every row of `other`, rebasing its offsets onto this CSR's
    /// value slab. The caller checks the combined sizes fit `u32`.
    pub fn append(&mut self, other: &Csr<T>)
    where
        T: Clone,
    {
        let base = self.values.len() as u32;
        let (head, tail) = other.values.segments();
        self.values.extend_from_slice(head);
        self.values.extend_from_slice(tail);
        for o in other.offsets.iter().skip(1) {
            self.offsets.push(base + o);
        }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored values across all rows.
    #[inline]
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Whether the value slab borrows mapped memory.
    #[inline]
    pub fn is_zero_copy(&self) -> bool {
        self.values.is_zero_copy()
    }

    /// The flat-slab index range of row `i`.
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets.get(i) as usize..self.offsets.get(i + 1) as usize
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        let r = self.row_range(i);
        self.values.slice(r.start, r.end)
    }

    /// Row `i` as a mutable slice (materializes a mapped slab first).
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T]
    where
        T: Clone,
    {
        let r = self.row_range(i);
        &mut self.values.as_mut_slice()[r]
    }

    /// Index into the flat slab of element `pos` of row `i` — the stable
    /// "slot" identity used for flat delta merges.
    #[inline]
    pub fn slot(&self, i: usize, pos: usize) -> usize {
        let r = self.row_range(i);
        debug_assert!(pos < r.end - r.start);
        r.start + pos
    }

    /// The whole flat value slab (contiguous; panics for a mapped slab with
    /// an appended tail — use [`Csr::values_segments`] there).
    #[inline]
    pub fn values(&self) -> &[T] {
        self.values.as_slice()
    }

    /// The value slab's head and tail segments.
    #[inline]
    pub fn values_segments(&self) -> (&[T], &[T]) {
        self.values.segments()
    }

    /// The whole flat value slab, mutable (materializes a mapped slab).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T]
    where
        T: Clone,
    {
        self.values.as_mut_slice()
    }

    /// The offset table (`num_rows + 1` entries, contiguous; panics for a
    /// mapped table with an appended tail — use [`Csr::offsets_iter`]).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        self.offsets.as_slice()
    }

    /// Iterates the offset table without requiring contiguity.
    #[inline]
    pub fn offsets_iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.offsets.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_buckets_is_stable() {
        let csr = Csr::from_buckets(3, [2usize, 0, 2, 1, 0].into_iter());
        assert_eq!(csr.row(0), &[1, 4]);
        assert_eq!(csr.row(1), &[3]);
        assert_eq!(csr.row(2), &[0, 2]);
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.num_values(), 5);
    }

    #[test]
    fn with_row_lens_zeroes() {
        let csr: Csr<u32> = Csr::with_row_lens([2usize, 0, 3].into_iter());
        assert_eq!(csr.row(0), &[0, 0]);
        assert!(csr.row(1).is_empty());
        assert_eq!(csr.row(2), &[0, 0, 0]);
        assert_eq!(csr.slot(2, 1), 3);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1u32, 2], vec![], vec![7]];
        let csr = Csr::from_rows(rows.clone().into_iter());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(csr.row(i), row.as_slice());
        }
    }

    /// Little-endian bytes for a `u32` run, 64-byte aligned so views are
    /// valid regardless of the test allocator's whims.
    fn aligned_le_bytes(values: &[u32]) -> Arc<Vec<u64>> {
        let mut packed = Vec::with_capacity(values.len().div_ceil(2));
        for pair in values.chunks(2) {
            let lo = pair[0] as u64;
            let hi = if pair.len() > 1 { (pair[1] as u64) << 32 } else { 0 };
            packed.push(lo | hi);
        }
        Arc::new(packed)
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn mapped_view_reads_like_owned() {
        let data = aligned_le_bytes(&[0, 2, 2, 5, 10, 20, 30, 40, 50]);
        let bytes = unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, 9 * 4) };
        let keep: Arc<dyn Any + Send + Sync> = data.clone();
        let offsets: Slab<u32> =
            unsafe { Slab::view(&bytes[..16], keep.clone()) }.expect("aligned offsets");
        let values: Slab<u32> =
            unsafe { Slab::view(&bytes[16..36], keep.clone()) }.expect("aligned values");
        let csr = Csr::from_slabs(offsets, values);
        assert!(csr.is_zero_copy());
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.row(0), &[10, 20]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[30, 40, 50]);

        let owned = Csr::from_rows(vec![vec![10u32, 20], vec![], vec![30, 40, 50]].into_iter());
        assert_eq!(csr, owned, "mapped and owned CSR compare logically equal");
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn mapped_view_appends_rows_in_the_tail() {
        let data = aligned_le_bytes(&[0, 2, 7, 8]);
        let bytes = unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, 4 * 4) };
        let keep: Arc<dyn Any + Send + Sync> = data.clone();
        let offsets: Slab<u32> = unsafe { Slab::view(&bytes[..8], keep.clone()) }.unwrap();
        let values: Slab<u32> = unsafe { Slab::view(&bytes[8..16], keep.clone()) }.unwrap();
        let mut csr = Csr::from_slabs(offsets, values);
        assert_eq!(csr.row(0), &[7, 8]);

        csr.push_row(&[9, 10, 11]);
        csr.push_row(&[]);
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.row(0), &[7, 8], "mapped base row untouched");
        assert_eq!(csr.row(1), &[9, 10, 11], "appended row lives in the tail");
        assert_eq!(csr.row(2), &[] as &[u32]);
        assert!(csr.is_zero_copy(), "base stays mapped after appends");
        assert_eq!(csr.values_segments().0, &[7, 8]);
        assert_eq!(csr.values_segments().1, &[9, 10, 11]);
        assert_eq!(csr.offsets_iter().collect::<Vec<_>>(), vec![0, 2, 5, 5]);
    }

    #[test]
    fn view_rejects_misaligned_and_ragged_bytes() {
        let data = aligned_le_bytes(&[1, 2, 3, 4]);
        let bytes = unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, 4 * 4) };
        let keep: Arc<dyn Any + Send + Sync> = data.clone();
        let ragged = unsafe { Slab::<u32>::view(&bytes[..7], keep.clone()) };
        assert!(ragged.is_err(), "7 bytes is not a whole number of u32s");
        let misaligned = unsafe { Slab::<u32>::view(&bytes[1..13], keep.clone()) };
        assert!(misaligned.is_err(), "offset 1 is misaligned for u32");
    }

    #[test]
    fn mutating_a_mapped_slab_materializes_it() {
        let data = aligned_le_bytes(&[5, 6]);
        let bytes = unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, 2 * 4) };
        let keep: Arc<dyn Any + Send + Sync> = data.clone();
        let mut slab: Slab<u32> = unsafe { Slab::view(bytes, keep) }.unwrap();
        assert!(slab.is_zero_copy());
        slab.as_mut_slice()[0] = 99;
        assert!(!slab.is_zero_copy(), "writes force a private owned copy");
        assert_eq!(slab.get(0), 99);
        assert_eq!(data[0] as u32, 5, "the mapped bytes are untouched");
    }
}
