//! A reusable compressed-sparse-row container.
//!
//! Every layer of the system stores "per-row variable-length data" somewhere:
//! the adjacency lists here in `mlp_social`, the per-user count rows and the
//! per-city venue-count support in `mlp-core`'s sampler state, and the frozen
//! posterior arenas a snapshot serialises. [`Csr`] is the one primitive they
//! all share: an offset table into a single flat value slab, so a whole
//! column of the corpus is one contiguous allocation instead of a
//! `Vec<Vec<_>>` (or a `HashMap`) of scattered heaps.

/// An offset table plus one flat value slab; row `i` is
/// `values[offsets[i]..offsets[i + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<T> {
    offsets: Vec<u32>,
    values: Vec<T>,
}

impl Csr<u32> {
    /// Builds a CSR whose row `i` holds the *item indices* assigned to
    /// bucket `i`, in item order (a stable counting sort — two passes over
    /// the assignment stream, no comparisons, no hashing).
    pub fn from_buckets(num_rows: usize, buckets: impl Iterator<Item = usize> + Clone) -> Csr<u32> {
        let mut offsets = vec![0u32; num_rows + 1];
        for b in buckets.clone() {
            offsets[b + 1] += 1;
        }
        for i in 1..=num_rows {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut values = vec![0u32; offsets[num_rows] as usize];
        for (idx, b) in buckets.enumerate() {
            values[cursor[b] as usize] = idx as u32;
            cursor[b] += 1;
        }
        Csr { offsets, values }
    }
}

impl<T> Csr<T> {
    /// Builds a CSR with the given row lengths, every value defaulted —
    /// the shape of a zeroed count arena.
    pub fn with_row_lens(lens: impl Iterator<Item = usize>) -> Self
    where
        T: Default + Clone,
    {
        let mut offsets = vec![0u32];
        let mut total = 0u32;
        for len in lens {
            total += len as u32;
            offsets.push(total);
        }
        Csr { offsets, values: vec![T::default(); total as usize] }
    }

    /// Builds a CSR by concatenating owned rows.
    pub fn from_rows(rows: impl Iterator<Item = Vec<T>>) -> Self {
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        for row in rows {
            values.extend(row);
            offsets.push(values.len() as u32);
        }
        Csr { offsets, values }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored values across all rows.
    #[inline]
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Index into the flat slab of element `pos` of row `i` — the stable
    /// "slot" identity used for flat delta merges.
    #[inline]
    pub fn slot(&self, i: usize, pos: usize) -> usize {
        debug_assert!(pos < (self.offsets[i + 1] - self.offsets[i]) as usize);
        self.offsets[i] as usize + pos
    }

    /// The whole flat value slab.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// The whole flat value slab, mutable.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// The offset table (`num_rows + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_buckets_is_stable() {
        let csr = Csr::from_buckets(3, [2usize, 0, 2, 1, 0].into_iter());
        assert_eq!(csr.row(0), &[1, 4]);
        assert_eq!(csr.row(1), &[3]);
        assert_eq!(csr.row(2), &[0, 2]);
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.num_values(), 5);
    }

    #[test]
    fn with_row_lens_zeroes() {
        let csr: Csr<u32> = Csr::with_row_lens([2usize, 0, 3].into_iter());
        assert_eq!(csr.row(0), &[0, 0]);
        assert!(csr.row(1).is_empty());
        assert_eq!(csr.row(2), &[0, 0, 0]);
        assert_eq!(csr.slot(2, 1), 3);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1u32, 2], vec![], vec![7]];
        let csr = Csr::from_rows(rows.clone().into_iter());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(csr.row(i), row.as_slice());
        }
    }
}
