//! Out-of-core corpora: streaming synthesis and the chunked on-disk format.
//!
//! The in-memory [`crate::generator::Generator`] materialises the whole
//! dataset before returning it — fine at bench scale (thousands of users),
//! hopeless at the paper's Twitter scale (the ROADMAP's million-user north
//! star: ~15M edges and ~29M mentions). This module provides the
//! out-of-core path:
//!
//! * [`StreamingGenerator`] — the *same generative story* (Sec. 4.4 run
//!   forward) reorganised so every user draws from its own deterministic
//!   RNG stream (`SplitMix64::derive(seed, phase | user)`), making the
//!   output a pure function of `(gazetteer, config)` that is **invariant
//!   to chunking**: generating users `[a, b)` yields bit-identical data
//!   whether the corpus is cut into chunks of 50 000 or produced in one
//!   shot. Only O(chunk) state is live at a time; the resident global
//!   state is the city→users index (O(users) ids, not edges).
//!
//!   The per-user streams make this generator a *different* (equally
//!   valid) draw from the generative process than [`crate::Generator`],
//!   which threads one RNG through all users per phase — the two are not
//!   byte-compatible, and the streaming one is the scalable default.
//!
//! * A chunk codec (`"MLPC"`): each chunk holds a contiguous user range
//!   as CSR slabs — per-user edge/mention counts plus flat value arrays —
//!   together with registered labels and exact ground truth, so
//!   evaluation at scale needs no side lookup.
//!
//! * [`CorpusReader`] — iterator-style loader yielding one chunk at a
//!   time. The manifest is written **last** via [`crate::write_atomic`],
//!   so a crash mid-generation leaves a directory without a manifest —
//!   unreadable — never a corpus that silently decodes short.

use crate::atomic::write_atomic;
use crate::codec::DecodeError;
use crate::generator::{sample_profile, GeneratedData, Generator, GeneratorConfig};
use crate::model::{Dataset, FollowEdge, TweetMention, UserId};
use crate::truth::{EdgeTruth, GroundTruth, MentionTruth};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_sampling::{sample_poisson, AliasTable, Pcg64, SplitMix64};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Chunk file magic: `"MLPC"` little-endian.
const CHUNK_MAGIC: u32 = 0x4D4C_5043;
const CHUNK_VERSION: u16 = 1;
/// Manifest format version.
const MANIFEST_VERSION: u32 = 1;

// Per-user RNG stream phases: the high nibble tags the phase, the low 32
// bits carry the user id, so every (phase, user) pair derives a distinct,
// chunk-independent stream from the master seed.
const PHASE_PROFILE: u64 = 0x1 << 60;
const PHASE_MENTION: u64 = 0x2 << 60;
const PHASE_EDGE: u64 = 0x3 << 60;
const PHASE_REGISTER: u64 = 0x4 << 60;
/// The celebrity pool is global, not per-user: one derived stream.
const PHASE_CELEBRITY: u64 = 0x5 << 60;

/// Chunked, deterministic corpus synthesis whose full output never lives
/// in RAM.
pub struct StreamingGenerator<'g> {
    inner: Generator<'g>,
    chunk_size: usize,
    pop_alias: AliasTable,
    popular_ids: Vec<VenueId>,
    popular_alias: AliasTable,
    celebs: Vec<UserId>,
    celeb_alias: AliasTable,
    /// city → users whose true profile contains it (built once by
    /// replaying every user's profile stream — O(users) ids resident).
    users_at: Vec<Vec<UserId>>,
    city_user_counts: Vec<f64>,
    psi_cache: Vec<Option<(Vec<VenueId>, AliasTable)>>,
    city_alias: Vec<Option<AliasTable>>,
}

impl<'g> StreamingGenerator<'g> {
    /// Creates the generator and builds the global indices (population
    /// alias, venue popularity, celebrity pool, city→users index).
    ///
    /// # Panics
    /// Panics on a degenerate config (same contract as
    /// [`Generator::new`]) or `chunk_size == 0`.
    pub fn new(gaz: &'g Gazetteer, config: GeneratorConfig, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let inner = Generator::new(gaz, config);
        let pop_alias = AliasTable::new(&gaz.population_weights()).expect("positive populations");
        let (popular_ids, popular_alias) = inner.global_venue_popularity();

        let n = inner.config.num_users;
        let mut rng = Pcg64::new(SplitMix64::derive(inner.config.seed, PHASE_CELEBRITY));
        let num_celebs = ((n as f64 * inner.config.celebrity_fraction).ceil() as usize).max(1);
        let celebs: Vec<UserId> =
            (0..num_celebs).map(|_| UserId(rng.next_bounded(n) as u32)).collect();
        let celeb_weights: Vec<f64> = (0..num_celebs).map(|r| 1.0 / (1.0 + r as f64)).collect();
        let celeb_alias = AliasTable::new(&celeb_weights).expect("non-empty celebrity pool");

        let mut this = Self {
            inner,
            chunk_size,
            pop_alias,
            popular_ids,
            popular_alias,
            celebs,
            celeb_alias,
            users_at: vec![Vec::new(); gaz.num_cities()],
            city_user_counts: Vec::new(),
            psi_cache: vec![None; gaz.num_cities()],
            city_alias: vec![None; gaz.num_cities()],
        };
        // One cheap pass over all users: replay each profile stream to
        // build the city→users index the edge model samples friends from.
        for u in 0..n as u32 {
            for (c, _) in this.user_profile(u) {
                this.users_at[c.index()].push(UserId(u));
            }
        }
        this.city_user_counts = this.users_at.iter().map(|u| u.len() as f64).collect();
        this
    }

    /// Total users in the corpus.
    pub fn num_users(&self) -> usize {
        self.inner.config.num_users
    }

    /// Number of chunks the corpus is cut into.
    pub fn num_chunks(&self) -> usize {
        self.num_users().div_ceil(self.chunk_size)
    }

    fn user_rng(&self, phase: u64, u: u32) -> Pcg64 {
        Pcg64::new(SplitMix64::derive(self.inner.config.seed, phase | u as u64))
    }

    /// Replays user `u`'s profile stream: step 1 of the generative story.
    fn user_profile(&self, u: u32) -> Vec<(CityId, f64)> {
        let mut rng = self.user_rng(PHASE_PROFILE, u);
        let cfg = &self.inner.config;
        let home = CityId(self.pop_alias.sample(&mut rng) as u32);
        let mut profile = vec![(home, 1.0)];
        if rng.bernoulli(cfg.multi_location_fraction) {
            if let Some(second) = self.inner.pick_second_location(&mut rng, home, &self.pop_alias) {
                profile = vec![(home, 0.65), (second, 0.35)];
                if rng.bernoulli(cfg.third_location_fraction) {
                    if let Some(third) =
                        self.inner.pick_distinct_city(&mut rng, &self.pop_alias, &[home, second])
                    {
                        profile = vec![(home, 0.60), (second, 0.28), (third, 0.12)];
                    }
                }
            }
        }
        profile
    }

    /// Generates the chunk at `index` (users
    /// `[index·chunk, min((index+1)·chunk, n))`).
    ///
    /// Takes `&mut self` only for the lazily-built ψ and friend-city
    /// alias caches; the output is independent of call order.
    pub fn chunk(&mut self, index: usize) -> CorpusChunk {
        let n = self.num_users();
        let start = index * self.chunk_size;
        assert!(start < n, "chunk index {index} out of range");
        let end = (start + self.chunk_size).min(n);

        let mut chunk = CorpusChunk {
            start_user: start as u32,
            registered: Vec::with_capacity(end - start),
            profiles: Vec::with_capacity(end - start),
            edges: Vec::new(),
            edge_truth: Vec::new(),
            mentions: Vec::new(),
            mention_truth: Vec::new(),
        };
        for u in start as u32..end as u32 {
            let profile = self.user_profile(u);
            chunk.registered.push(self.user_registration(u, &profile));
            self.user_mentions(u, &profile, &mut chunk);
            self.user_edges(u, &profile, &mut chunk);
            chunk.profiles.push(profile);
        }
        chunk
    }

    /// Step 2 for one user: tweeting relationships.
    fn user_mentions(&mut self, u: u32, profile: &[(CityId, f64)], out: &mut CorpusChunk) {
        let mut rng = self.user_rng(PHASE_MENTION, u);
        let cfg = &self.inner.config;
        let count = sample_poisson(&mut rng, cfg.mean_mentions);
        for _ in 0..count {
            if rng.bernoulli(cfg.noisy_mention_fraction) {
                let venue = self.popular_ids[self.popular_alias.sample(&mut rng)];
                out.mentions.push(TweetMention { user: UserId(u), venue });
                out.mention_truth.push(MentionTruth::Noisy);
            } else {
                let z = sample_profile(&mut rng, profile);
                let (ids, table) = self.inner.psi(&mut self.psi_cache, z);
                let venue = ids[table.sample(&mut rng)];
                out.mentions.push(TweetMention { user: UserId(u), venue });
                out.mention_truth.push(MentionTruth::Based { z });
            }
        }
    }

    /// Step 3 for one user: following relationships. Dedup is local to
    /// the follower, which is exactly the global-set semantics of the
    /// in-memory generator (the pair key always includes the follower).
    fn user_edges(&mut self, u: u32, profile: &[(CityId, f64)], out: &mut CorpusChunk) {
        let mut rng = self.user_rng(PHASE_EDGE, u);
        let cfg = &self.inner.config;
        let follower = UserId(u);
        let count = sample_poisson(&mut rng, cfg.mean_friends);
        let mut seen: HashSet<UserId> = HashSet::with_capacity(count as usize);
        for _ in 0..count {
            let (edge, truth) = if rng.bernoulli(cfg.noisy_edge_fraction) {
                self.inner.noisy_edge(&mut rng, follower, &self.celebs, &self.celeb_alias)
            } else {
                match self.inner.based_edge(
                    &mut rng,
                    follower,
                    profile,
                    &self.users_at,
                    &self.city_user_counts,
                    &mut self.city_alias,
                ) {
                    Some(pair) => pair,
                    None => {
                        self.inner.noisy_edge(&mut rng, follower, &self.celebs, &self.celeb_alias)
                    }
                }
            };
            if seen.insert(edge.friend) {
                out.edges.push(edge);
                out.edge_truth.push(truth);
            }
        }
    }

    /// Step 4 for one user: the registered home location, if exposed.
    fn user_registration(&self, u: u32, profile: &[(CityId, f64)]) -> Option<CityId> {
        let mut rng = self.user_rng(PHASE_REGISTER, u);
        let cfg = &self.inner.config;
        let n_cities = self.inner.gaz.num_cities();
        if !rng.bernoulli(cfg.registered_fraction) {
            return None;
        }
        if cfg.label_noise_fraction > 0.0 && rng.bernoulli(cfg.label_noise_fraction) {
            loop {
                let c = CityId(rng.next_bounded(n_cities) as u32);
                if c != profile[0].0 || n_cities == 1 {
                    return Some(c);
                }
            }
        }
        Some(profile[0].0)
    }

    /// Generates the whole corpus in memory by concatenating every chunk
    /// — the small-scale convenience path (tests, the CLI below ~100k).
    pub fn generate(&mut self) -> GeneratedData {
        let chunks: Vec<CorpusChunk> = (0..self.num_chunks()).map(|i| self.chunk(i)).collect();
        assemble(self.num_users() as u32, chunks.into_iter().map(Ok))
            .expect("in-memory chunks cannot fail")
    }

    /// Streams the corpus to `dir`: one `chunk-NNNNN.mlpc` per chunk,
    /// each written atomically, with `manifest.json` written **last** —
    /// the commit point. A directory without a manifest is not a corpus.
    pub fn write_corpus(&mut self, dir: &Path) -> std::io::Result<CorpusManifest> {
        std::fs::create_dir_all(dir)?;
        // Invalidate any previous corpus first: chunks about to be
        // rewritten must never be readable through a stale manifest.
        let manifest_path = dir.join("manifest.json");
        if manifest_path.exists() {
            std::fs::remove_file(&manifest_path)?;
        }

        let mut total_edges = 0u64;
        let mut total_mentions = 0u64;
        for i in 0..self.num_chunks() {
            let chunk = self.chunk(i);
            total_edges += chunk.edges.len() as u64;
            total_mentions += chunk.mentions.len() as u64;
            write_atomic(&dir.join(chunk_file_name(i)), chunk.encode().as_slice())?;
        }

        let manifest = CorpusManifest {
            version: MANIFEST_VERSION,
            num_users: self.num_users() as u32,
            chunk_size: self.chunk_size as u32,
            num_chunks: self.num_chunks() as u32,
            seed: self.inner.config.seed,
            num_cities: self.inner.gaz.num_cities() as u32,
            num_venues: self.inner.gaz.num_venues() as u32,
            total_edges,
            total_mentions,
        };
        let json = serde_json::to_string_pretty(&manifest).expect("manifest serialises");
        write_atomic(&manifest_path, json.as_bytes())?;
        Ok(manifest)
    }
}

/// File name of chunk `i` inside a corpus directory.
pub fn chunk_file_name(i: usize) -> String {
    format!("chunk-{i:05}.mlpc")
}

/// One contiguous user partition of a corpus: the observable data plus
/// exact ground truth for users `[start_user, start_user + len)`. Edges
/// are owned by (and grouped by) their follower, mentions by their user;
/// friend ids refer to the *global* user space.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusChunk {
    /// First user id in this chunk.
    pub start_user: u32,
    /// Registered labels, one per chunk user.
    pub registered: Vec<Option<CityId>>,
    /// True multi-location profiles, one per chunk user.
    pub profiles: Vec<Vec<(CityId, f64)>>,
    /// Edges whose follower lives in this chunk, grouped by follower.
    pub edges: Vec<FollowEdge>,
    /// Truth aligned with `edges`.
    pub edge_truth: Vec<EdgeTruth>,
    /// Mentions whose user lives in this chunk, grouped by user.
    pub mentions: Vec<TweetMention>,
    /// Truth aligned with `mentions`.
    pub mention_truth: Vec<MentionTruth>,
}

impl CorpusChunk {
    /// Users in this chunk.
    pub fn num_users(&self) -> usize {
        self.registered.len()
    }

    /// The global user-id range this chunk covers.
    pub fn user_range(&self) -> std::ops::Range<u32> {
        self.start_user..self.start_user + self.registered.len() as u32
    }

    /// Serialises the chunk into the `"MLPC"` binary layout: header,
    /// registered labels, truth profiles, then edges and mentions as CSR
    /// slabs (per-user row lengths + flat value arrays).
    pub fn encode(&self) -> Bytes {
        let n = self.num_users();
        let mut buf =
            BytesMut::with_capacity(16 + n * 14 + self.edges.len() * 13 + self.mentions.len() * 9);
        buf.put_u32_le(CHUNK_MAGIC);
        buf.put_u16_le(CHUNK_VERSION);
        buf.put_u32_le(self.start_user);
        buf.put_u32_le(n as u32);

        for r in &self.registered {
            buf.put_u32_le(r.map_or(u32::MAX, |c| c.0));
        }
        for p in &self.profiles {
            buf.put_u16_le(p.len() as u16);
            for &(c, w) in p {
                buf.put_u32_le(c.0);
                buf.put_f64_le(w);
            }
        }

        // Edges: CSR row lengths (per chunk user), then the flat slab.
        buf.put_u64_le(self.edges.len() as u64);
        for len in row_lengths(n, self.start_user, self.edges.iter().map(|e| e.follower.0)) {
            buf.put_u32_le(len);
        }
        for (e, t) in self.edges.iter().zip(&self.edge_truth) {
            buf.put_u32_le(e.friend.0);
            match t {
                EdgeTruth::Noisy => buf.put_u8(0),
                EdgeTruth::Based { x, y } => {
                    buf.put_u8(1);
                    buf.put_u32_le(x.0);
                    buf.put_u32_le(y.0);
                }
            }
        }

        // Mentions: same CSR layout.
        buf.put_u64_le(self.mentions.len() as u64);
        for len in row_lengths(n, self.start_user, self.mentions.iter().map(|m| m.user.0)) {
            buf.put_u32_le(len);
        }
        for (m, t) in self.mentions.iter().zip(&self.mention_truth) {
            buf.put_u32_le(m.venue.0);
            match t {
                MentionTruth::Noisy => buf.put_u8(0),
                MentionTruth::Based { z } => {
                    buf.put_u8(1);
                    buf.put_u32_le(z.0);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a chunk produced by [`Self::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Self, DecodeError> {
        fn need(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        }

        need(&buf, 14)?;
        let magic = buf.get_u32_le();
        if magic != CHUNK_MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = buf.get_u16_le();
        if version != CHUNK_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let start_user = buf.get_u32_le();
        let n = buf.get_u32_le() as usize;

        need(&buf, n * 4)?;
        let registered: Vec<Option<CityId>> = (0..n)
            .map(|_| {
                let v = buf.get_u32_le();
                (v != u32::MAX).then_some(CityId(v))
            })
            .collect();

        let mut profiles = Vec::with_capacity(n);
        for _ in 0..n {
            need(&buf, 2)?;
            let len = buf.get_u16_le() as usize;
            need(&buf, len * 12)?;
            profiles.push(
                (0..len).map(|_| (CityId(buf.get_u32_le()), buf.get_f64_le())).collect::<Vec<_>>(),
            );
        }

        need(&buf, 8)?;
        let num_edges = buf.get_u64_le() as usize;
        need(&buf, n * 4)?;
        let edge_lens: Vec<u32> = (0..n).map(|_| buf.get_u32_le()).collect();
        if edge_lens.iter().map(|&l| l as u64).sum::<u64>() != num_edges as u64 {
            return Err(DecodeError::Truncated);
        }
        let mut edges = Vec::with_capacity(num_edges);
        let mut edge_truth = Vec::with_capacity(num_edges);
        for (row, &len) in edge_lens.iter().enumerate() {
            let follower = UserId(start_user + row as u32);
            for _ in 0..len {
                need(&buf, 5)?;
                edges.push(FollowEdge { follower, friend: UserId(buf.get_u32_le()) });
                match buf.get_u8() {
                    0 => edge_truth.push(EdgeTruth::Noisy),
                    1 => {
                        need(&buf, 8)?;
                        edge_truth.push(EdgeTruth::Based {
                            x: CityId(buf.get_u32_le()),
                            y: CityId(buf.get_u32_le()),
                        });
                    }
                    t => return Err(DecodeError::BadTag(t)),
                }
            }
        }

        need(&buf, 8)?;
        let num_mentions = buf.get_u64_le() as usize;
        need(&buf, n * 4)?;
        let mention_lens: Vec<u32> = (0..n).map(|_| buf.get_u32_le()).collect();
        if mention_lens.iter().map(|&l| l as u64).sum::<u64>() != num_mentions as u64 {
            return Err(DecodeError::Truncated);
        }
        let mut mentions = Vec::with_capacity(num_mentions);
        let mut mention_truth = Vec::with_capacity(num_mentions);
        for (row, &len) in mention_lens.iter().enumerate() {
            let user = UserId(start_user + row as u32);
            for _ in 0..len {
                need(&buf, 5)?;
                mentions.push(TweetMention { user, venue: VenueId(buf.get_u32_le()) });
                match buf.get_u8() {
                    0 => mention_truth.push(MentionTruth::Noisy),
                    1 => {
                        need(&buf, 4)?;
                        mention_truth.push(MentionTruth::Based { z: CityId(buf.get_u32_le()) });
                    }
                    t => return Err(DecodeError::BadTag(t)),
                }
            }
        }

        Ok(Self { start_user, registered, profiles, edges, edge_truth, mentions, mention_truth })
    }
}

/// CSR row lengths for values grouped by an ascending owner id.
fn row_lengths(num_rows: usize, start: u32, owners: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut lens = vec![0u32; num_rows];
    for o in owners {
        lens[(o - start) as usize] += 1;
    }
    lens
}

/// The corpus directory's commit record: written last, read first.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CorpusManifest {
    /// Manifest format version.
    pub version: u32,
    /// Total users across all chunks.
    pub num_users: u32,
    /// Users per chunk (the last chunk may be short).
    pub chunk_size: u32,
    /// Number of chunk files.
    pub num_chunks: u32,
    /// Generator master seed.
    pub seed: u64,
    /// Gazetteer the corpus was generated against.
    pub num_cities: u32,
    /// Venue vocabulary size of that gazetteer.
    pub num_venues: u32,
    /// Total edges across all chunks.
    pub total_edges: u64,
    /// Total mentions across all chunks.
    pub total_mentions: u64,
}

/// Errors raised while opening or reading a corpus directory.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A chunk file failed binary decoding.
    Decode(DecodeError),
    /// The manifest is missing, unparsable, or incompatible.
    Manifest(String),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus io error: {e}"),
            CorpusError::Decode(e) => write!(f, "corpus chunk invalid: {e}"),
            CorpusError::Manifest(m) => write!(f, "corpus manifest invalid: {m}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<DecodeError> for CorpusError {
    fn from(e: DecodeError) -> Self {
        CorpusError::Decode(e)
    }
}

/// Iterator-style loader over an on-disk corpus: yields one user
/// partition at a time, so the full corpus never lives in RAM.
#[derive(Debug)]
pub struct CorpusReader {
    dir: PathBuf,
    manifest: CorpusManifest,
}

impl CorpusReader {
    /// Opens a corpus directory by reading and validating its manifest.
    pub fn open(dir: &Path) -> Result<Self, CorpusError> {
        let text = std::fs::read_to_string(dir.join("manifest.json")).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                CorpusError::Manifest(format!(
                    "no manifest.json in {} — not a corpus (or generation never committed)",
                    dir.display()
                ))
            } else {
                CorpusError::Io(e)
            }
        })?;
        let manifest: CorpusManifest =
            serde_json::from_str(&text).map_err(|e| CorpusError::Manifest(e.to_string()))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(CorpusError::Manifest(format!(
                "unsupported manifest version {}",
                manifest.version
            )));
        }
        Ok(Self { dir: dir.to_path_buf(), manifest })
    }

    /// The corpus manifest.
    pub fn manifest(&self) -> &CorpusManifest {
        &self.manifest
    }

    /// The corpus directory this reader was opened on.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of chunks on disk.
    pub fn num_chunks(&self) -> usize {
        self.manifest.num_chunks as usize
    }

    /// Reads and decodes the chunk at `index`.
    pub fn read_chunk(&self, index: usize) -> Result<CorpusChunk, CorpusError> {
        let raw = std::fs::read(self.dir.join(chunk_file_name(index)))?;
        Ok(CorpusChunk::decode(Bytes::from(raw))?)
    }

    /// Streams every chunk in user order, decoding lazily — at most one
    /// chunk is resident at a time.
    pub fn chunks(&self) -> impl Iterator<Item = Result<CorpusChunk, CorpusError>> + '_ {
        (0..self.num_chunks()).map(|i| self.read_chunk(i))
    }

    /// Concatenates every chunk into one in-memory dataset — the bridge
    /// back to the non-streaming pipeline (small corpora only).
    pub fn read_all(&self) -> Result<GeneratedData, CorpusError> {
        assemble(self.manifest.num_users, self.chunks())
    }
}

/// Concatenates chunks (in user order) into one `GeneratedData`.
fn assemble(
    num_users: u32,
    chunks: impl Iterator<Item = Result<CorpusChunk, CorpusError>>,
) -> Result<GeneratedData, CorpusError> {
    let mut registered = Vec::with_capacity(num_users as usize);
    let mut profiles = Vec::with_capacity(num_users as usize);
    let mut edges = Vec::new();
    let mut edge_truth = Vec::new();
    let mut mentions = Vec::new();
    let mut mention_truth = Vec::new();
    for chunk in chunks {
        let mut chunk = chunk?;
        registered.append(&mut chunk.registered);
        profiles.append(&mut chunk.profiles);
        edges.append(&mut chunk.edges);
        edge_truth.append(&mut chunk.edge_truth);
        mentions.append(&mut chunk.mentions);
        mention_truth.append(&mut chunk.mention_truth);
    }
    Ok(GeneratedData {
        dataset: Dataset { num_users, registered, edges, mentions },
        truth: GroundTruth { profiles, edge_truth, mention_truth },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gaz() -> Gazetteer {
        Gazetteer::us_cities()
    }

    fn config(num_users: usize, seed: u64) -> GeneratorConfig {
        GeneratorConfig { num_users, seed, ..Default::default() }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlp_corpus_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn output_is_valid_and_deterministic() {
        let gaz = gaz();
        let a = StreamingGenerator::new(&gaz, config(400, 7), 64).generate();
        let b = StreamingGenerator::new(&gaz, config(400, 7), 64).generate();
        assert_eq!(a.dataset.validate(gaz.num_cities(), gaz.num_venues()), Ok(()));
        assert_eq!(a.truth.validate(gaz.num_cities()), Ok(()));
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.dataset.num_users(), 400);
    }

    #[test]
    fn chunking_never_changes_the_corpus() {
        let gaz = gaz();
        let single = StreamingGenerator::new(&gaz, config(300, 11), 300).generate();
        for chunk_size in [1, 7, 64, 299] {
            let chunked = StreamingGenerator::new(&gaz, config(300, 11), chunk_size).generate();
            assert_eq!(single.dataset, chunked.dataset, "chunk size {chunk_size}");
            assert_eq!(single.truth, chunked.truth, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn statistics_match_the_configured_means() {
        let gaz = gaz();
        let data = StreamingGenerator::new(&gaz, config(2_000, 13), 500).generate();
        let mean_friends = data.dataset.num_edges() as f64 / 2_000.0;
        assert!((mean_friends - 14.8).abs() < 2.2, "mean friends {mean_friends}");
        let mean_mentions = data.dataset.num_mentions() as f64 / 2_000.0;
        assert!((mean_mentions - 29.0).abs() < 1.5, "mean mentions {mean_mentions}");
        let multi = data.truth.multi_location_users().len() as f64 / 2_000.0;
        assert!((multi - 0.35).abs() < 0.04, "multi fraction {multi}");
    }

    #[test]
    fn chunk_codec_round_trips() {
        let gaz = gaz();
        let mut sg = StreamingGenerator::new(&gaz, config(150, 17), 64);
        for i in 0..sg.num_chunks() {
            let chunk = sg.chunk(i);
            let decoded = CorpusChunk::decode(chunk.encode()).unwrap();
            assert_eq!(chunk, decoded, "chunk {i}");
        }
    }

    #[test]
    fn corpus_write_read_round_trips() {
        let gaz = gaz();
        let dir = tmp_dir("round_trip");
        let mut sg = StreamingGenerator::new(&gaz, config(200, 19), 48);
        let manifest = sg.write_corpus(&dir).unwrap();
        assert_eq!(manifest.num_users, 200);
        assert_eq!(manifest.num_chunks, 5);

        let reader = CorpusReader::open(&dir).unwrap();
        assert_eq!(reader.manifest(), &manifest);
        let from_disk = reader.read_all().unwrap();
        let in_memory = StreamingGenerator::new(&gaz, config(200, 19), 48).generate();
        assert_eq!(from_disk.dataset, in_memory.dataset);
        assert_eq!(from_disk.truth, in_memory.truth);
        assert_eq!(manifest.total_edges, from_disk.dataset.num_edges() as u64);
        assert_eq!(manifest.total_mentions, from_disk.dataset.num_mentions() as u64);

        // Atomic writes must leave no temp droppings behind.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(!name.to_string_lossy().ends_with(".tmp"), "stray temp file {name:?}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_manifest_is_not_a_corpus() {
        let dir = tmp_dir("no_manifest");
        let err = CorpusReader::open(&dir).unwrap_err();
        assert!(matches!(err, CorpusError::Manifest(_)), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncated_chunk_fails_cleanly() {
        let gaz = gaz();
        let mut sg = StreamingGenerator::new(&gaz, config(60, 23), 60);
        let bytes = sg.chunk(0).encode();
        for cut in [0, 4, 13, bytes.len() / 2, bytes.len() - 1] {
            assert!(CorpusChunk::decode(bytes.slice(..cut)).is_err(), "cut at {cut}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite: the chunked generator concatenated over chunks is
        /// byte-identical to single-shot generation of the same seed and
        /// population, for arbitrary chunk sizes — streaming never
        /// changes the corpus.
        #[test]
        fn chunked_equals_single_shot(
            num_users in 1usize..120,
            chunk_size in 1usize..130,
            seed in 0u64..1_000,
        ) {
            let gaz = gaz();
            let single =
                StreamingGenerator::new(&gaz, config(num_users, seed), num_users).generate();
            let chunked =
                StreamingGenerator::new(&gaz, config(num_users, seed), chunk_size).generate();
            prop_assert_eq!(single.dataset, chunked.dataset);
            prop_assert_eq!(single.truth, chunked.truth);
        }

        /// Chunk encode/decode is the identity on generated chunks.
        #[test]
        fn chunk_codec_round_trips_arbitrary(
            num_users in 1usize..100,
            chunk_size in 1usize..50,
            seed in 0u64..1_000,
        ) {
            let gaz = gaz();
            let mut sg = StreamingGenerator::new(&gaz, config(num_users, seed), chunk_size);
            for i in 0..sg.num_chunks() {
                let chunk = sg.chunk(i);
                prop_assert_eq!(&chunk, &CorpusChunk::decode(chunk.encode()).unwrap());
            }
        }
    }
}
