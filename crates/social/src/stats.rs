//! Dataset statistics matching those the paper reports.
//!
//! Sec. 5 of the paper: "There are 14.8 friends, 14.9 followers, and 29.0
//! tweeted venues per user." Sec. 4.3: "there are about 92% users whose
//! locations appear in their relationships" — the statistic justifying the
//! candidacy vector. This module recomputes all of them on any dataset.

use crate::graph::Adjacency;
use crate::model::{Dataset, UserId};
use mlp_gazetteer::Gazetteer;
use mlp_geo::DistanceHistogram;
use std::collections::HashSet;

/// Summary statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of users.
    pub num_users: usize,
    /// Number of following relationships.
    pub num_edges: usize,
    /// Number of tweeting relationships.
    pub num_mentions: usize,
    /// Labeled-user fraction.
    pub labeled_fraction: f64,
    /// Mean friends (out-degree) per user.
    pub mean_friends: f64,
    /// Mean followers (in-degree) per user.
    pub mean_followers: f64,
    /// Mean tweeted venues per user.
    pub mean_mentions: f64,
    /// Fraction of *labeled* users whose registered city is observable from
    /// their relationships (neighbors' labels or tweeted-venue resolutions)
    /// — the paper's 92% candidacy-coverage figure.
    pub candidacy_coverage: f64,
}

impl DatasetStats {
    /// Computes all statistics.
    pub fn compute(dataset: &Dataset, gaz: &Gazetteer) -> Self {
        let n = dataset.num_users().max(1);
        let adj = Adjacency::build(dataset);

        let mut covered = 0usize;
        let mut labeled = 0usize;
        for u in 0..dataset.num_users() {
            let user = UserId(u as u32);
            let Some(home) = dataset.registered[u] else { continue };
            labeled += 1;
            let mut candidates: HashSet<_> = HashSet::new();
            for &s in adj.out_edges(user) {
                let friend = dataset.edges[s as usize].friend;
                if let Some(c) = dataset.registered[friend.index()] {
                    candidates.insert(c);
                }
            }
            for &s in adj.in_edges(user) {
                let follower = dataset.edges[s as usize].follower;
                if let Some(c) = dataset.registered[follower.index()] {
                    candidates.insert(c);
                }
            }
            for &k in adj.mentions_of(user) {
                let venue = dataset.mentions[k as usize].venue;
                candidates.extend(gaz.resolve_venue(venue).iter().copied());
            }
            if candidates.contains(&home) {
                covered += 1;
            }
        }

        Self {
            num_users: dataset.num_users(),
            num_edges: dataset.num_edges(),
            num_mentions: dataset.num_mentions(),
            labeled_fraction: dataset.num_labeled() as f64 / n as f64,
            mean_friends: dataset.num_edges() as f64 / n as f64,
            mean_followers: dataset.num_edges() as f64 / n as f64,
            mean_mentions: dataset.num_mentions() as f64 / n as f64,
            candidacy_coverage: if labeled == 0 { 0.0 } else { covered as f64 / labeled as f64 },
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "users:              {}", self.num_users)?;
        writeln!(f, "edges:              {}", self.num_edges)?;
        writeln!(f, "mentions:           {}", self.num_mentions)?;
        writeln!(f, "labeled fraction:   {:.1}%", self.labeled_fraction * 100.0)?;
        writeln!(f, "mean friends:       {:.1}", self.mean_friends)?;
        writeln!(f, "mean followers:     {:.1}", self.mean_followers)?;
        writeln!(f, "mean venues/user:   {:.1}", self.mean_mentions)?;
        write!(f, "candidacy coverage: {:.1}%", self.candidacy_coverage * 100.0)
    }
}

/// Builds the empirical following-probability-vs-distance histogram of the
/// paper's Fig. 3(a) from labeled users: per distance bucket, the fraction
/// of labeled user pairs connected by a following relationship.
///
/// Pair totals are aggregated at city granularity (a |L|² loop instead of
/// N²), which is exact because two users in the same pair of cities are at
/// the same distance.
pub fn following_probability_histogram(
    dataset: &Dataset,
    gaz: &Gazetteer,
    bucket_miles: f64,
    max_miles: f64,
) -> DistanceHistogram {
    let mut hist = DistanceHistogram::new(bucket_miles, max_miles);
    let mut city_counts = vec![0u64; gaz.num_cities()];
    for r in dataset.registered.iter().flatten() {
        city_counts[r.index()] += 1;
    }
    for a in 0..gaz.num_cities() {
        if city_counts[a] == 0 {
            continue;
        }
        for b in 0..gaz.num_cities() {
            if city_counts[b] == 0 {
                continue;
            }
            let pairs = if a == b {
                city_counts[a] * (city_counts[a].saturating_sub(1))
            } else {
                city_counts[a] * city_counts[b]
            };
            if pairs > 0 {
                hist.record_bulk(gaz.distances().get(a, b), pairs, 0);
            }
        }
    }
    for e in &dataset.edges {
        if let (Some(a), Some(b)) =
            (dataset.registered[e.follower.index()], dataset.registered[e.friend.index()])
        {
            hist.record_bulk(gaz.distance(a, b), 0, 1);
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};

    #[test]
    fn stats_match_paper_scale() {
        let gaz = Gazetteer::us_cities();
        let config = GeneratorConfig { num_users: 2_000, seed: 5, ..Default::default() };
        let data = Generator::new(&gaz, config).generate();
        let stats = DatasetStats::compute(&data.dataset, &gaz);
        assert_eq!(stats.num_users, 2_000);
        assert!((stats.mean_friends - 14.8).abs() < 2.2, "{}", stats.mean_friends);
        assert!((stats.mean_mentions - 29.0).abs() < 1.5, "{}", stats.mean_mentions);
        assert_eq!(stats.labeled_fraction, 1.0);
        // The paper reports ~92% coverage; our generator should land in the
        // same region (location-based relationships dominate).
        assert!(stats.candidacy_coverage > 0.85, "candidacy coverage {}", stats.candidacy_coverage);
    }

    #[test]
    fn empty_dataset_stats() {
        let gaz = Gazetteer::us_cities();
        let d = Dataset::new(4);
        let stats = DatasetStats::compute(&d, &gaz);
        assert_eq!(stats.num_edges, 0);
        assert_eq!(stats.candidacy_coverage, 0.0);
        assert_eq!(stats.labeled_fraction, 0.0);
    }

    #[test]
    fn following_histogram_decays_with_distance() {
        let gaz = Gazetteer::us_cities();
        let config = GeneratorConfig { num_users: 2_000, seed: 9, ..Default::default() };
        let data = Generator::new(&gaz, config).generate();
        let hist = following_probability_histogram(&data.dataset, &gaz, 50.0, 3_200.0);
        let curve = hist.probability_curve(100);
        assert!(curve.len() >= 5, "need a usable curve, got {} points", curve.len());
        // Short-range probability should dominate long-range by a wide
        // margin (the paper's Fig. 3(a) spans orders of magnitude).
        let short: f64 = curve.iter().filter(|&&(d, _)| d < 200.0).map(|&(_, p)| p).sum::<f64>()
            / curve.iter().filter(|&&(d, _)| d < 200.0).count().max(1) as f64;
        let long: f64 = curve.iter().filter(|&&(d, _)| d > 1_000.0).map(|&(_, p)| p).sum::<f64>()
            / curve.iter().filter(|&&(d, _)| d > 1_000.0).count().max(1) as f64;
        assert!(short > 3.0 * long, "short {short} vs long {long}");
    }

    #[test]
    fn display_renders() {
        let gaz = Gazetteer::us_cities();
        let d = Dataset::new(4);
        let s = DatasetStats::compute(&d, &gaz).to_string();
        assert!(s.contains("users:"));
        assert!(s.contains("candidacy coverage:"));
    }
}
