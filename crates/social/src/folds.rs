//! Cross-validation folds over labeled users.
//!
//! The paper evaluates home-location prediction with five-fold validation:
//! "we used 80% of users as labeled users and 20% of users as unlabeled
//! users and reported our results based on the average of 5 runs" (Sec. 5.1).

use crate::model::{Dataset, UserId};
use mlp_sampling::{Pcg64, SplitMix64};

/// A k-fold partition of a dataset's labeled users.
#[derive(Debug, Clone)]
pub struct Folds {
    folds: Vec<Vec<UserId>>,
}

impl Folds {
    /// Splits the labeled users of `dataset` into `k` near-equal folds,
    /// shuffled deterministically by `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0` or the dataset has fewer labeled users than `k`.
    pub fn split(dataset: &Dataset, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one fold");
        let mut labeled: Vec<UserId> = dataset.labeled_users().collect();
        assert!(labeled.len() >= k, "{} labeled users cannot fill {k} folds", labeled.len());
        let mut rng = Pcg64::new(SplitMix64::derive(seed, 0xF01D));
        // Fisher–Yates.
        for i in (1..labeled.len()).rev() {
            let j = rng.next_bounded(i + 1);
            labeled.swap(i, j);
        }
        let mut folds = vec![Vec::new(); k];
        for (i, u) in labeled.into_iter().enumerate() {
            folds[i % k].push(u);
        }
        Self { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The held-out users of fold `i` (the test set of run `i`).
    pub fn test_users(&self, i: usize) -> &[UserId] {
        &self.folds[i]
    }

    /// The train-view dataset for fold `i`: registered locations of the
    /// fold's test users are masked.
    pub fn train_view(&self, dataset: &Dataset, i: usize) -> Dataset {
        dataset.mask_users(&self.folds[i])
    }

    /// Iterates `(fold_index, test_users)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[UserId])> {
        self.folds.iter().enumerate().map(|(i, f)| (i, f.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_gazetteer::CityId;

    fn dataset(n: u32, labeled: u32) -> Dataset {
        let mut d = Dataset::new(n);
        for i in 0..labeled {
            d.registered[i as usize] = Some(CityId(0));
        }
        d
    }

    #[test]
    fn folds_partition_labeled_users() {
        let d = dataset(100, 50);
        let folds = Folds::split(&d, 5, 1);
        assert_eq!(folds.k(), 5);
        let mut all: Vec<UserId> = folds.iter().flat_map(|(_, f)| f.to_vec()).collect();
        assert_eq!(all.len(), 50);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 50, "no user appears twice");
        for (_, f) in folds.iter() {
            assert_eq!(f.len(), 10);
        }
    }

    #[test]
    fn unlabeled_users_never_in_folds() {
        let d = dataset(100, 30);
        let folds = Folds::split(&d, 5, 2);
        for (_, f) in folds.iter() {
            for u in f {
                assert!(u.0 < 30);
            }
        }
    }

    #[test]
    fn split_is_deterministic() {
        let d = dataset(60, 60);
        let a = Folds::split(&d, 5, 9);
        let b = Folds::split(&d, 5, 9);
        for i in 0..5 {
            assert_eq!(a.test_users(i), b.test_users(i));
        }
        let c = Folds::split(&d, 5, 10);
        assert_ne!(a.test_users(0), c.test_users(0));
    }

    #[test]
    fn train_view_masks_only_the_fold() {
        let d = dataset(20, 20);
        let folds = Folds::split(&d, 4, 3);
        let view = folds.train_view(&d, 0);
        assert_eq!(view.num_labeled(), 15);
        for u in folds.test_users(0) {
            assert!(view.registered[u.index()].is_none());
        }
        // Other folds' users stay labeled.
        for u in folds.test_users(1) {
            assert!(view.registered[u.index()].is_some());
        }
    }

    #[test]
    fn uneven_split_differs_by_at_most_one() {
        let d = dataset(23, 23);
        let folds = Folds::split(&d, 5, 4);
        let sizes: Vec<usize> = folds.iter().map(|(_, f)| f.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 23);
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn too_few_labeled_users_panics() {
        let d = dataset(10, 3);
        Folds::split(&d, 5, 1);
    }
}
