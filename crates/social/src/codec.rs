//! Snapshot codecs for datasets and ground truth.
//!
//! Two formats:
//!
//! * **binary** — a compact little-endian layout via `bytes`, for large
//!   generated datasets (the default bench scale serialises in tens of MB);
//! * **JSON** — via `serde_json`, for human inspection and small fixtures.
//!
//! Both round-trip exactly; the binary format is versioned and magic-tagged
//! so stale snapshots fail loudly instead of deserialising garbage.

use crate::model::{Dataset, FollowEdge, TweetMention, UserId};
use crate::truth::{EdgeTruth, GroundTruth, MentionTruth};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mlp_gazetteer::{CityId, VenueId};

const MAGIC: u32 = 0x4D4C_5031; // "MLP1"
const VERSION: u16 = 1;

/// Errors raised when decoding a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic number — not an MLP snapshot.
    BadMagic(u32),
    /// Snapshot from an incompatible format version.
    BadVersion(u16),
    /// Buffer ended before the declared payload.
    Truncated,
    /// A tag byte held an unknown value.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialises `(dataset, truth)` into the binary snapshot format.
pub fn encode(dataset: &Dataset, truth: &GroundTruth) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        64 + dataset.num_users() * 16 + dataset.num_edges() * 17 + dataset.num_mentions() * 13,
    );
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(dataset.num_users);

    // Registered labels: u32::MAX = unlabeled.
    for r in &dataset.registered {
        buf.put_u32_le(r.map_or(u32::MAX, |c| c.0));
    }

    buf.put_u64_le(dataset.edges.len() as u64);
    for (e, t) in dataset.edges.iter().zip(&truth.edge_truth) {
        buf.put_u32_le(e.follower.0);
        buf.put_u32_le(e.friend.0);
        match t {
            EdgeTruth::Noisy => buf.put_u8(0),
            EdgeTruth::Based { x, y } => {
                buf.put_u8(1);
                buf.put_u32_le(x.0);
                buf.put_u32_le(y.0);
            }
        }
    }

    buf.put_u64_le(dataset.mentions.len() as u64);
    for (m, t) in dataset.mentions.iter().zip(&truth.mention_truth) {
        buf.put_u32_le(m.user.0);
        buf.put_u32_le(m.venue.0);
        match t {
            MentionTruth::Noisy => buf.put_u8(0),
            MentionTruth::Based { z } => {
                buf.put_u8(1);
                buf.put_u32_le(z.0);
            }
        }
    }

    buf.put_u32_le(truth.profiles.len() as u32);
    for p in &truth.profiles {
        buf.put_u16_le(p.len() as u16);
        for &(c, w) in p {
            buf.put_u32_le(c.0);
            buf.put_f64_le(w);
        }
    }
    buf.freeze()
}

/// Decodes a binary snapshot produced by [`encode`].
pub fn decode(mut buf: Bytes) -> Result<(Dataset, GroundTruth), DecodeError> {
    fn need(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
        if buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }

    need(&buf, 10)?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let num_users = buf.get_u32_le();

    need(&buf, num_users as usize * 4)?;
    let registered: Vec<Option<CityId>> = (0..num_users)
        .map(|_| {
            let v = buf.get_u32_le();
            (v != u32::MAX).then_some(CityId(v))
        })
        .collect();

    need(&buf, 8)?;
    let num_edges = buf.get_u64_le() as usize;
    let mut edges = Vec::with_capacity(num_edges);
    let mut edge_truth = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        need(&buf, 9)?;
        let follower = UserId(buf.get_u32_le());
        let friend = UserId(buf.get_u32_le());
        edges.push(FollowEdge { follower, friend });
        match buf.get_u8() {
            0 => edge_truth.push(EdgeTruth::Noisy),
            1 => {
                need(&buf, 8)?;
                edge_truth.push(EdgeTruth::Based {
                    x: CityId(buf.get_u32_le()),
                    y: CityId(buf.get_u32_le()),
                });
            }
            t => return Err(DecodeError::BadTag(t)),
        }
    }

    need(&buf, 8)?;
    let num_mentions = buf.get_u64_le() as usize;
    let mut mentions = Vec::with_capacity(num_mentions);
    let mut mention_truth = Vec::with_capacity(num_mentions);
    for _ in 0..num_mentions {
        need(&buf, 9)?;
        let user = UserId(buf.get_u32_le());
        let venue = VenueId(buf.get_u32_le());
        mentions.push(TweetMention { user, venue });
        match buf.get_u8() {
            0 => mention_truth.push(MentionTruth::Noisy),
            1 => {
                need(&buf, 4)?;
                mention_truth.push(MentionTruth::Based { z: CityId(buf.get_u32_le()) });
            }
            t => return Err(DecodeError::BadTag(t)),
        }
    }

    need(&buf, 4)?;
    let num_profiles = buf.get_u32_le() as usize;
    let mut profiles = Vec::with_capacity(num_profiles);
    for _ in 0..num_profiles {
        need(&buf, 2)?;
        let len = buf.get_u16_le() as usize;
        need(&buf, len * 12)?;
        let profile: Vec<(CityId, f64)> =
            (0..len).map(|_| (CityId(buf.get_u32_le()), buf.get_f64_le())).collect();
        profiles.push(profile);
    }

    Ok((
        Dataset { num_users, registered, edges, mentions },
        GroundTruth { profiles, edge_truth, mention_truth },
    ))
}

/// Serialises `(dataset, truth)` as pretty JSON.
pub fn to_json(dataset: &Dataset, truth: &GroundTruth) -> String {
    #[derive(serde::Serialize)]
    struct Snapshot<'a> {
        dataset: &'a Dataset,
        truth: &'a GroundTruth,
    }
    serde_json::to_string_pretty(&Snapshot { dataset, truth }).expect("snapshot serialises")
}

/// Parses the JSON produced by [`to_json`].
pub fn from_json(json: &str) -> Result<(Dataset, GroundTruth), serde_json::Error> {
    #[derive(serde::Deserialize)]
    struct Snapshot {
        dataset: Dataset,
        truth: GroundTruth,
    }
    let s: Snapshot = serde_json::from_str(json)?;
    Ok((s.dataset, s.truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};
    use mlp_gazetteer::Gazetteer;

    fn sample() -> (Dataset, GroundTruth) {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 200, seed: 77, ..Default::default() },
        )
        .generate();
        (data.dataset, data.truth)
    }

    #[test]
    fn binary_round_trip() {
        let (d, t) = sample();
        let bytes = encode(&d, &t);
        let (d2, t2) = decode(bytes).unwrap();
        assert_eq!(d, d2);
        assert_eq!(t, t2);
    }

    #[test]
    fn json_round_trip() {
        let (d, t) = sample();
        let json = to_json(&d, &t);
        let (d2, t2) = from_json(&json).unwrap();
        assert_eq!(d, d2);
        assert_eq!(t, t2);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode(Bytes::from_static(&[0u8; 32])).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic(_)));
    }

    #[test]
    fn truncated_rejected() {
        let (d, t) = sample();
        let bytes = encode(&d, &t);
        for cut in [4usize, 9, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(bytes.slice(..cut)).unwrap_err();
            assert_eq!(err, DecodeError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let (d, t) = sample();
        let mut raw = encode(&d, &t).to_vec();
        raw[4] = 0xFF;
        let err = decode(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, DecodeError::BadVersion(_)));
    }

    #[test]
    fn bad_tag_rejected() {
        // Craft a minimal snapshot with an invalid edge tag.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(2); // users
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        buf.put_u64_le(1); // one edge
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        buf.put_u8(9); // invalid tag
        let err = decode(buf.freeze()).unwrap_err();
        assert_eq!(err, DecodeError::BadTag(9));
    }

    #[test]
    fn unlabeled_users_survive_round_trip() {
        let (mut d, t) = sample();
        d.registered[0] = None;
        d.registered[5] = None;
        let (d2, _) = decode(encode(&d, &t)).unwrap();
        assert_eq!(d2.registered[0], None);
        assert_eq!(d2.registered[5], None);
        assert_eq!(d, d2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mlp_gazetteer::{CityId, VenueId};
    use proptest::prelude::*;

    /// Arbitrary small-but-structurally-valid dataset + truth pair.
    fn arb_snapshot() -> impl Strategy<Value = (Dataset, GroundTruth)> {
        let users = 2u32..20;
        users.prop_flat_map(|n| {
            let reg = prop::collection::vec(prop::option::of(0u32..50), n as usize);
            let edges =
                prop::collection::vec((0..n, 0..n, prop::option::of((0u32..50, 0u32..50))), 0..30);
            let mentions =
                prop::collection::vec((0..n, 0u32..80, prop::option::of(0u32..50)), 0..40);
            let profiles = prop::collection::vec(
                prop::collection::vec((0u32..50, 0.01f64..1.0), 1..3),
                n as usize,
            );
            (Just(n), reg, edges, mentions, profiles).prop_map(
                |(n, reg, edges, mentions, profiles)| {
                    let dataset = Dataset {
                        num_users: n,
                        registered: reg.into_iter().map(|o| o.map(CityId)).collect(),
                        edges: edges
                            .iter()
                            .map(|&(a, b, _)| FollowEdge { follower: UserId(a), friend: UserId(b) })
                            .collect(),
                        mentions: mentions
                            .iter()
                            .map(|&(u, v, _)| TweetMention { user: UserId(u), venue: VenueId(v) })
                            .collect(),
                    };
                    let truth = GroundTruth {
                        profiles: profiles
                            .into_iter()
                            .map(|p| {
                                let total: f64 = p.iter().map(|&(_, w)| w).sum();
                                let mut p: Vec<(CityId, f64)> =
                                    p.into_iter().map(|(c, w)| (CityId(c), w / total)).collect();
                                p.sort_by(|a, b| {
                                    b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0))
                                });
                                p
                            })
                            .collect(),
                        edge_truth: edges
                            .iter()
                            .map(|&(_, _, t)| match t {
                                None => EdgeTruth::Noisy,
                                Some((x, y)) => EdgeTruth::Based { x: CityId(x), y: CityId(y) },
                            })
                            .collect(),
                        mention_truth: mentions
                            .iter()
                            .map(|&(_, _, t)| match t {
                                None => MentionTruth::Noisy,
                                Some(z) => MentionTruth::Based { z: CityId(z) },
                            })
                            .collect(),
                    };
                    (dataset, truth)
                },
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Binary encode/decode is the identity on arbitrary snapshots.
        #[test]
        fn binary_round_trip_arbitrary((dataset, truth) in arb_snapshot()) {
            let (d2, t2) = decode(encode(&dataset, &truth)).unwrap();
            prop_assert_eq!(dataset, d2);
            prop_assert_eq!(truth, t2);
        }

        /// JSON encode/decode preserves all ids/tags exactly and profile
        /// weights to within one ulp (serde_json's float printing can lose
        /// the last bit; the binary codec is the exact format).
        #[test]
        fn json_round_trip_arbitrary((dataset, truth) in arb_snapshot()) {
            let (d2, t2) = from_json(&to_json(&dataset, &truth)).unwrap();
            prop_assert_eq!(&dataset, &d2);
            prop_assert_eq!(&truth.edge_truth, &t2.edge_truth);
            prop_assert_eq!(&truth.mention_truth, &t2.mention_truth);
            prop_assert_eq!(truth.profiles.len(), t2.profiles.len());
            for (pa, pb) in truth.profiles.iter().zip(&t2.profiles) {
                prop_assert_eq!(pa.len(), pb.len());
                for (&(ca, wa), &(cb, wb)) in pa.iter().zip(pb) {
                    prop_assert_eq!(ca, cb);
                    prop_assert!((wa - wb).abs() <= wa.abs() * 1e-15);
                }
            }
        }

        /// Any truncation of a valid snapshot fails cleanly (never panics,
        /// never returns Ok with silently-wrong data sizes).
        #[test]
        fn truncation_never_panics((dataset, truth) in arb_snapshot(), frac in 0.0f64..1.0) {
            let bytes = encode(&dataset, &truth);
            let cut = ((bytes.len() as f64) * frac) as usize;
            if cut < bytes.len() {
                let result = decode(bytes.slice(..cut));
                prop_assert!(result.is_err());
            }
        }
    }
}
