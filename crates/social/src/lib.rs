//! Dataset substrate: the Twitter-like data the MLP model consumes.
//!
//! The paper's evaluation runs on a May-2011 crawl of 139,180 Twitter users
//! (their following network, up to 600 tweets each, and registered city-level
//! home locations). That crawl cannot be redistributed or re-collected, so
//! this crate provides the substitution described in DESIGN.md:
//!
//! * [`model`] — the abstract data the paper defines in Sec. 3: users,
//!   following relationships `f⟨i,j⟩`, tweeting relationships `t⟨i,j⟩`, and
//!   observed home locations for labeled users.
//! * [`csr`] — the shared compressed-sparse-row container (offset table +
//!   flat value slab) that the adjacency, the sampler's count arenas, and
//!   the posterior-snapshot slabs are all built on.
//! * [`graph`] — CSR adjacency over the following network.
//! * [`truth`] — ground truth the real crawl never had: every user's true
//!   multi-location profile and every relationship's true location
//!   assignments (or noisy flag), enabling exact evaluation of all three of
//!   the paper's tasks.
//! * [`generator`] — a synthetic Twitter generator parameterised to the
//!   crawl's published statistics (14.8 friends, 14.9 followers and 29.0
//!   tweeted venues per user; distance power law with exponent ≈ −0.55;
//!   noisy relationships; multi-location users).
//! * [`folds`] — the 5-fold cross-validation split of Sec. 5.1.
//! * [`stats`] — the dataset statistics the paper reports, recomputed on any
//!   dataset (including the 92% candidacy-coverage figure of Sec. 4.3).
//! * [`codec`] — binary and JSON snapshots so generated datasets can be
//!   saved, shipped, and reloaded byte-identically.
//! * [`stream`] — out-of-core corpora: deterministic chunked synthesis
//!   whose full output never lives in RAM, an on-disk chunked corpus
//!   format written via [`atomic::write_atomic`], and an iterator-style
//!   reader yielding one user partition at a time.
//! * [`atomic`] — crash-safe file replacement (temp + fsync + rename),
//!   shared with `mlp-core`'s artifact persistence.

pub mod atomic;
pub mod codec;
pub mod csr;
pub mod folds;
pub mod generator;
pub mod graph;
pub mod model;
pub mod scenario;
pub mod stats;
pub mod stream;
pub mod truth;

pub use atomic::write_atomic;
pub use csr::{Csr, Pod, Slab};
pub use folds::Folds;
pub use generator::{GeneratedData, Generator, GeneratorConfig};
pub use graph::Adjacency;
pub use model::{Dataset, FollowEdge, TweetMention, UserId};
pub use scenario::{
    Migration, ScenarioEvent, ScenarioScript, ScenarioWorld, ScheduledEvent, TickDelta,
    CANNED_SCENARIOS,
};
pub use stats::{following_probability_histogram, DatasetStats};
pub use stream::{CorpusChunk, CorpusManifest, CorpusReader, StreamingGenerator};
pub use truth::{EdgeTruth, GroundTruth, MentionTruth};
