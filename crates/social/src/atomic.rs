//! Atomic file replacement — the durability primitive shared by the
//! corpus writer (this crate) and the serving engine's artifact
//! persistence (`mlp-core`, which re-exports these).
//!
//! The corpus generator streams million-user datasets to disk one chunk
//! at a time; a crash mid-write must never leave a chunk that decodes to
//! half a dataset. The same invariant protects model artifacts, so the
//! primitive lives here, at the bottom of the crate graph.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: a sibling temp file is written,
/// `sync_all`'d, renamed over `path`, and the parent directory fsync'd,
/// so a crash at any point leaves either the old file or the new one —
/// never a torn mixture.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// A sibling temp path in the same directory (rename must not cross
/// filesystems).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsyncs the directory containing `path`, making a rename or create
/// durable. Best-effort no-op when the parent cannot be opened as a
/// file handle (non-POSIX filesystems) — the data fsyncs still hold.
pub fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("mlp_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        assert!(!tmp_sibling(&path).exists(), "temp file must not linger");
        std::fs::remove_dir_all(dir).ok();
    }
}
