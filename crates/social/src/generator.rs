//! Synthetic Twitter generator.
//!
//! Produces a [`Dataset`] plus exact [`GroundTruth`] by running the paper's
//! own generative story (Sec. 4.4) forward, with the published crawl
//! statistics as defaults:
//!
//! 1. every user gets a true multi-location profile θ_i (home city sampled
//!    by population; a college/work city for the multi-location cohort);
//! 2. tweeting relationships: `ν ~ Bern(ρ_t)` selects the random model
//!    (global venue popularity) or the location-based model (a per-city
//!    venue multinomial ψ_l mixing local venues, nearby city names, and far
//!    popular cities — the shape of Fig. 3(b));
//! 3. following relationships: `μ ~ Bern(ρ_f)` selects the random model
//!    (celebrity/uniform follows) or the location-based model: draw
//!    `x ~ θ_i`, draw the friend's city `y` with probability
//!    `∝ users(y) · d(x,y)^α` (the power law of Fig. 3(a)), then a uniform
//!    user living at `y`;
//! 4. registered home locations are exposed for a configurable fraction of
//!    users (the paper's dataset construction keeps exactly the users whose
//!    profiles carry city-level locations).

use crate::model::{Dataset, FollowEdge, TweetMention, UserId};
use crate::truth::{EdgeTruth, GroundTruth, MentionTruth};
use mlp_gazetteer::{CityId, Gazetteer, VenueId, VenueKind};
use mlp_geo::PowerLaw;
use mlp_sampling::{sample_poisson, AliasTable, Pcg64, SplitMix64};

/// All knobs of the synthetic generator. Defaults mirror the statistics the
/// paper reports for its crawl (Sec. 5, "Data Collection").
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of users to generate.
    pub num_users: usize,
    /// Master seed; the output is a pure function of `(gazetteer, config)`.
    pub seed: u64,
    /// Mean friends per user (paper: 14.8).
    pub mean_friends: f64,
    /// Mean tweeted venues per user (paper: 29.0).
    pub mean_mentions: f64,
    /// Fraction of users with a second long-term location (the paper's
    /// hand-labeled sample found 585 of 1,000 inspected users, but those
    /// were pre-filtered; we default to a more conservative 0.35).
    pub multi_location_fraction: f64,
    /// Probability that a multi-location user has a third location.
    pub third_location_fraction: f64,
    /// Probability that the second location is nearby (suburb/metro move)
    /// rather than a far relocation (college/work move).
    pub nearby_second_fraction: f64,
    /// Radius for "nearby" second locations, miles.
    pub nearby_radius_miles: f64,
    /// ρ_f: probability a following relationship is noisy (random model).
    pub noisy_edge_fraction: f64,
    /// ρ_t: probability a tweeting relationship is noisy (random model).
    pub noisy_mention_fraction: f64,
    /// The distance power law generating location-based follows.
    pub power_law: PowerLaw,
    /// Fraction of users whose registered home location is exposed.
    pub registered_fraction: f64,
    /// Fraction of *exposed* registered locations that are wrong (a random
    /// other city). The paper takes registered locations as truth but
    /// acknowledges "some registered locations are incorrect"; this knob
    /// quantifies how much label noise each method tolerates.
    pub label_noise_fraction: f64,
    /// Fraction of users acting as celebrities that attract noisy follows.
    pub celebrity_fraction: f64,
    /// ψ_l mixture: mass on the city's own venues.
    pub psi_own_weight: f64,
    /// ψ_l mixture: mass on nearby cities' names.
    pub psi_nearby_weight: f64,
    /// ψ_l mixture: mass on far popular cities' names.
    pub psi_popular_weight: f64,
    /// Radius defining "nearby" venues in ψ_l, miles.
    pub psi_nearby_radius: f64,
    /// How many of the most populous cities form the "popular" venue pool.
    pub psi_popular_k: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_users: 2_000,
            seed: 42,
            mean_friends: 14.8,
            mean_mentions: 29.0,
            multi_location_fraction: 0.35,
            third_location_fraction: 0.08,
            nearby_second_fraction: 0.4,
            nearby_radius_miles: 150.0,
            noisy_edge_fraction: 0.15,
            noisy_mention_fraction: 0.20,
            power_law: PowerLaw::PAPER_TWITTER,
            registered_fraction: 1.0,
            label_noise_fraction: 0.0,
            celebrity_fraction: 0.005,
            psi_own_weight: 0.55,
            psi_nearby_weight: 0.25,
            psi_popular_weight: 0.20,
            psi_nearby_radius: 100.0,
            psi_popular_k: 30,
        }
    }
}

/// Output of one generator run.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// The observable dataset.
    pub dataset: Dataset,
    /// The exact generator-side truth.
    pub truth: GroundTruth,
}

/// The generator itself; borrows the gazetteer it draws cities from.
pub struct Generator<'g> {
    pub(crate) gaz: &'g Gazetteer,
    pub(crate) config: GeneratorConfig,
}

impl<'g> Generator<'g> {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics if the config is degenerate (no users, non-probability
    /// fractions, non-positive means).
    pub fn new(gaz: &'g Gazetteer, config: GeneratorConfig) -> Self {
        assert!(config.num_users > 0, "need at least one user");
        assert!(config.mean_friends > 0.0 && config.mean_mentions > 0.0);
        for (name, p) in [
            ("multi_location_fraction", config.multi_location_fraction),
            ("third_location_fraction", config.third_location_fraction),
            ("nearby_second_fraction", config.nearby_second_fraction),
            ("noisy_edge_fraction", config.noisy_edge_fraction),
            ("noisy_mention_fraction", config.noisy_mention_fraction),
            ("registered_fraction", config.registered_fraction),
            ("label_noise_fraction", config.label_noise_fraction),
            ("celebrity_fraction", config.celebrity_fraction),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} is not a probability");
        }
        Self { gaz, config }
    }

    /// Runs the full generative process.
    pub fn generate(&self) -> GeneratedData {
        let profiles = self.generate_profiles();
        let users_at = self.index_users_by_city(&profiles);
        let (mentions, mention_truth) = self.generate_mentions(&profiles);
        let (edges, edge_truth) = self.generate_edges(&profiles, &users_at);
        let registered = self.generate_registrations(&profiles);

        let dataset =
            Dataset { num_users: self.config.num_users as u32, registered, edges, mentions };
        let truth = GroundTruth { profiles, edge_truth, mention_truth };
        debug_assert_eq!(dataset.validate(self.gaz.num_cities(), self.gaz.num_venues()), Ok(()));
        debug_assert_eq!(truth.validate(self.gaz.num_cities()), Ok(()));
        GeneratedData { dataset, truth }
    }

    fn phase_rng(&self, phase: u64) -> Pcg64 {
        Pcg64::new(SplitMix64::derive(self.config.seed, phase))
    }

    /// Step 1: true multi-location profiles.
    fn generate_profiles(&self) -> Vec<Vec<(CityId, f64)>> {
        let mut rng = self.phase_rng(1);
        let pop_alias =
            AliasTable::new(&self.gaz.population_weights()).expect("positive populations");
        let mut profiles = Vec::with_capacity(self.config.num_users);
        for _ in 0..self.config.num_users {
            let home = CityId(pop_alias.sample(&mut rng) as u32);
            let mut profile = vec![(home, 1.0)];
            if rng.bernoulli(self.config.multi_location_fraction) {
                if let Some(second) = self.pick_second_location(&mut rng, home, &pop_alias) {
                    profile = vec![(home, 0.65), (second, 0.35)];
                    if rng.bernoulli(self.config.third_location_fraction) {
                        if let Some(third) =
                            self.pick_distinct_city(&mut rng, &pop_alias, &[home, second])
                        {
                            profile = vec![(home, 0.60), (second, 0.28), (third, 0.12)];
                        }
                    }
                }
            }
            profiles.push(profile);
        }
        profiles
    }

    /// A second location: nearby suburb/metro move or far relocation.
    pub(crate) fn pick_second_location(
        &self,
        rng: &mut Pcg64,
        home: CityId,
        pop_alias: &AliasTable,
    ) -> Option<CityId> {
        if rng.bernoulli(self.config.nearby_second_fraction) {
            let nearby: Vec<CityId> = self
                .gaz
                .cities_within(home, self.config.nearby_radius_miles)
                .into_iter()
                .filter(|&c| c != home)
                .collect();
            if nearby.is_empty() {
                return self.pick_distinct_city(rng, pop_alias, &[home]);
            }
            let weights: Vec<f64> =
                nearby.iter().map(|&c| self.gaz.city(c).population as f64).collect();
            let table = AliasTable::new(&weights)?;
            Some(nearby[table.sample(rng)])
        } else {
            self.pick_distinct_city(rng, pop_alias, &[home])
        }
    }

    pub(crate) fn pick_distinct_city(
        &self,
        rng: &mut Pcg64,
        pop_alias: &AliasTable,
        exclude: &[CityId],
    ) -> Option<CityId> {
        for _ in 0..64 {
            let c = CityId(pop_alias.sample(rng) as u32);
            if !exclude.contains(&c) {
                return Some(c);
            }
        }
        None
    }

    /// city → users whose true profile contains it.
    fn index_users_by_city(&self, profiles: &[Vec<(CityId, f64)>]) -> Vec<Vec<UserId>> {
        let mut users_at = vec![Vec::new(); self.gaz.num_cities()];
        for (i, profile) in profiles.iter().enumerate() {
            for &(c, _) in profile {
                users_at[c.index()].push(UserId(i as u32));
            }
        }
        users_at
    }

    /// Step 2: tweeting relationships.
    fn generate_mentions(
        &self,
        profiles: &[Vec<(CityId, f64)>],
    ) -> (Vec<TweetMention>, Vec<MentionTruth>) {
        let mut rng = self.phase_rng(2);
        let (popular_ids, popular_alias) = self.global_venue_popularity();
        let mut psi_cache: Vec<Option<(Vec<VenueId>, AliasTable)>> =
            vec![None; self.gaz.num_cities()];
        let mut mentions = Vec::new();
        let mut truths = Vec::new();
        for (i, profile) in profiles.iter().enumerate() {
            let count = sample_poisson(&mut rng, self.config.mean_mentions);
            for _ in 0..count {
                if rng.bernoulli(self.config.noisy_mention_fraction) {
                    let venue = popular_ids[popular_alias.sample(&mut rng)];
                    mentions.push(TweetMention { user: UserId(i as u32), venue });
                    truths.push(MentionTruth::Noisy);
                } else {
                    let z = sample_profile(&mut rng, profile);
                    let (ids, table) = self.psi(&mut psi_cache, z);
                    let venue = ids[table.sample(&mut rng)];
                    mentions.push(TweetMention { user: UserId(i as u32), venue });
                    truths.push(MentionTruth::Based { z });
                }
            }
        }
        (mentions, truths)
    }

    /// The random tweeting model T_R: global venue popularity ∝ the summed
    /// population behind each venue name.
    pub(crate) fn global_venue_popularity(&self) -> (Vec<VenueId>, AliasTable) {
        let mut ids = Vec::new();
        let mut weights = Vec::new();
        for (v, venue) in self.gaz.venues().iter().enumerate() {
            let pop: f64 = venue.cities.iter().map(|&c| self.gaz.city(c).population as f64).sum();
            let w = match venue.kind {
                VenueKind::CityName => pop,
                VenueKind::LocalEntity => pop * 0.15,
            };
            if w > 0.0 {
                ids.push(VenueId(v as u32));
                weights.push(w);
            }
        }
        let table = AliasTable::new(&weights).expect("gazetteer has venues");
        (ids, table)
    }

    /// Lazily builds ψ_l for city `l`: own venues + nearby city names + far
    /// popular city names, with the configured mixture masses.
    pub(crate) fn psi<'a>(
        &self,
        cache: &'a mut [Option<(Vec<VenueId>, AliasTable)>],
        l: CityId,
    ) -> &'a (Vec<VenueId>, AliasTable) {
        if cache[l.index()].is_none() {
            let mut ids = Vec::new();
            let mut weights = Vec::new();

            // Own venues: the city's name counts double its local entities.
            let own = self.gaz.venues_of_city(l);
            let own_unit = self.config.psi_own_weight / (own.len() as f64 + 1.0);
            for &v in own {
                let w = match self.gaz.venue(v).kind {
                    VenueKind::CityName => 2.0 * own_unit,
                    VenueKind::LocalEntity => own_unit,
                };
                ids.push(v);
                weights.push(w);
            }

            // Nearby cities: weight ∝ population / (distance + 10).
            let nearby: Vec<CityId> = self
                .gaz
                .cities_within(l, self.config.psi_nearby_radius)
                .into_iter()
                .filter(|&c| c != l)
                .collect();
            if !nearby.is_empty() {
                let raw: Vec<f64> = nearby
                    .iter()
                    .map(|&c| self.gaz.city(c).population as f64 / (self.gaz.distance(l, c) + 10.0))
                    .collect();
                let total: f64 = raw.iter().sum();
                for (&c, &r) in nearby.iter().zip(&raw) {
                    if let Some(&v) = self.gaz.venues_of_city(c).first() {
                        ids.push(v);
                        weights.push(self.config.psi_nearby_weight * r / total);
                    }
                }
            }

            // Far popular cities (Hollywood-from-Austin effect).
            let mut by_pop: Vec<CityId> = (0..self.gaz.num_cities() as u32).map(CityId).collect();
            by_pop.sort_by_key(|&c| std::cmp::Reverse(self.gaz.city(c).population));
            let popular: Vec<CityId> =
                by_pop.into_iter().filter(|&c| c != l).take(self.config.psi_popular_k).collect();
            let pop_total: f64 = popular.iter().map(|&c| self.gaz.city(c).population as f64).sum();
            for &c in &popular {
                if let Some(&v) = self.gaz.venues_of_city(c).first() {
                    ids.push(v);
                    weights.push(
                        self.config.psi_popular_weight * self.gaz.city(c).population as f64
                            / pop_total,
                    );
                }
            }

            let table = AliasTable::new(&weights).expect("psi weights are positive");
            cache[l.index()] = Some((ids, table));
        }
        cache[l.index()].as_ref().expect("just built")
    }

    /// Step 3: following relationships.
    fn generate_edges(
        &self,
        profiles: &[Vec<(CityId, f64)>],
        users_at: &[Vec<UserId>],
    ) -> (Vec<FollowEdge>, Vec<EdgeTruth>) {
        let mut rng = self.phase_rng(3);
        let n = self.config.num_users;

        // Celebrity pool with Zipf-ish attractiveness.
        let num_celebs = ((n as f64 * self.config.celebrity_fraction).ceil() as usize).max(1);
        let celebs: Vec<UserId> =
            (0..num_celebs).map(|_| UserId(rng.next_bounded(n) as u32)).collect();
        let celeb_weights: Vec<f64> = (0..num_celebs).map(|r| 1.0 / (1.0 + r as f64)).collect();
        let celeb_alias = AliasTable::new(&celeb_weights).expect("non-empty celebrity pool");

        // Friend-city alias tables, cached per follower assignment x:
        // weight(y) ∝ |users(y)| · d(x, y)^α.
        let mut city_alias: Vec<Option<AliasTable>> = vec![None; self.gaz.num_cities()];
        let city_user_counts: Vec<f64> = users_at.iter().map(|u| u.len() as f64).collect();

        let mut seen = std::collections::HashSet::new();
        let mut edges = Vec::new();
        let mut truths = Vec::new();
        for (i, profile) in profiles.iter().enumerate().take(n) {
            let follower = UserId(i as u32);
            let count = sample_poisson(&mut rng, self.config.mean_friends);
            for _ in 0..count {
                let (edge, truth) = if rng.bernoulli(self.config.noisy_edge_fraction) {
                    self.noisy_edge(&mut rng, follower, &celebs, &celeb_alias)
                } else {
                    match self.based_edge(
                        &mut rng,
                        follower,
                        profile,
                        users_at,
                        &city_user_counts,
                        &mut city_alias,
                    ) {
                        Some(pair) => pair,
                        None => self.noisy_edge(&mut rng, follower, &celebs, &celeb_alias),
                    }
                };
                if seen.insert((edge.follower, edge.friend)) {
                    edges.push(edge);
                    truths.push(truth);
                }
            }
        }
        (edges, truths)
    }

    pub(crate) fn noisy_edge(
        &self,
        rng: &mut Pcg64,
        follower: UserId,
        celebs: &[UserId],
        celeb_alias: &AliasTable,
    ) -> (FollowEdge, EdgeTruth) {
        let n = self.config.num_users;
        // 70% of noisy follows hit the celebrity pool, the rest are uniform.
        let friend = loop {
            let candidate = if rng.bernoulli(0.7) {
                celebs[celeb_alias.sample(rng)]
            } else {
                UserId(rng.next_bounded(n) as u32)
            };
            if candidate != follower {
                break candidate;
            }
            if n == 1 {
                break candidate; // degenerate single-user dataset
            }
        };
        (FollowEdge { follower, friend }, EdgeTruth::Noisy)
    }

    pub(crate) fn based_edge(
        &self,
        rng: &mut Pcg64,
        follower: UserId,
        profile: &[(CityId, f64)],
        users_at: &[Vec<UserId>],
        city_user_counts: &[f64],
        city_alias: &mut [Option<AliasTable>],
    ) -> Option<(FollowEdge, EdgeTruth)> {
        let x = sample_profile(rng, profile);
        if city_alias[x.index()].is_none() {
            let row = self.gaz.distances().row(x.index());
            let weights: Vec<f64> =
                row.iter()
                    .zip(city_user_counts)
                    .map(|(&d, &cnt)| {
                        if cnt == 0.0 {
                            0.0
                        } else {
                            cnt * self.config.power_law.kernel(d as f64)
                        }
                    })
                    .collect();
            city_alias[x.index()] = AliasTable::new(&weights);
        }
        let table = city_alias[x.index()].as_ref()?;
        for _ in 0..16 {
            let y = CityId(table.sample(rng) as u32);
            let pool = &users_at[y.index()];
            if pool.is_empty() {
                continue;
            }
            let friend = pool[rng.next_bounded(pool.len())];
            if friend != follower {
                return Some((FollowEdge { follower, friend }, EdgeTruth::Based { x, y }));
            }
        }
        None
    }

    /// Step 4: expose registered home locations, optionally corrupted.
    fn generate_registrations(&self, profiles: &[Vec<(CityId, f64)>]) -> Vec<Option<CityId>> {
        let mut rng = self.phase_rng(4);
        let n_cities = self.gaz.num_cities();
        profiles
            .iter()
            .map(|p| {
                if !rng.bernoulli(self.config.registered_fraction) {
                    return None;
                }
                if self.config.label_noise_fraction > 0.0
                    && rng.bernoulli(self.config.label_noise_fraction)
                {
                    // A wrong label: any city other than the true home.
                    loop {
                        let c = CityId(rng.next_bounded(n_cities) as u32);
                        if c != p[0].0 || n_cities == 1 {
                            return Some(c);
                        }
                    }
                }
                Some(p[0].0)
            })
            .collect()
    }
}

/// Draws a city from a sparse profile (weights sum to 1).
pub(crate) fn sample_profile(rng: &mut Pcg64, profile: &[(CityId, f64)]) -> CityId {
    let mut u = rng.next_f64();
    for &(c, w) in profile {
        u -= w;
        if u < 0.0 {
            return c;
        }
    }
    profile.last().expect("profiles are non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_gaz() -> Gazetteer {
        Gazetteer::us_cities()
    }

    fn generate(num_users: usize, seed: u64) -> GeneratedData {
        let gaz = small_gaz();
        let config = GeneratorConfig { num_users, seed, ..Default::default() };
        Generator::new(&gaz, config).generate()
    }

    #[test]
    fn output_is_valid() {
        let gaz = small_gaz();
        let data = generate(500, 7);
        assert_eq!(data.dataset.validate(gaz.num_cities(), gaz.num_venues()), Ok(()));
        assert_eq!(data.truth.validate(gaz.num_cities()), Ok(()));
        assert_eq!(data.dataset.num_users(), 500);
        assert_eq!(data.dataset.edges.len(), data.truth.edge_truth.len());
        assert_eq!(data.dataset.mentions.len(), data.truth.mention_truth.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(300, 11);
        let b = generate(300, 11);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(300, 1);
        let b = generate(300, 2);
        assert_ne!(a.dataset.edges, b.dataset.edges);
    }

    #[test]
    fn mean_degrees_match_config() {
        let data = generate(2_000, 13);
        let mean_friends = data.dataset.num_edges() as f64 / 2_000.0;
        // Dedup trims a little below the Poisson mean; stay within 15%.
        assert!((mean_friends - 14.8).abs() < 2.2, "mean friends {mean_friends}");
        let mean_mentions = data.dataset.num_mentions() as f64 / 2_000.0;
        assert!((mean_mentions - 29.0).abs() < 1.5, "mean mentions {mean_mentions}");
    }

    #[test]
    fn multi_location_fraction_matches_config() {
        let data = generate(2_000, 17);
        let multi = data.truth.multi_location_users().len() as f64 / 2_000.0;
        assert!((multi - 0.35).abs() < 0.04, "multi fraction {multi}");
    }

    #[test]
    fn noisy_fractions_match_config() {
        let data = generate(2_000, 19);
        let noisy_edges =
            data.truth.edge_truth.iter().filter(|t| matches!(t, EdgeTruth::Noisy)).count() as f64
                / data.dataset.num_edges() as f64;
        // Fallbacks convert a few location-based draws into noisy ones.
        assert!((0.10..0.25).contains(&noisy_edges), "noisy edge rate {noisy_edges}");
        let noisy_mentions =
            data.truth.mention_truth.iter().filter(|t| matches!(t, MentionTruth::Noisy)).count()
                as f64
                / data.dataset.num_mentions() as f64;
        assert!((0.15..0.26).contains(&noisy_mentions), "noisy mention rate {noisy_mentions}");
    }

    #[test]
    fn based_edges_respect_truth_assignments() {
        let gaz = small_gaz();
        let data = generate(800, 23);
        for (e, t) in data.dataset.edges.iter().zip(&data.truth.edge_truth) {
            if let EdgeTruth::Based { x, y } = t {
                let fp = &data.truth.profiles[e.follower.index()];
                let gp = &data.truth.profiles[e.friend.index()];
                assert!(fp.iter().any(|&(c, _)| c == *x), "x not in follower profile");
                assert!(gp.iter().any(|&(c, _)| c == *y), "y not in friend profile");
                assert!(x.index() < gaz.num_cities());
            }
        }
    }

    #[test]
    fn based_mentions_respect_truth_assignments() {
        let data = generate(500, 29);
        for (m, t) in data.dataset.mentions.iter().zip(&data.truth.mention_truth) {
            if let MentionTruth::Based { z } = t {
                let p = &data.truth.profiles[m.user.index()];
                assert!(p.iter().any(|&(c, _)| c == *z), "z not in user profile");
            }
        }
    }

    #[test]
    fn based_edges_are_distance_skewed() {
        // Location-based edges should be dramatically closer than noisy
        // ones: the whole premise of Fig. 3(a).
        let gaz = small_gaz();
        let data = generate(2_000, 31);
        let mut based = Vec::new();
        let mut noisy = Vec::new();
        for (e, t) in data.dataset.edges.iter().zip(&data.truth.edge_truth) {
            let hf = data.truth.profiles[e.follower.index()][0].0;
            let hg = data.truth.profiles[e.friend.index()][0].0;
            let d = gaz.distance(hf, hg);
            match t {
                EdgeTruth::Based { .. } => based.push(d),
                EdgeTruth::Noisy => noisy.push(d),
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let med_based = med(&mut based);
        let med_noisy = med(&mut noisy);
        assert!(med_based < med_noisy * 0.5, "based median {med_based} vs noisy {med_noisy}");
    }

    #[test]
    fn registered_fraction_respected() {
        let gaz = small_gaz();
        let config = GeneratorConfig {
            num_users: 1_000,
            seed: 37,
            registered_fraction: 0.16, // Twitter-wide rate from the paper
            ..Default::default()
        };
        let data = Generator::new(&gaz, config).generate();
        let frac = data.dataset.num_labeled() as f64 / 1_000.0;
        assert!((frac - 0.16).abs() < 0.04, "labeled fraction {frac}");
        // Registered locations, where present, equal the true home.
        for (i, r) in data.dataset.registered.iter().enumerate() {
            if let Some(c) = r {
                assert_eq!(*c, data.truth.home(UserId(i as u32)));
            }
        }
    }

    #[test]
    fn label_noise_corrupts_the_requested_fraction() {
        let gaz = small_gaz();
        let config = GeneratorConfig {
            num_users: 1_000,
            seed: 97,
            label_noise_fraction: 0.25,
            ..Default::default()
        };
        let data = Generator::new(&gaz, config).generate();
        let wrong = (0..1_000u32)
            .filter(|&u| {
                data.dataset.registered[u as usize].is_some_and(|c| c != data.truth.home(UserId(u)))
            })
            .count();
        let rate = wrong as f64 / data.dataset.num_labeled() as f64;
        assert!((rate - 0.25).abs() < 0.05, "noise rate {rate}");
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn bad_config_rejected() {
        let gaz = small_gaz();
        Generator::new(&gaz, GeneratorConfig { noisy_edge_fraction: 1.5, ..Default::default() });
    }
}
