//! Deterministic synthetic expansion of the city table.
//!
//! The paper's candidate set has ~5,000 cities; our embedded real table has
//! a few hundred. When an experiment asks for more, we mint additional small
//! towns with realistic properties:
//!
//! * names assembled from prefix/suffix component lists, which *naturally*
//!   collide across states (many "Oakville"s), reproducing the gazetteer
//!   ambiguity the model must cope with;
//! * placement clustered around existing anchor cities (towns follow
//!   metros) with a uniform rural remainder;
//! * Zipf-decaying populations below the real table's tail.
//!
//! Everything is a pure function of the seed, so a gazetteer of size N is
//! reproducible across runs and machines.

use crate::city::City;
use mlp_geo::{BoundingBox, GeoPoint};
use mlp_sampling::{AliasTable, Pcg64};

/// Configuration for the synthetic expansion.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total number of cities the gazetteer should contain (real + synthetic).
    /// Values at or below the real table size leave the table untouched.
    pub total_cities: usize,
    /// RNG seed; the expansion is a pure function of this.
    pub seed: u64,
    /// Fraction of synthetic towns placed near an anchor metro (the rest are
    /// uniform over the continental US).
    pub clustered_fraction: f64,
    /// Maximum distance in miles from the anchor for clustered placement.
    pub cluster_radius_miles: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            total_cities: 300,
            seed: 0x5EED,
            clustered_fraction: 0.7,
            cluster_radius_miles: 60.0,
        }
    }
}

const NAME_PREFIXES: &[&str] = &[
    "oak", "cedar", "maple", "pine", "elm", "spring", "fair", "green", "glen", "lake", "river",
    "hill", "mill", "clear", "west", "east", "north", "south", "new", "mount", "fort", "grand",
    "sunny", "stone", "bridge", "ash", "birch", "clay", "cross", "deer",
];

const NAME_SUFFIXES: &[&str] = &[
    "ville", "field", "ton", "burg", "wood", "dale", "port", "ford", "haven", "brook", "side",
    "view", "land", "creek", "falls", "grove", "ridge", "spring", "crest", "point",
];

/// US state codes assigned to synthetic towns, keyed by rough longitude band
/// so a town near Los Angeles is labeled CA, not NJ.
fn state_for(point: GeoPoint) -> &'static str {
    let lon = point.lon();
    let lat = point.lat();
    match () {
        _ if lon < -114.0 && lat >= 42.0 => "OR",
        _ if lon < -114.0 && lat < 35.0 => "CA",
        _ if lon < -114.0 => "NV",
        _ if lon < -104.0 && lat >= 41.0 => "WY",
        _ if lon < -104.0 && lat < 33.0 => "NM",
        _ if lon < -104.0 => "CO",
        _ if lon < -94.0 && lat >= 43.0 => "MN",
        _ if lon < -94.0 && lat < 33.5 => "TX",
        _ if lon < -94.0 => "KS",
        _ if lon < -84.0 && lat >= 41.5 => "MI",
        _ if lon < -84.0 && lat < 33.0 => "FL",
        _ if lon < -84.0 => "TN",
        _ if lat >= 41.0 => "NY",
        _ if lat < 34.0 => "GA",
        _ => "VA",
    }
}

/// Expands `base` (the real table) to `config.total_cities` entries.
///
/// Synthetic towns never duplicate a `(name, state)` pair already present;
/// name collisions *across* states are allowed and intended.
pub fn expand(base: &[City], config: &SynthConfig) -> Vec<City> {
    let mut cities = base.to_vec();
    if config.total_cities <= cities.len() {
        return cities;
    }
    let mut rng = Pcg64::new(config.seed);
    let mut taken: std::collections::HashSet<(String, String)> =
        cities.iter().map(|c| (c.name.clone(), c.state.clone())).collect();

    // Anchor selection is population-weighted: towns cluster around metros.
    let weights: Vec<f64> = base.iter().map(|c| c.population as f64).collect();
    let anchors = AliasTable::new(&weights);
    let bbox = BoundingBox::CONTINENTAL_US;
    let n_needed = config.total_cities - cities.len();
    let mut rank = 0u64;
    let mut attempts = 0usize;
    while cities.len() < config.total_cities {
        attempts += 1;
        assert!(
            attempts < config.total_cities * 200,
            "name space exhausted: cannot mint {n_needed} unique towns"
        );
        let name = format!(
            "{}{}",
            NAME_PREFIXES[rng.next_bounded(NAME_PREFIXES.len())],
            NAME_SUFFIXES[rng.next_bounded(NAME_SUFFIXES.len())]
        );
        // The Bernoulli draw happens unconditionally so the RNG stream is
        // independent of whether anchors exist.
        let clustered = rng.bernoulli(config.clustered_fraction);
        let point = match anchors.as_ref().filter(|_| clustered) {
            Some(anchor_alias) => {
                let anchor = &base[anchor_alias.sample(&mut rng)];
                jitter_near(&mut rng, anchor.center, config.cluster_radius_miles, &bbox)
            }
            None => uniform_in(&mut rng, &bbox),
        };
        let state = state_for(point).to_string();
        if !taken.insert((name.clone(), state.clone())) {
            continue; // exact (name, state) duplicate; re-draw
        }
        // Zipf-ish tail below the real table: 20k down to ~1k.
        rank += 1;
        let population = (20_000.0 / (1.0 + rank as f64 / n_needed as f64 * 9.0)) as u64 + 1_000;
        cities.push(City { name, state, center: point, population });
    }
    cities
}

fn jitter_near(
    rng: &mut Pcg64,
    anchor: GeoPoint,
    radius_miles: f64,
    bbox: &BoundingBox,
) -> GeoPoint {
    // Uniform direction, triangular-ish radial falloff (denser near anchor).
    let theta = rng.next_f64() * std::f64::consts::TAU;
    let r = radius_miles * rng.next_f64().sqrt() * rng.next_f64(); // bias inward
    let dlat = r * theta.sin() / 69.0;
    let coslat = anchor.lat_rad().cos().max(0.2);
    let dlon = r * theta.cos() / (69.0 * coslat);
    GeoPoint::new(
        (anchor.lat() + dlat).clamp(bbox.min_lat(), bbox.max_lat()),
        (anchor.lon() + dlon).clamp(bbox.min_lon(), bbox.max_lon()),
    )
    .expect("clamped coordinates are valid")
}

fn uniform_in(rng: &mut Pcg64, bbox: &BoundingBox) -> GeoPoint {
    GeoPoint::new(
        bbox.min_lat() + rng.next_f64() * bbox.lat_span(),
        bbox.min_lon() + rng.next_f64() * bbox.lon_span(),
    )
    .expect("in-box coordinates are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::US_CITIES;

    fn base() -> Vec<City> {
        US_CITIES
            .iter()
            .map(|&(name, state, lat, lon, pop)| City {
                name: name.to_string(),
                state: state.to_string(),
                center: GeoPoint::new(lat, lon).unwrap(),
                population: pop,
            })
            .collect()
    }

    #[test]
    fn expansion_reaches_requested_size() {
        let cfg = SynthConfig { total_cities: 500, ..Default::default() };
        let cities = expand(&base(), &cfg);
        assert_eq!(cities.len(), 500);
    }

    #[test]
    fn small_request_leaves_base_untouched() {
        let b = base();
        let cfg = SynthConfig { total_cities: 10, ..Default::default() };
        assert_eq!(expand(&b, &cfg), b);
    }

    #[test]
    fn expansion_is_deterministic() {
        let cfg = SynthConfig { total_cities: 400, seed: 99, ..Default::default() };
        let a = expand(&base(), &cfg);
        let b = expand(&base(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let b = base();
        let a = expand(&b, &SynthConfig { total_cities: 400, seed: 1, ..Default::default() });
        let c = expand(&b, &SynthConfig { total_cities: 400, seed: 2, ..Default::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn no_duplicate_name_state_pairs() {
        let cfg = SynthConfig { total_cities: 800, ..Default::default() };
        let cities = expand(&base(), &cfg);
        let mut seen = std::collections::HashSet::new();
        for c in &cities {
            assert!(seen.insert((c.name.clone(), c.state.clone())), "dup {} {}", c.name, c.state);
        }
    }

    #[test]
    fn synthetic_towns_are_inside_the_us_box() {
        let cfg = SynthConfig { total_cities: 600, ..Default::default() };
        let cities = expand(&base(), &cfg);
        let bbox = BoundingBox::CONTINENTAL_US;
        for c in &cities[US_CITIES.len()..] {
            assert!(bbox.contains(c.center), "{} {:?}", c.name, c.center);
            assert!(c.population >= 1_000);
        }
    }

    #[test]
    fn synthetic_expansion_adds_cross_state_ambiguity() {
        let cfg = SynthConfig { total_cities: 1_000, ..Default::default() };
        let cities = expand(&base(), &cfg);
        let mut by_name: std::collections::HashMap<&str, usize> = Default::default();
        for c in &cities[US_CITIES.len()..] {
            *by_name.entry(c.name.as_str()).or_default() += 1;
        }
        let ambiguous = by_name.values().filter(|&&n| n > 1).count();
        assert!(ambiguous > 20, "synthetic names should collide, got {ambiguous}");
    }
}
