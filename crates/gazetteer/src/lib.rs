//! Place-name substrate: the gazetteer the MLP model classifies against.
//!
//! The paper takes its candidate locations `L` from the Census 2000 U.S.
//! Gazetteer and its venue vocabulary `V` from the same source ("we
//! considered all cities listed in the Census 2000 U.S. Gazetteer"). We
//! reproduce the properties the model actually interacts with:
//!
//! * **city-level locations** with coordinates and populations — a static
//!   table of real U.S. cities ([`data`]) plus a deterministic synthetic
//!   expansion ([`synth`]) up to any requested |L|;
//! * **ambiguous venue names** — the paper stresses that "there are 19 towns
//!   named Princeton in the States"; our table and the synthetic name
//!   generator both produce many-to-one name→city mappings, so a tweeted
//!   venue resolves to a *set* of candidate cities;
//! * **venue vocabulary** — city names plus per-city local entities
//!   (airports, downtowns, universities…), mirroring the paper's notion of a
//!   venue as "a city, a place, or a local entity";
//! * **venue extraction** ([`extract`]) — tokenizing tweet text and matching
//!   n-grams against the vocabulary, the step the paper performs when it
//!   "extracted venues from tweets based on the same gazetteer".

pub mod city;
pub mod data;
pub mod extract;
pub mod gazetteer;
pub mod synth;
pub mod venue;

pub use city::{City, CityId};
pub use extract::VenueExtractor;
pub use gazetteer::Gazetteer;
pub use synth::SynthConfig;
pub use venue::{VenueId, VenueKind};
