//! The gazetteer: candidate locations `L` + venue vocabulary `V`.

use crate::city::{City, CityId};
use crate::data::US_CITIES;
use crate::synth::{expand, SynthConfig};
use crate::venue::{
    local_entity_count, normalize_name, Venue, VenueId, VenueKind, LOCAL_ENTITY_TEMPLATES,
};
use mlp_geo::{DistanceMatrix, GeoPoint, GridIndex};
use std::collections::HashMap;

/// The gazetteer the whole system runs against.
///
/// Owns the candidate city list, the venue vocabulary, the name→id indexes
/// for both, and the precomputed geometry (pairwise city distances and a
/// spatial grid).
#[derive(Debug, Clone)]
pub struct Gazetteer {
    cities: Vec<City>,
    venues: Vec<Venue>,
    /// city name → all cities sharing it.
    city_name_index: HashMap<String, Vec<CityId>>,
    /// venue surface form → id.
    venue_name_index: HashMap<String, VenueId>,
    /// city → venues anchored at it (own name + its local entities).
    venues_by_city: Vec<Vec<VenueId>>,
    distances: DistanceMatrix,
    grid: GridIndex,
}

impl Gazetteer {
    /// Builds the gazetteer from the embedded real-city table only.
    pub fn us_cities() -> Self {
        Self::from_cities(
            US_CITIES
                .iter()
                .map(|&(name, state, lat, lon, pop)| City {
                    name: name.to_string(),
                    state: state.to_string(),
                    center: GeoPoint::new(lat, lon).expect("embedded coordinates are valid"),
                    population: pop,
                })
                .collect(),
        )
    }

    /// Builds the gazetteer with a synthetic expansion to `config.total_cities`.
    pub fn with_synthetic(config: &SynthConfig) -> Self {
        let base = Self::us_cities();
        Self::from_cities(expand(&base.cities, config))
    }

    /// Builds from an explicit city list (used by tests).
    ///
    /// # Panics
    /// Panics on an empty list.
    pub fn from_cities(cities: Vec<City>) -> Self {
        assert!(!cities.is_empty(), "gazetteer needs at least one city");
        let mut city_name_index: HashMap<String, Vec<CityId>> = HashMap::new();
        for (i, c) in cities.iter().enumerate() {
            city_name_index.entry(c.name.clone()).or_default().push(CityId(i as u32));
        }

        // Venue vocabulary: one CityName venue per distinct name, plus
        // local entities per city scaled by population.
        let mut venues = Vec::new();
        let mut venue_name_index = HashMap::new();
        let mut venues_by_city: Vec<Vec<VenueId>> = vec![Vec::new(); cities.len()];
        let mut names: Vec<&String> = city_name_index.keys().collect();
        names.sort(); // deterministic venue ids
        for name in names {
            let ids = &city_name_index[name];
            let vid = VenueId(venues.len() as u32);
            venues.push(Venue {
                name: name.clone(),
                kind: VenueKind::CityName,
                cities: ids.clone(),
            });
            venue_name_index.insert(normalize_name(name), vid);
            for &cid in ids {
                venues_by_city[cid.index()].push(vid);
            }
        }
        for (i, c) in cities.iter().enumerate() {
            let count = local_entity_count(c.population);
            for template in LOCAL_ENTITY_TEMPLATES.iter().take(count) {
                let name = template.replace("{}", &c.name);
                // A template instance may collide across same-named cities
                // ("princeton university" from princeton NJ and WV): merge
                // them into one ambiguous venue, like a real gazetteer.
                let key = normalize_name(&name);
                let vid = match venue_name_index.get(&key) {
                    Some(&vid) => {
                        let v = &mut venues[vid.index()];
                        if !v.cities.contains(&CityId(i as u32)) {
                            v.cities.push(CityId(i as u32));
                        }
                        vid
                    }
                    None => {
                        let vid = VenueId(venues.len() as u32);
                        venues.push(Venue {
                            name: name.clone(),
                            kind: VenueKind::LocalEntity,
                            cities: vec![CityId(i as u32)],
                        });
                        venue_name_index.insert(key, vid);
                        vid
                    }
                };
                venues_by_city[i].push(vid);
            }
        }

        let points: Vec<GeoPoint> = cities.iter().map(|c| c.center).collect();
        let distances = DistanceMatrix::build(&points);
        let grid = GridIndex::build(&points, 100.0).expect("non-empty city list");
        Self { cities, venues, city_name_index, venue_name_index, venues_by_city, distances, grid }
    }

    /// Number of candidate locations |L|.
    pub fn num_cities(&self) -> usize {
        self.cities.len()
    }

    /// Number of venue names |V|.
    pub fn num_venues(&self) -> usize {
        self.venues.len()
    }

    /// The city record for `id`.
    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.index()]
    }

    /// All cities, indexable by `CityId`.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// The venue record for `id`.
    pub fn venue(&self, id: VenueId) -> &Venue {
        &self.venues[id.index()]
    }

    /// All venues, indexable by `VenueId`.
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }

    /// Cities sharing `name` (lower-cased exact match).
    pub fn cities_named(&self, name: &str) -> &[CityId] {
        self.city_name_index.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Looks up a city by `(name, state)`.
    pub fn city_by_name_state(&self, name: &str, state: &str) -> Option<CityId> {
        self.cities_named(name).iter().copied().find(|&id| self.cities[id.index()].state == state)
    }

    /// The venue id for a surface form, if in vocabulary. The lookup is
    /// period- and case-insensitive (see [`normalize_name`]).
    pub fn venue_by_name(&self, name: &str) -> Option<VenueId> {
        self.venue_name_index.get(&normalize_name(name)).copied()
    }

    /// The set of cities a tweeted venue may refer to — the resolution set
    /// used to build candidacy vectors (paper Sec. 4.3).
    pub fn resolve_venue(&self, id: VenueId) -> &[CityId] {
        &self.venues[id.index()].cities
    }

    /// Venues anchored at a city: its own name plus its local entities.
    pub fn venues_of_city(&self, id: CityId) -> &[VenueId] {
        &self.venues_by_city[id.index()]
    }

    /// Precomputed pairwise city distances in miles.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// Distance in miles between two cities.
    #[inline]
    pub fn distance(&self, a: CityId, b: CityId) -> f64 {
        self.distances.get(a.index(), b.index())
    }

    /// Spatial grid over city centers.
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// Cities within `radius` miles of `id` (including itself).
    pub fn cities_within(&self, id: CityId, radius: f64) -> Vec<CityId> {
        self.distances.within(id.index(), radius).into_iter().map(|i| CityId(i as u32)).collect()
    }

    /// Population weights aligned with city ids (for alias sampling).
    pub fn population_weights(&self) -> Vec<f64> {
        self.cities.iter().map(|c| c.population as f64).collect()
    }

    /// The nearest city to an arbitrary point, with distance in miles.
    pub fn nearest_city(&self, p: GeoPoint) -> (CityId, f64) {
        let (id, d) = self.grid.nearest(p);
        (CityId(id), d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_gazetteer_basic_shape() {
        let g = Gazetteer::us_cities();
        assert!(g.num_cities() >= 250);
        assert!(g.num_venues() > g.num_cities() / 2, "city-name venues merge duplicates");
        assert_eq!(g.distances().len(), g.num_cities());
    }

    #[test]
    fn city_lookup_by_name_state() {
        let g = Gazetteer::us_cities();
        let austin = g.city_by_name_state("austin", "TX").unwrap();
        assert_eq!(g.city(austin).name, "austin");
        assert_eq!(g.city(austin).state, "TX");
        assert!(g.city_by_name_state("austin", "ZZ").is_none());
    }

    #[test]
    fn ambiguous_names_resolve_to_many_cities() {
        let g = Gazetteer::us_cities();
        let princetons = g.cities_named("princeton");
        assert!(princetons.len() >= 5, "got {}", princetons.len());
        let vid = g.venue_by_name("princeton").unwrap();
        assert_eq!(g.resolve_venue(vid).len(), princetons.len());
        assert_eq!(g.venue(vid).kind, VenueKind::CityName);
        assert!(g.venue(vid).is_ambiguous());
    }

    #[test]
    fn local_entities_anchor_to_their_city() {
        let g = Gazetteer::us_cities();
        let la = g.city_by_name_state("los angeles", "CA").unwrap();
        let vids = g.venues_of_city(la);
        // Own name + all templates (LA is a 3.8M metro).
        assert_eq!(vids.len(), 1 + LOCAL_ENTITY_TEMPLATES.len());
        let airport = g.venue_by_name("los angeles airport").unwrap();
        assert_eq!(g.resolve_venue(airport), &[la]);
        assert_eq!(g.venue(airport).kind, VenueKind::LocalEntity);
    }

    #[test]
    fn shared_entity_names_merge_across_same_named_cities() {
        let g = Gazetteer::us_cities();
        // Multiple Springfields with pop >= 100k exist (MO, MA, IL), so
        // "springfield university" should be ambiguous.
        let vid = g.venue_by_name("springfield airport").unwrap();
        assert!(g.resolve_venue(vid).len() >= 2);
    }

    #[test]
    fn distance_between_known_cities() {
        let g = Gazetteer::us_cities();
        let austin = g.city_by_name_state("austin", "TX").unwrap();
        let rr = g.city_by_name_state("round rock", "TX").unwrap();
        let la = g.city_by_name_state("los angeles", "CA").unwrap();
        assert!(g.distance(austin, rr) < 20.0);
        let d_la = g.distance(austin, la);
        assert!((1200.0..1300.0).contains(&d_la), "Austin–LA ≈ 1,230 mi, got {d_la}");
    }

    #[test]
    fn cities_within_radius() {
        let g = Gazetteer::us_cities();
        let la = g.city_by_name_state("los angeles", "CA").unwrap();
        let near = g.cities_within(la, 40.0);
        assert!(near.contains(&la));
        let names: Vec<&str> = near.iter().map(|&id| g.city(id).name.as_str()).collect();
        assert!(names.contains(&"santa monica"));
        assert!(names.contains(&"burbank"));
        assert!(!names.contains(&"san diego"), "SD is ~120 mi away");
    }

    #[test]
    fn nearest_city_to_point() {
        let g = Gazetteer::us_cities();
        let p = GeoPoint::new(30.30, -97.75).unwrap(); // just north of Austin
        let (id, d) = g.nearest_city(p);
        assert_eq!(g.city(id).name, "austin");
        assert!(d < 10.0);
    }

    #[test]
    fn synthetic_gazetteer_scales() {
        let g = Gazetteer::with_synthetic(&SynthConfig { total_cities: 500, ..Default::default() });
        assert_eq!(g.num_cities(), 500);
        assert_eq!(g.distances().len(), 500);
        // Every synthetic city has at least its own name as a venue.
        for i in 0..500 {
            assert!(!g.venues_of_city(CityId(i as u32)).is_empty());
        }
    }

    #[test]
    fn venue_ids_are_deterministic() {
        let a = Gazetteer::us_cities();
        let b = Gazetteer::us_cities();
        assert_eq!(a.num_venues(), b.num_venues());
        for (va, vb) in a.venues().iter().zip(b.venues()) {
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn population_weights_align() {
        let g = Gazetteer::us_cities();
        let w = g.population_weights();
        assert_eq!(w.len(), g.num_cities());
        let nyc = g.city_by_name_state("new york", "NY").unwrap();
        assert_eq!(w[nyc.index()], 8_175_000.0);
    }
}
