//! Venue extraction from tweet text.
//!
//! The paper "extracted venues from \[tweets\] based on the same gazetteer".
//! We reproduce that step: lower-case word tokenization, then greedy
//! longest-first n-gram matching against the venue vocabulary, so
//! `"see gaga in hollywood"` yields the venue `hollywood` and
//! `"at princeton university today"` yields `princeton university`
//! (not the shorter, more ambiguous `princeton`).

use crate::gazetteer::Gazetteer;
use crate::venue::VenueId;

/// Maximum n-gram length tried by the matcher; the vocabulary's longest
/// surface forms ("north las vegas convention center") stay under this.
const MAX_NGRAM: usize = 5;

/// Tokenizes and matches venue mentions against a gazetteer.
#[derive(Debug, Clone, Copy)]
pub struct VenueExtractor<'g> {
    gazetteer: &'g Gazetteer,
}

impl<'g> VenueExtractor<'g> {
    /// Creates an extractor bound to a gazetteer.
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        Self { gazetteer }
    }

    /// Lower-cases and splits `text` into word tokens. Periods are dropped
    /// entirely (both the abbreviation dot in "st. louis" and sentence-final
    /// dots), matching the normalisation applied to vocabulary keys, while
    /// `'` and `-` survive inside a word ("winston-salem").
    pub fn tokenize(text: &str) -> Vec<String> {
        let lower = text.to_lowercase();
        let mut tokens = Vec::new();
        let mut cur = String::new();
        for ch in lower.chars() {
            if ch.is_alphanumeric() || (matches!(ch, '\'' | '-') && !cur.is_empty()) {
                cur.push(ch);
            } else if ch == '.' {
                continue; // "st. louis" -> "st louis", "austin." -> "austin"
            } else if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            tokens.push(cur);
        }
        tokens
    }

    /// Extracts all venue mentions from `text`, left to right, greedy
    /// longest-match. A token participates in at most one mention.
    pub fn extract(&self, text: &str) -> Vec<VenueId> {
        let tokens = Self::tokenize(text);
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = None;
            let max_n = MAX_NGRAM.min(tokens.len() - i);
            for n in (1..=max_n).rev() {
                let candidate = tokens[i..i + n].join(" ");
                if let Some(vid) = self.gazetteer.venue_by_name(&candidate) {
                    matched = Some((vid, n));
                    break;
                }
            }
            match matched {
                Some((vid, n)) => {
                    out.push(vid);
                    i += n;
                }
                None => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> Gazetteer {
        Gazetteer::us_cities()
    }

    #[test]
    fn tokenize_basic() {
        let toks = VenueExtractor::tokenize("Want to go to Honolulu for Spring vacation!");
        assert_eq!(toks, vec!["want", "to", "go", "to", "honolulu", "for", "spring", "vacation"]);
    }

    #[test]
    fn tokenize_normalizes_periods_keeps_other_inner_punctuation() {
        assert_eq!(VenueExtractor::tokenize("st. louis"), vec!["st", "louis"]);
        assert_eq!(VenueExtractor::tokenize("winston-salem!"), vec!["winston-salem"]);
        assert_eq!(VenueExtractor::tokenize("I'm in Austin."), vec!["i'm", "in", "austin"]);
    }

    #[test]
    fn extracts_city_with_abbreviation_dot() {
        let g = gaz();
        let ex = VenueExtractor::new(&g);
        let found = ex.extract("back home in St. Louis tonight");
        assert_eq!(found.len(), 1);
        assert_eq!(g.venue(found[0]).name, "st. louis");
    }

    #[test]
    fn tokenize_empty_and_symbols() {
        assert!(VenueExtractor::tokenize("").is_empty());
        assert!(VenueExtractor::tokenize("!!! ??? ...").is_empty());
    }

    #[test]
    fn extracts_single_city_mention() {
        let g = gaz();
        let ex = VenueExtractor::new(&g);
        let found = ex.extract("See Gaga in Hollywood.");
        assert_eq!(found.len(), 1);
        assert_eq!(g.venue(found[0]).name, "hollywood");
    }

    #[test]
    fn extracts_multiword_city() {
        let g = gaz();
        let ex = VenueExtractor::new(&g);
        let found = ex.extract("flying to los angeles tomorrow");
        assert_eq!(found.len(), 1);
        assert_eq!(g.venue(found[0]).name, "los angeles");
    }

    #[test]
    fn longest_match_wins() {
        let g = gaz();
        let ex = VenueExtractor::new(&g);
        // "downtown princeton" is a LocalEntity; greedy matching must not
        // stop at the bare city name "princeton".
        let found = ex.extract("walking around downtown princeton this fall");
        assert_eq!(found.len(), 1);
        assert_eq!(g.venue(found[0]).name, "downtown princeton");
    }

    #[test]
    fn multiple_mentions_in_order() {
        let g = gaz();
        let ex = VenueExtractor::new(&g);
        let found = ex.extract("praying for my hometown. houston is wilding out. miss austin too");
        let names: Vec<&str> = found.iter().map(|&v| g.venue(v).name.as_str()).collect();
        assert_eq!(names, vec!["houston", "austin"]);
    }

    #[test]
    fn no_mentions_yields_empty() {
        let g = gaz();
        let ex = VenueExtractor::new(&g);
        assert!(ex.extract("good morning everyone, coffee time").is_empty());
    }

    #[test]
    fn tokens_not_reused_across_mentions() {
        let g = gaz();
        let ex = VenueExtractor::new(&g);
        // "new york" must consume both tokens; "york" alone isn't a venue so
        // exactly one mention results.
        let found = ex.extract("new york new york");
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|&v| g.venue(v).name == "new york"));
    }

    #[test]
    fn case_insensitive() {
        let g = gaz();
        let ex = VenueExtractor::new(&g);
        let a = ex.extract("AUSTIN");
        let b = ex.extract("austin");
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }
}
