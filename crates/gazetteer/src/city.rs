//! City records and identifiers.

use mlp_geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// Index of a city in a [`crate::Gazetteer`] — the paper's location label
/// `l ∈ L`.
///
/// A newtype rather than a bare `u32` so location ids cannot be confused
/// with user ids, venue ids, or counts anywhere in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct CityId(pub u32);

impl CityId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A candidate location: one city-level entry of the gazetteer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// Lower-case city name, e.g. `"springfield"`. Not unique: name
    /// ambiguity across states is deliberate and load-bearing.
    pub name: String,
    /// Two-letter state code, upper-case, e.g. `"IL"`.
    pub state: String,
    /// City-centre coordinates.
    pub center: GeoPoint,
    /// Approximate population; drives home-city sampling in the generator
    /// and venue-popularity priors.
    pub population: u64,
}

impl City {
    /// `"springfield, IL"` — the display form used in tables and examples.
    pub fn full_name(&self) -> String {
        format!("{}, {}", self.name, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_id_display_and_index() {
        let id = CityId(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "L17");
    }

    #[test]
    fn full_name_formats() {
        let c = City {
            name: "austin".to_string(),
            state: "TX".to_string(),
            center: GeoPoint::new(30.2672, -97.7431).unwrap(),
            population: 790_390,
        };
        assert_eq!(c.full_name(), "austin, TX");
    }

    #[test]
    fn city_id_orders_by_value() {
        assert!(CityId(2) < CityId(10));
    }
}
