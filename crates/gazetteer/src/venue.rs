//! Venue vocabulary: the paper's `V`.
//!
//! A *venue* is "the name for a geo signal, which could be a city (e.g., Los
//! Angeles), a place (e.g., Time Square), or a local entity (e.g., Stanford
//! University)" (paper Sec. 3). Crucially a venue is a **name**, not a
//! location: `"princeton"` is one venue that may resolve to many cities.
//! The location-based tweeting model `ψ_l` is a multinomial over these
//! names.

use crate::city::CityId;
use serde::{Deserialize, Serialize};

/// Index of a venue name in a [`crate::Gazetteer`]'s vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VenueId(pub u32);

impl VenueId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VenueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// What kind of geo signal a venue name is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VenueKind {
    /// A city name shared by every city with that name ("princeton").
    CityName,
    /// A named local entity anchored at one specific city
    /// ("princeton university", "zilker park").
    LocalEntity,
}

/// One entry of the venue vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Venue {
    /// Lower-case surface form matched in tweets.
    pub name: String,
    /// City-name venue or local entity.
    pub kind: VenueKind,
    /// Cities this name can refer to. For a [`VenueKind::CityName`] this is
    /// every city sharing the name; for a [`VenueKind::LocalEntity`] it is a
    /// single anchor city.
    pub cities: Vec<CityId>,
}

impl Venue {
    /// Whether the venue name is geographically ambiguous.
    pub fn is_ambiguous(&self) -> bool {
        self.cities.len() > 1
    }
}

/// Templates used to mint local-entity venue names for a city.
///
/// `{}` is replaced by the city name. Bigger cities get more of these; the
/// counts mimic how a real gazetteer's local entries scale with city size.
pub const LOCAL_ENTITY_TEMPLATES: &[&str] = &[
    "downtown {}",
    "{} airport",
    "{} university",
    "{} stadium",
    "{} zoo",
    "{} convention center",
    "port of {}",
    "{} city hall",
];

/// Normalises a surface form for vocabulary lookup: lower-case with all
/// periods removed, so `"St. Louis"`, `"st. louis"`, and `"st louis"` share
/// one key. Must match the tokenizer's normalisation in [`crate::extract`].
pub fn normalize_name(name: &str) -> String {
    name.to_lowercase().replace('.', "")
}

/// How many local entities a city of the given population receives.
pub fn local_entity_count(population: u64) -> usize {
    match population {
        0..=24_999 => 1,
        25_000..=99_999 => 2,
        100_000..=499_999 => 4,
        500_000..=1_999_999 => 6,
        _ => LOCAL_ENTITY_TEMPLATES.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn venue_id_display() {
        assert_eq!(VenueId(3).to_string(), "V3");
        assert_eq!(VenueId(3).index(), 3);
    }

    #[test]
    fn ambiguity_flag() {
        let v = Venue {
            name: "princeton".into(),
            kind: VenueKind::CityName,
            cities: vec![CityId(1), CityId(2)],
        };
        assert!(v.is_ambiguous());
        let u = Venue {
            name: "princeton university".into(),
            kind: VenueKind::LocalEntity,
            cities: vec![CityId(1)],
        };
        assert!(!u.is_ambiguous());
    }

    #[test]
    fn entity_count_scales_with_population() {
        assert_eq!(local_entity_count(5_000), 1);
        assert_eq!(local_entity_count(50_000), 2);
        assert_eq!(local_entity_count(200_000), 4);
        assert_eq!(local_entity_count(800_000), 6);
        assert_eq!(local_entity_count(8_000_000), LOCAL_ENTITY_TEMPLATES.len());
        // Monotone in population.
        let mut prev = 0;
        for p in [1_000u64, 30_000, 150_000, 600_000, 3_000_000] {
            let c = local_entity_count(p);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn templates_contain_single_placeholder() {
        for t in LOCAL_ENTITY_TEMPLATES {
            assert_eq!(t.matches("{}").count(), 1, "{t}");
        }
    }
}
