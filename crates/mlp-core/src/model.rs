//! The [`Mlp`] façade: build → infer → extract.
//!
//! Ties together candidacy construction, random-model learning, the Gibbs
//! sampler, the optional Gibbs-EM outer loop, and the final extraction of
//! location profiles (Eq. 10) and per-relationship MAP assignments — the
//! outputs the paper's three evaluation tasks consume.

use crate::candidacy::Candidacy;
use crate::config::MlpConfig;
use crate::diagnostics::{Diagnostics, IterationStats};
use crate::em::refit_power_law;
use crate::parallel::parallel_sweep;
use crate::random_models::RandomModels;
use crate::sampler::GibbsSampler;
use crate::snapshot::PosteriorSnapshot;
use mlp_gazetteer::{CityId, Gazetteer};
use mlp_geo::PowerLaw;
use mlp_social::{Adjacency, Dataset, UserId};

/// Final assignment for one following relationship — the paper's
/// "explanation" of the edge (Sec. 5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeAssignment {
    /// Whether the model attributes the edge to the random model F_R.
    pub noisy: bool,
    /// MAP location assignment of the follower.
    pub x: CityId,
    /// MAP location assignment of the friend.
    pub y: CityId,
}

/// Final assignment for one tweeting relationship.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MentionAssignment {
    /// Whether the model attributes the mention to the random model T_R.
    pub noisy: bool,
    /// MAP location assignment of the tweeting user.
    pub z: CityId,
}

/// Everything MLP infers from one dataset.
#[derive(Debug, Clone)]
pub struct MlpResult {
    /// θ̂_i per user: `(city, probability)` sorted by descending
    /// probability; restricted to the user's candidate cities.
    pub profiles: Vec<Vec<(CityId, f64)>>,
    /// Per-edge explanations, aligned with `dataset.edges`.
    pub edge_assignments: Vec<EdgeAssignment>,
    /// Per-mention explanations, aligned with `dataset.mentions`.
    pub mention_assignments: Vec<MentionAssignment>,
    /// The (possibly EM-refined) power law.
    pub power_law: PowerLaw,
    /// Convergence telemetry.
    pub diagnostics: Diagnostics,
    /// Mean candidate-list length (the Sec. 4.3 pruning factor).
    pub mean_candidates: f64,
}

impl MlpResult {
    /// Predicted home location: the argmax of θ̂ (Sec. 4.5: "the one with
    /// the largest probability").
    pub fn home(&self, u: UserId) -> CityId {
        self.profiles[u.index()][0].0
    }

    /// The top-`k` locations of θ̂ — the paper's location-profile output.
    pub fn top_k(&self, u: UserId, k: usize) -> Vec<CityId> {
        self.profiles[u.index()].iter().take(k).map(|&(c, _)| c).collect()
    }

    /// Locations whose probability exceeds `threshold` (the paper's
    /// alternative profile extraction rule).
    pub fn locations_above(&self, u: UserId, threshold: f64) -> Vec<CityId> {
        self.profiles[u.index()].iter().filter(|&&(_, p)| p > threshold).map(|&(c, _)| c).collect()
    }
}

/// The model façade.
pub struct Mlp<'a> {
    gaz: &'a Gazetteer,
    dataset: &'a Dataset,
    config: MlpConfig,
}

impl<'a> Mlp<'a> {
    /// Validates the configuration and binds the model to its inputs.
    ///
    /// When `fit_power_law_from_data` is set (the default), the initial
    /// `(α, β)` are learned from the labeled users here (paper Sec. 4.1), so
    /// both the sampler's initialisation and its conditionals run with a
    /// power law calibrated to *this* dataset.
    pub fn new(
        gaz: &'a Gazetteer,
        dataset: &'a Dataset,
        config: MlpConfig,
    ) -> Result<Self, String> {
        config.validate().map_err(|e| e.to_string())?;
        dataset.validate(gaz.num_cities(), gaz.num_venues())?;
        let mut config = config;
        if config.fit_power_law_from_data {
            if let Some(fit) = crate::fit::fit_power_law_from_labels(gaz, dataset) {
                config.power_law = fit;
            }
        }
        Ok(Self { gaz, dataset, config })
    }

    /// Runs inference end to end and extracts all outputs.
    pub fn run(&self) -> MlpResult {
        self.run_impl(false).0
    }

    /// Runs inference and additionally freezes the trained posterior into
    /// a [`PosteriorSnapshot`] — the artifact warm-start serving
    /// ([`crate::infer`]) predicts unseen users against.
    pub fn run_with_snapshot(&self) -> (MlpResult, PosteriorSnapshot) {
        let (result, snapshot) = self.run_impl(true);
        (result, snapshot.expect("snapshot requested"))
    }

    fn run_impl(&self, want_snapshot: bool) -> (MlpResult, Option<PosteriorSnapshot>) {
        let adj = Adjacency::build(self.dataset);
        let candidacy = Candidacy::build(self.gaz, self.dataset, &adj, &self.config);
        let random = RandomModels::learn(self.dataset, self.gaz.num_venues());
        let mut sampler =
            GibbsSampler::new(self.gaz, self.dataset, &candidacy, &random, &self.config);

        let mut diagnostics = Diagnostics::default();
        let n = self.dataset.num_users();
        let mut prev_homes: Vec<CityId> =
            (0..n).map(|u| sampler.estimate_theta(UserId(u as u32))[0].0).collect();

        let em_rounds = if self.config.gibbs_em { self.config.em_iterations } else { 1 };
        let mut sweep_counter = 0u64;
        for round in 0..em_rounds {
            for iter in 0..self.config.iterations {
                // One entry point for both modes: `parallel_sweep` runs the
                // exact sequential sweep when `threads == 1`.
                let changes = parallel_sweep(&mut sampler, sweep_counter);
                sweep_counter += 1;
                if iter >= self.config.burn_in {
                    sampler.state.accumulate();
                }

                let homes: Vec<CityId> =
                    (0..n).map(|u| sampler.estimate_theta(UserId(u as u32))[0].0).collect();
                let moved = homes.iter().zip(&prev_homes).filter(|(a, b)| a != b).count();
                diagnostics.iterations.push(IterationStats {
                    iteration: (round * self.config.iterations + iter),
                    edge_change_fraction: ratio(changes.edges, self.dataset.num_edges()),
                    mention_change_fraction: ratio(changes.mentions, self.dataset.num_mentions()),
                    home_change_fraction: ratio(moved, n),
                    log_likelihood: sampler.log_likelihood_proxy(),
                });
                prev_homes = homes;
            }
            // M-step: refit (α, β) between rounds.
            if self.config.gibbs_em && round + 1 < em_rounds {
                if let Some(fit) =
                    refit_power_law(self.gaz, self.dataset, &candidacy, &sampler.state, |u| {
                        sampler.estimate_theta(u)[0].0
                    })
                {
                    sampler.power_law = fit;
                    diagnostics.power_law_trace.push((fit.alpha, fit.beta));
                }
            }
        }

        let profiles: Vec<Vec<(CityId, f64)>> =
            (0..n).map(|u| sampler.estimate_theta(UserId(u as u32))).collect();
        let edge_assignments = self.extract_edge_assignments(&sampler, &candidacy, &profiles);
        let mention_assignments = self.extract_mention_assignments(&sampler, &candidacy, &profiles);

        let snapshot = want_snapshot.then(|| PosteriorSnapshot::freeze(&sampler));
        (
            MlpResult {
                profiles,
                edge_assignments,
                mention_assignments,
                power_law: sampler.power_law,
                diagnostics,
                mean_candidates: candidacy.mean_candidates(),
            },
            snapshot,
        )
    }

    /// MAP refinement of per-edge assignments: conditional argmax of
    /// `θ̂ × kernel`, two alternating passes starting from the last sample.
    fn extract_edge_assignments(
        &self,
        sampler: &GibbsSampler<'_>,
        candidacy: &Candidacy,
        profiles: &[Vec<(CityId, f64)>],
    ) -> Vec<EdgeAssignment> {
        let theta = |u: UserId, city: CityId| -> f64 {
            profiles[u.index()].iter().find(|&&(c, _)| c == city).map(|&(_, p)| p).unwrap_or(0.0)
        };
        self.dataset
            .edges
            .iter()
            .enumerate()
            .map(|(s, e)| {
                let (i, j) = (e.follower, e.friend);
                let ci = candidacy.candidates(i);
                let cj = candidacy.candidates(j);
                let noisy = sampler.state.mu[s];
                let mut x = ci[sampler.state.x[s] as usize];
                let mut y = cj[sampler.state.y[s] as usize];
                if noisy {
                    // Profile-only MAP for noisy edges.
                    x = argmax_city(ci, |c| theta(i, c));
                    y = argmax_city(cj, |c| theta(j, c));
                } else {
                    for _ in 0..2 {
                        x = argmax_city(ci, |c| {
                            theta(i, c) * sampler.power_law.kernel(self.gaz.distance(c, y))
                        });
                        y = argmax_city(cj, |c| {
                            theta(j, c) * sampler.power_law.kernel(self.gaz.distance(x, c))
                        });
                    }
                }
                EdgeAssignment { noisy, x, y }
            })
            .collect()
    }

    fn extract_mention_assignments(
        &self,
        sampler: &GibbsSampler<'_>,
        candidacy: &Candidacy,
        profiles: &[Vec<(CityId, f64)>],
    ) -> Vec<MentionAssignment> {
        let theta = |u: UserId, city: CityId| -> f64 {
            profiles[u.index()].iter().find(|&&(c, _)| c == city).map(|&(_, p)| p).unwrap_or(0.0)
        };
        self.dataset
            .mentions
            .iter()
            .enumerate()
            .map(|(k, m)| {
                let i = m.user;
                let ci = candidacy.candidates(i);
                let noisy = sampler.state.nu[k];
                let z = if noisy {
                    argmax_city(ci, |c| theta(i, c))
                } else {
                    argmax_city(ci, |c| theta(i, c) * sampler.venue_term_public(c, m.venue))
                };
                MentionAssignment { noisy, z }
            })
            .collect()
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn argmax_city(cands: &[CityId], score: impl Fn(CityId) -> f64) -> CityId {
    let mut best = cands[0];
    let mut best_score = f64::NEG_INFINITY;
    for &c in cands {
        let s = score(c);
        if s > best_score {
            best = c;
            best_score = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{EdgeTruth, Generator, GeneratorConfig};

    fn run(
        num_users: usize,
        data_seed: u64,
        config: MlpConfig,
    ) -> (MlpResult, mlp_social::GeneratedData, Gazetteer) {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users, seed: data_seed, ..Default::default() },
        )
        .generate();
        let result = Mlp::new(&gaz, &data.dataset, config).unwrap().run();
        (result, data, gaz)
    }

    fn quick_config() -> MlpConfig {
        MlpConfig { iterations: 12, burn_in: 6, ..Default::default() }
    }

    #[test]
    fn result_shape_is_complete() {
        let (result, data, _) = run(150, 61, quick_config());
        assert_eq!(result.profiles.len(), 150);
        assert_eq!(result.edge_assignments.len(), data.dataset.num_edges());
        assert_eq!(result.mention_assignments.len(), data.dataset.num_mentions());
        assert_eq!(result.diagnostics.iterations.len(), 12);
        assert!(result.mean_candidates > 1.0);
        for u in 0..150 {
            let p = &result.profiles[u];
            assert!(!p.is_empty());
            let sum: f64 = p.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn labeled_users_recover_registered_homes() {
        let (result, data, _) = run(300, 67, quick_config());
        let mut hits = 0;
        for u in 0..300u32 {
            if let Some(home) = data.dataset.registered[u as usize] {
                if result.home(UserId(u)) == home {
                    hits += 1;
                }
            }
        }
        let acc = hits as f64 / data.dataset.num_labeled() as f64;
        assert!(acc > 0.85, "labeled-home recovery {acc}");
    }

    #[test]
    fn masked_users_are_predicted_above_chance() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 500, seed: 71, ..Default::default() },
        )
        .generate();
        // Mask 20% of users, predict their true homes.
        let masked: Vec<UserId> = (0..100).map(UserId).collect();
        let train = data.dataset.mask_users(&masked);
        let result = Mlp::new(&gaz, &train, quick_config()).unwrap().run();
        let hits = masked
            .iter()
            .filter(|&&u| gaz.distance(result.home(u), data.truth.home(u)) <= 100.0)
            .count();
        let acc = hits as f64 / masked.len() as f64;
        // The paper achieves 62% on real data; synthetic data is cleaner, so
        // demand a healthy margin over chance (~1/|L| ≈ 0.4%).
        assert!(acc > 0.45, "masked-home ACC@100 {acc}");
    }

    #[test]
    fn edge_assignments_are_candidate_cities() {
        let (result, data, _) = run(150, 73, quick_config());
        // x must be a plausible city for the follower, y for the friend
        // (both came from candidate lists, so just sanity-check a sample).
        for (e, a) in data.dataset.edges.iter().zip(&result.edge_assignments).take(200) {
            let _ = e;
            assert!(a.x.index() < 300 + 3);
            assert!(a.y.index() < 300 + 3);
        }
    }

    #[test]
    fn noisy_edges_are_detected_above_chance() {
        let (result, data, _) = run(400, 79, quick_config());
        // Among edges the generator marked noisy, the model should flag a
        // larger fraction than among location-based edges.
        let mut noisy_flagged = 0usize;
        let mut noisy_total = 0usize;
        let mut based_flagged = 0usize;
        let mut based_total = 0usize;
        for (t, a) in data.truth.edge_truth.iter().zip(&result.edge_assignments) {
            match t {
                EdgeTruth::Noisy => {
                    noisy_total += 1;
                    noisy_flagged += a.noisy as usize;
                }
                EdgeTruth::Based { .. } => {
                    based_total += 1;
                    based_flagged += a.noisy as usize;
                }
            }
        }
        let noisy_rate = noisy_flagged as f64 / noisy_total as f64;
        let based_rate = based_flagged as f64 / based_total as f64;
        assert!(
            noisy_rate > based_rate + 0.1,
            "noise detection not separating: noisy {noisy_rate} vs based {based_rate}"
        );
    }

    #[test]
    fn gibbs_em_refines_power_law() {
        let config = MlpConfig {
            iterations: 8,
            burn_in: 4,
            gibbs_em: true,
            em_iterations: 2,
            ..Default::default()
        };
        let (result, _, _) = run(600, 83, config);
        assert!(
            !result.diagnostics.power_law_trace.is_empty(),
            "EM must record at least one refit"
        );
        assert_ne!(result.power_law, PowerLaw::PAPER_TWITTER, "refit should move the parameters");
    }

    #[test]
    fn run_is_deterministic() {
        let (a, _, _) = run(120, 89, quick_config());
        let (b, _, _) = run(120, 89, quick_config());
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.edge_assignments, b.edge_assignments);
    }

    #[test]
    fn top_k_and_threshold_extraction() {
        let (result, _, _) = run(100, 97, quick_config());
        let u = UserId(0);
        let top2 = result.top_k(u, 2);
        assert!(!top2.is_empty() && top2.len() <= 2);
        assert_eq!(top2[0], result.home(u));
        let above = result.locations_above(u, 0.0);
        assert_eq!(above.len(), result.profiles[0].len());
        assert!(result.locations_above(u, 1.1).is_empty());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let gaz = Gazetteer::us_cities();
        let d = Dataset::new(2);
        let bad = MlpConfig { iterations: 0, ..Default::default() };
        assert!(Mlp::new(&gaz, &d, bad).is_err());
        let mut bad_data = Dataset::new(2);
        bad_data.registered[0] = Some(CityId(9_999));
        assert!(Mlp::new(&gaz, &bad_data, MlpConfig::default()).is_err());
    }
}
