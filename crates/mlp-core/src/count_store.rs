//! Columnar collapsed-count storage: the sparse venue-count store.
//!
//! Sweep cost in the collapsed sampler is dominated by data layout, not
//! math: every mention resample evaluates `φ_{l,v}` for each candidate city
//! of the owner, and every count update mutates `φ`/`ϕ`. The seed kept
//! `φ_{l,·}` as one `HashMap<u32, u32>` per city — scattered heap nodes,
//! hashing on the hot path, and nondeterministic iteration order that had
//! to be re-sorted (with a fresh allocation) every time a row was read.
//!
//! [`VenueCountStore`] replaces that with a CSR arena over the *support*:
//! the fixed set of `(city, venue)` pairs that can ever hold a non-zero
//! count. The support is knowable up front — a mention of venue `v` by
//! user `i` can only ever be assigned to a city in `i`'s candidate list —
//! so counts live in one flat slab, lookups are a binary search over a
//! short sorted key row, rows iterate in venue-id order for free (no
//! allocation, no sort), and a parallel merge is a flat index-wise
//! delta-add. Cities whose support covers a large fraction of the venue
//! vocabulary fall back to a dense row: O(1) indexed lookups, no search.
//!
//! The per-user `ϕ` rows need no keys at all (they are dense over each
//! user's candidate list) and are stored as a plain [`Csr`] arena by
//! [`crate::state::SamplerState`].

use mlp_gazetteer::{CityId, VenueId};
use mlp_social::Csr;

/// A city goes dense once its support covers more than 1/16 of the venue
/// vocabulary. Dense rows are cheap (4 bytes × |V| — the vocabulary is
/// gazetteer-bounded, not corpus-bounded) and trade the binary search for
/// an O(1) index, so the threshold is set where the popular cities that
/// dominate lookups under the power law all go dense while the long tail
/// of barely-touched cities keeps tiny sparse rows.
const DENSE_NUMERATOR: usize = 1;
const DENSE_DENOMINATOR: usize = 16;

/// Sentinel in `dense_slot` marking a city stored sparsely.
const SPARSE: u32 = u32::MAX;

/// CSR-indexed sparse `φ_{l,v}` counts over a fixed support, with a dense
/// per-city fallback above a density threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VenueCountStore {
    /// Sorted venue-id support per sparse city (empty rows for dense
    /// cities — their support lives in `dense`).
    keys: Csr<u32>,
    /// Counts parallel to `keys`'s value slab.
    counts: Vec<u32>,
    /// Per-city dense-row index, or [`SPARSE`].
    dense_slot: Vec<u32>,
    /// Dense rows, `num_venues` counts each, concatenated.
    dense: Vec<u32>,
    /// Σ_v φ_{l,v} per city.
    totals: Vec<u32>,
    num_venues: usize,
}

impl VenueCountStore {
    /// Builds a zeroed store over the given support pairs. Duplicates are
    /// fine; pairs are deduplicated. Cities whose support exceeds
    /// `num_venues / 16` are stored dense.
    pub fn build(
        num_cities: usize,
        num_venues: usize,
        support: impl Iterator<Item = (u32, u32)>,
    ) -> Self {
        let mut pairs: Vec<(u32, u32)> = support.collect();
        pairs.sort_unstable();
        pairs.dedup();

        let mut row_lens = vec![0usize; num_cities];
        for &(l, _) in &pairs {
            row_lens[l as usize] += 1;
        }

        let mut dense_slot = vec![SPARSE; num_cities];
        let mut dense_rows = 0u32;
        for (l, &len) in row_lens.iter().enumerate() {
            if len * DENSE_DENOMINATOR > num_venues * DENSE_NUMERATOR && num_venues > 0 {
                dense_slot[l] = dense_rows;
                dense_rows += 1;
            }
        }

        let keys = Csr::from_rows((0..num_cities).map(|l| {
            if dense_slot[l] != SPARSE {
                return Vec::new();
            }
            // `pairs` is sorted by (city, venue): the city's slice is
            // contiguous and its venue ids already ascend.
            let start = pairs.partition_point(|&(c, _)| (c as usize) < l);
            pairs[start..start + row_lens[l]].iter().map(|&(_, v)| v).collect()
        }));
        let counts = vec![0u32; keys.num_values()];
        let dense = vec![0u32; dense_rows as usize * num_venues];
        Self { keys, counts, dense_slot, dense, totals: vec![0; num_cities], num_venues }
    }

    /// Venue vocabulary size this store was built for.
    pub fn num_venues(&self) -> usize {
        self.num_venues
    }

    /// Number of cities.
    pub fn num_cities(&self) -> usize {
        self.totals.len()
    }

    /// `φ_{l,v}` — zero for pairs outside the support.
    #[inline]
    pub fn get(&self, l: CityId, v: VenueId) -> u32 {
        match self.slot(l, v) {
            Some(Slot::Sparse(i)) => self.counts[i],
            Some(Slot::Dense(i)) => self.dense[i],
            None => 0,
        }
    }

    /// `Σ_v φ_{l,v}`.
    #[inline]
    pub fn total(&self, l: CityId) -> u32 {
        self.totals[l.index()]
    }

    /// Adds one token of venue `v` at city `l`. Panics if the pair is
    /// outside the precomputed support — that would mean the support
    /// derivation missed a reachable assignment.
    #[inline]
    pub fn add(&mut self, l: CityId, v: VenueId) {
        match self.slot(l, v) {
            Some(Slot::Sparse(i)) => self.counts[i] += 1,
            Some(Slot::Dense(i)) => self.dense[i] += 1,
            None => panic!("adding venue outside the precomputed support"),
        }
        self.totals[l.index()] += 1;
    }

    /// Removes one token of venue `v` from city `l`. Panics when the pair
    /// holds no count (same contract as the seed's HashMap store).
    #[inline]
    pub fn remove(&mut self, l: CityId, v: VenueId) {
        let cell = match self.slot(l, v) {
            Some(Slot::Sparse(i)) => &mut self.counts[i],
            Some(Slot::Dense(i)) => &mut self.dense[i],
            None => panic!("removing venue that was never added"),
        };
        if *cell == 0 {
            panic!("removing venue that was never added");
        }
        *cell -= 1;
        self.totals[l.index()] -= 1;
    }

    /// The non-zero `(venue, count)` entries of city `l`, ascending by
    /// venue id — a borrowed iterator, no allocation, no sort.
    #[inline]
    pub fn row(&self, l: CityId) -> VenueRow<'_> {
        let i = l.index();
        match self.dense_slot[i] {
            SPARSE => VenueRow::Sparse {
                keys: self.keys.row(i).iter(),
                counts: self.counts
                    [self.keys.offsets()[i] as usize..self.keys.offsets()[i + 1] as usize]
                    .iter(),
            },
            slot => VenueRow::Dense {
                counts: self.dense
                    [slot as usize * self.num_venues..(slot as usize + 1) * self.num_venues]
                    .iter()
                    .enumerate(),
            },
        }
    }

    /// Zeroes every count and total, keeping the support layout.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.dense.fill(0);
        self.totals.fill(0);
    }

    /// Size of the flat slot space ([`Self::slot_index`] codomain): sparse
    /// slab first, dense slab after.
    pub fn num_slots(&self) -> usize {
        self.counts.len() + self.dense.len()
    }

    /// Flat slot of `(l, v)` for index-wise delta merges. Panics outside
    /// the support (workers only ever touch reachable pairs).
    #[inline]
    pub fn slot_index(&self, l: CityId, v: VenueId) -> usize {
        match self.slot(l, v) {
            Some(Slot::Sparse(i)) => i,
            Some(Slot::Dense(i)) => self.counts.len() + i,
            None => panic!("venue outside the precomputed support has no slot"),
        }
    }

    /// Applies per-slot count deltas and per-city total deltas (the merge
    /// step of a parallel sweep). Deltas must not underflow any count.
    pub fn apply_delta(&mut self, slots: &[i32], totals: &[i32]) {
        debug_assert_eq!(slots.len(), self.num_slots());
        debug_assert_eq!(totals.len(), self.totals.len());
        let (sparse, dense) = slots.split_at(self.counts.len());
        for (c, &d) in self.counts.iter_mut().zip(sparse) {
            *c = c.wrapping_add_signed(d);
        }
        for (c, &d) in self.dense.iter_mut().zip(dense) {
            *c = c.wrapping_add_signed(d);
        }
        for (t, &d) in self.totals.iter_mut().zip(totals) {
            *t = t.wrapping_add_signed(d);
        }
    }

    /// Merges the difference `after − before` into this store — the
    /// count-reconciliation step of sharded training: `before` is the
    /// frozen super-sweep view a shard swept against, `after` that
    /// shard's mutated working clone. All three stores must share one
    /// support layout (clones of the same build).
    pub fn apply_diff(&mut self, after: &Self, before: &Self) {
        assert_eq!(after.counts.len(), self.counts.len(), "diff across different supports");
        assert_eq!(after.dense.len(), self.dense.len(), "diff across different supports");
        for ((c, &a), &b) in self.counts.iter_mut().zip(&after.counts).zip(&before.counts) {
            *c = c.wrapping_add(a.wrapping_sub(b));
        }
        for ((c, &a), &b) in self.dense.iter_mut().zip(&after.dense).zip(&before.dense) {
            *c = c.wrapping_add(a.wrapping_sub(b));
        }
        for ((t, &a), &b) in self.totals.iter_mut().zip(&after.totals).zip(&before.totals) {
            *t = t.wrapping_add(a.wrapping_sub(b));
        }
    }

    #[inline]
    fn slot(&self, l: CityId, v: VenueId) -> Option<Slot> {
        let i = l.index();
        match self.dense_slot[i] {
            SPARSE => self
                .keys
                .row(i)
                .binary_search(&v.0)
                .ok()
                .map(|pos| Slot::Sparse(self.keys.slot(i, pos))),
            // The vocabulary bound matters on the dense path: without it
            // an out-of-range venue id would alias into the *next* dense
            // city's row instead of behaving like any other miss.
            _ if v.index() >= self.num_venues => None,
            slot => Some(Slot::Dense(slot as usize * self.num_venues + v.index())),
        }
    }
}

enum Slot {
    Sparse(usize),
    Dense(usize),
}

/// Borrowed iterator over a city's non-zero `(venue, count)` entries,
/// ascending by venue id.
pub enum VenueRow<'a> {
    /// Sparse city: zip of the key row and its count slice.
    Sparse { keys: std::slice::Iter<'a, u32>, counts: std::slice::Iter<'a, u32> },
    /// Dense city: enumerated dense row.
    Dense { counts: std::iter::Enumerate<std::slice::Iter<'a, u32>> },
}

impl Iterator for VenueRow<'_> {
    type Item = (u32, u32);

    #[inline]
    fn next(&mut self) -> Option<(u32, u32)> {
        match self {
            VenueRow::Sparse { keys, counts } => loop {
                let (&v, &c) = (keys.next()?, counts.next()?);
                if c > 0 {
                    return Some((v, c));
                }
            },
            VenueRow::Dense { counts } => loop {
                let (v, &c) = counts.next()?;
                if c > 0 {
                    return Some((v as u32, c));
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> VenueCountStore {
        // City 0: small support {2, 5, 9} of 64 venues (3/64 ≤ 1/16 —
        // sparse). City 1: support {0..=9} (10/64 > 1/16 — dense
        // fallback). City 2: empty support.
        let mut support = vec![(0u32, 2u32), (0, 5), (0, 9), (0, 5)];
        support.extend((0..10).map(|v| (1u32, v)));
        VenueCountStore::build(3, 64, support.into_iter())
    }

    #[test]
    fn dense_fallback_kicks_in_by_density() {
        let s = store();
        assert_eq!(s.dense_slot[0], SPARSE);
        assert_ne!(s.dense_slot[1], SPARSE);
        assert_eq!(s.dense_slot[2], SPARSE);
        assert_eq!(s.num_slots(), 3 + 64);
    }

    #[test]
    fn dense_rows_reject_out_of_vocabulary_venues() {
        // City 1 is dense; venue 64 is one past the vocabulary. It must
        // behave like any other miss — never alias into a neighbouring
        // dense row.
        let mut s = store();
        assert_eq!(s.get(CityId(1), VenueId(64)), 0);
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.add(CityId(1), VenueId(64));
        }));
        assert!(panic.is_err(), "out-of-vocabulary add on a dense row must panic");
    }

    #[test]
    fn add_remove_get_total() {
        let mut s = store();
        s.add(CityId(0), VenueId(5));
        s.add(CityId(0), VenueId(5));
        s.add(CityId(1), VenueId(7));
        assert_eq!(s.get(CityId(0), VenueId(5)), 2);
        assert_eq!(s.get(CityId(0), VenueId(2)), 0);
        assert_eq!(s.get(CityId(0), VenueId(3)), 0, "outside support reads zero");
        assert_eq!(s.total(CityId(0)), 2);
        assert_eq!(s.total(CityId(1)), 1);
        s.remove(CityId(0), VenueId(5));
        assert_eq!(s.get(CityId(0), VenueId(5)), 1);
        assert_eq!(s.total(CityId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "removing venue that was never added")]
    fn remove_outside_support_panics() {
        let mut s = store();
        s.remove(CityId(0), VenueId(3));
    }

    #[test]
    #[should_panic(expected = "removing venue that was never added")]
    fn remove_zero_count_panics() {
        let mut s = store();
        s.remove(CityId(0), VenueId(5));
    }

    #[test]
    #[should_panic(expected = "adding venue outside the precomputed support")]
    fn add_outside_support_panics() {
        let mut s = store();
        s.add(CityId(2), VenueId(0));
    }

    #[test]
    fn rows_iterate_nonzero_sorted() {
        let mut s = store();
        s.add(CityId(0), VenueId(9));
        s.add(CityId(0), VenueId(2));
        s.add(CityId(0), VenueId(2));
        s.add(CityId(1), VenueId(4));
        s.add(CityId(1), VenueId(1));
        let row0: Vec<(u32, u32)> = s.row(CityId(0)).collect();
        assert_eq!(row0, vec![(2, 2), (9, 1)]);
        let row1: Vec<(u32, u32)> = s.row(CityId(1)).collect();
        assert_eq!(row1, vec![(1, 1), (4, 1)]);
        assert!(s.row(CityId(2)).next().is_none());
    }

    #[test]
    fn delta_merge_equals_incremental_updates() {
        let mut incremental = store();
        incremental.add(CityId(0), VenueId(5));
        incremental.add(CityId(0), VenueId(5));
        incremental.add(CityId(1), VenueId(3));
        incremental.remove(CityId(0), VenueId(5));

        let mut merged = store();
        let mut slots = vec![0i32; merged.num_slots()];
        let mut totals = vec![0i32; merged.num_cities()];
        for (l, v, d) in [(0u32, 5u32, 2i32), (1, 3, 1), (0, 5, -1)] {
            slots[merged.slot_index(CityId(l), VenueId(v))] += d;
            totals[l as usize] += d;
        }
        merged.apply_delta(&slots, &totals);
        assert_eq!(incremental, merged);
    }

    #[test]
    fn clear_preserves_layout() {
        let mut s = store();
        s.add(CityId(0), VenueId(5));
        s.add(CityId(1), VenueId(5));
        let layout = s.clone();
        s.clear();
        assert_eq!(s.get(CityId(0), VenueId(5)), 0);
        assert_eq!(s.total(CityId(1)), 0);
        assert_eq!(s.num_slots(), layout.num_slots());
        assert_eq!(s.dense_slot, layout.dense_slot);
    }
}
