//! The stateless Gibbs conditional kernel (paper Eqs. 5–9).
//!
//! Every conditional the sampler draws from — the edge selector `μ_s`, the
//! edge assignments `x_s`/`y_s`, the mention selector `ν_k`, and the mention
//! assignment `z_k` — is computed here, **once**, as pure functions over:
//!
//! * a [`SamplerView`]: the read-only model inputs (gazetteer, candidacy,
//!   random models, config, current power law), and
//! * a [`CountView`]: the collapsed counts `ϕ`/`φ` *with the relationship
//!   being resampled already excluded*.
//!
//! Both sweep drivers are thin shells over this module. The sequential
//! driver ([`crate::sampler`]) excludes the current relationship by
//! decrementing the live [`SamplerState`] before calling in; the chunked
//! parallel driver ([`crate::parallel`]) reads the counts frozen for the
//! duration of the scoped fork-join (nobody writes until every chunk has
//! been joined) and excludes arithmetically via [`EdgeExcluded`] /
//! [`MentionExcluded`]. Because the weight math lives only here, the two
//! drivers cannot drift numerically — the
//! `kernel_weights_identical_across_drivers` test pins this down.
//!
//! The kernel never sees the count *layout*: [`SamplerState`] answers
//! [`CountView`] lookups from its columnar CSR arenas
//! ([`crate::count_store`]), the fold-in engine from frozen snapshot
//! slabs — swapping a storage backend cannot change a single weight.

use crate::candidacy::Candidacy;
use crate::config::MlpConfig;
use crate::random_models::RandomModels;
use crate::state::SamplerState;
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_geo::PowerLaw;
use mlp_social::UserId;

/// Per-user candidate lists and priors as the kernel consumes them.
///
/// [`Candidacy`] is the training-time implementation; the fold-in engine
/// ([`crate::infer`]) implements it over a frozen
/// [`crate::snapshot::PosteriorSnapshot`] plus one transient unseen user,
/// which is how warm-start serving reuses the exact same conditionals.
pub trait ProfileView {
    /// Candidate cities of user `u`, sorted ascending.
    fn candidates(&self, u: UserId) -> &[CityId];
    /// Priors `γ_{u,·}` aligned with [`Self::candidates`].
    fn gammas(&self, u: UserId) -> &[f64];
    /// `Σ_l γ_{u,l}`.
    fn gamma_total(&self, u: UserId) -> f64;
}

impl ProfileView for Candidacy {
    #[inline]
    fn candidates(&self, u: UserId) -> &[CityId] {
        Candidacy::candidates(self, u)
    }

    #[inline]
    fn gammas(&self, u: UserId) -> &[f64] {
        Candidacy::gammas(self, u)
    }

    #[inline]
    fn gamma_total(&self, u: UserId) -> f64 {
        Candidacy::gamma_total(self, u)
    }
}

/// Read-only bundle of everything static a conditional needs. Cheap to
/// construct (five pointer-sized copies); build one per resampling call.
///
/// Generic over the candidacy source `P` so the same kernel serves both the
/// training drivers (`P = Candidacy`, the default) and warm-start fold-in
/// (`P = FoldInProfiles`).
pub struct SamplerView<'a, P: ?Sized = Candidacy> {
    /// City/venue geography.
    pub gaz: &'a Gazetteer,
    /// Candidate lists and supervised Dirichlet priors `γ_i`.
    pub candidacy: &'a P,
    /// The empirical noise models `F_R` and `T_R`.
    pub random: &'a RandomModels,
    /// Hyper-parameters (`ρ_f`, `ρ_t`, `δ`, …).
    pub config: &'a MlpConfig,
    /// Current power law `β·d^α` (mutated between sweeps by Gibbs-EM).
    pub power_law: PowerLaw,
}

// Manual impls: `#[derive]` would wrongly require `P: Clone`/`P: Copy`
// even though only `&'a P` is stored.
impl<P: ?Sized> Clone for SamplerView<'_, P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P: ?Sized> Copy for SamplerView<'_, P> {}

/// Collapsed-count accessors the kernel evaluates against.
///
/// Implementations must already exclude the relationship being resampled
/// (the "exclude-current" convention of collapsed Gibbs).
pub trait CountView {
    /// `ϕ_{u,c}` — user `u`'s count at candidate index `c`.
    fn user_count(&self, u: UserId, c: usize) -> f64;
    /// `Σ_c ϕ_{u,c}`.
    fn user_total(&self, u: UserId) -> f64;
    /// `φ_{l,v}` — venue `v`'s count at city `l`.
    fn venue_count(&self, l: CityId, v: VenueId) -> f64;
    /// `Σ_v φ_{l,v}`.
    fn city_total(&self, l: CityId) -> f64;
}

/// The live state is its own count view: the sequential driver removes the
/// current relationship's contribution before evaluating conditionals.
impl CountView for SamplerState {
    #[inline]
    fn user_count(&self, u: UserId, c: usize) -> f64 {
        SamplerState::user_count(self, u, c) as f64
    }

    #[inline]
    fn user_total(&self, u: UserId) -> f64 {
        SamplerState::user_total(self, u) as f64
    }

    #[inline]
    fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        SamplerState::venue_count(self, l, v) as f64
    }

    #[inline]
    fn city_total(&self, l: CityId) -> f64 {
        SamplerState::city_total(self, l) as f64
    }
}

/// A count view shared between chunk workers is a plain reference.
impl<C: CountView + ?Sized> CountView for &C {
    #[inline]
    fn user_count(&self, u: UserId, c: usize) -> f64 {
        (**self).user_count(u, c)
    }

    #[inline]
    fn user_total(&self, u: UserId) -> f64 {
        (**self).user_total(u)
    }

    #[inline]
    fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        (**self).venue_count(l, v)
    }

    #[inline]
    fn city_total(&self, l: CityId) -> f64 {
        (**self).city_total(l)
    }
}

/// View over frozen base counts for one *edge*, excluding that edge's
/// current contribution (if it was counted) arithmetically.
#[derive(Clone, Copy)]
pub struct EdgeExcluded<C: CountView> {
    base: C,
    /// Whether the edge's assignments are in the counts (`!μ_s` or the
    /// `count_noisy_assignments` ablation).
    counted: bool,
    i: UserId,
    xi: usize,
    j: UserId,
    yj: usize,
}

impl<C: CountView> EdgeExcluded<C> {
    /// View excluding edge `⟨i,j⟩` currently assigned `(x_s=xi, y_s=yj)`.
    pub fn new(base: C, counted: bool, i: UserId, xi: usize, j: UserId, yj: usize) -> Self {
        Self { base, counted, i, xi, j, yj }
    }
}

impl<C: CountView> CountView for EdgeExcluded<C> {
    #[inline]
    fn user_count(&self, u: UserId, c: usize) -> f64 {
        let own = (self.counted && u == self.i && c == self.xi) as u32
            + (self.counted && u == self.j && c == self.yj) as u32;
        self.base.user_count(u, c) - own as f64
    }

    #[inline]
    fn user_total(&self, u: UserId) -> f64 {
        let own = (self.counted && u == self.i) as u32 + (self.counted && u == self.j) as u32;
        self.base.user_total(u) - own as f64
    }

    #[inline]
    fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        // Edges never contribute venue tokens.
        self.base.venue_count(l, v)
    }

    #[inline]
    fn city_total(&self, l: CityId) -> f64 {
        self.base.city_total(l)
    }
}

/// View over frozen base counts for one *mention*, excluding its profile
/// count (if counted) and its venue token (if location-based).
#[derive(Clone, Copy)]
pub struct MentionExcluded<C: CountView> {
    base: C,
    /// Whether the mention's assignment is in the profile counts.
    counted: bool,
    /// Whether the mention's venue token is in the venue counts (`!ν_k`).
    venue_counted: bool,
    i: UserId,
    zi: usize,
    old_city: CityId,
    v: VenueId,
}

impl<C: CountView> MentionExcluded<C> {
    /// View excluding mention `k` of user `i` at venue `v`, currently
    /// assigned `z_k = zi` resolving to `old_city`.
    pub fn new(
        base: C,
        counted: bool,
        venue_counted: bool,
        i: UserId,
        zi: usize,
        old_city: CityId,
        v: VenueId,
    ) -> Self {
        Self { base, counted, venue_counted, i, zi, old_city, v }
    }
}

impl<C: CountView> CountView for MentionExcluded<C> {
    #[inline]
    fn user_count(&self, u: UserId, c: usize) -> f64 {
        let own = (self.counted && u == self.i && c == self.zi) as u32;
        self.base.user_count(u, c) - own as f64
    }

    #[inline]
    fn user_total(&self, u: UserId) -> f64 {
        self.base.user_total(u) - (self.counted && u == self.i) as u32 as f64
    }

    #[inline]
    fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        let own = (self.venue_counted && l == self.old_city && v == self.v) as u32;
        self.base.venue_count(l, v) - own as f64
    }

    #[inline]
    fn city_total(&self, l: CityId) -> f64 {
        self.base.city_total(l) - (self.venue_counted && l == self.old_city) as u32 as f64
    }
}

// ---------------------------------------------------------------------------
// The conditionals.
// ---------------------------------------------------------------------------

/// Profile pseudo-count term `(ϕ_{u,c} + γ_{u,c}) / (ϕ_u + Σγ_u)`.
#[inline]
pub fn profile_term<P: ProfileView + ?Sized>(
    view: &SamplerView<'_, P>,
    counts: &impl CountView,
    u: UserId,
    c: usize,
) -> f64 {
    let num = counts.user_count(u, c) + view.candidacy.gammas(u)[c];
    let den = counts.user_total(u) + view.candidacy.gamma_total(u);
    num / den
}

/// Venue term `(φ_{l,v} + δ) / (Σφ_l + δ·|V|)`.
#[inline]
pub fn venue_term<P: ProfileView + ?Sized>(
    view: &SamplerView<'_, P>,
    counts: &impl CountView,
    l: CityId,
    v: VenueId,
) -> f64 {
    let num = counts.venue_count(l, v) + view.config.delta;
    let den = counts.city_total(l) + view.config.delta * view.gaz.num_venues() as f64;
    num / den
}

/// One edge endpoint as the kernel sees it: the user, their current
/// assignment (as a candidate index), and the city it resolves to.
#[derive(Clone, Copy)]
pub struct Endpoint {
    /// The user on this side of the edge.
    pub user: UserId,
    /// Current assignment, an index into the user's candidate list.
    pub pos: usize,
    /// The city that index resolves to.
    pub city: CityId,
}

/// Eq. 5 — unnormalised selector weights `(w_based, w_noisy)` for `μ_s`.
///
/// We keep both endpoints' profile factors (the full conditional of the
/// generative story; the paper's printed equation shows only the
/// follower's, but with a data-calibrated `(α, β)` the two-factor form
/// separates noisy from location-based edges more sharply).
#[inline]
pub fn edge_selector_weights<P: ProfileView + ?Sized>(
    view: &SamplerView<'_, P>,
    counts: &impl CountView,
    follower: Endpoint,
    friend: Endpoint,
) -> (f64, f64) {
    let d = view.gaz.distance(follower.city, friend.city);
    let w_based = (1.0 - view.config.rho_f)
        * profile_term(view, counts, follower.user, follower.pos)
        * profile_term(view, counts, friend.user, friend.pos)
        * view.power_law.eval(d);
    let w_noisy = view.config.rho_f * view.random.follow_prob();
    (w_based, w_noisy)
}

/// Eqs. 7/8 — fills `buf` with unnormalised weights over `u`'s candidates
/// for an edge-side assignment. `partner` is the *other* endpoint's current
/// city when the edge is location-based, or `None` when noisy (no distance
/// factor).
#[inline]
pub fn edge_position_weights<P: ProfileView + ?Sized>(
    view: &SamplerView<'_, P>,
    counts: &impl CountView,
    u: UserId,
    partner: Option<CityId>,
    buf: &mut Vec<f64>,
) {
    let cands = view.candidacy.candidates(u);
    let gammas = view.candidacy.gammas(u);
    buf.clear();
    match partner {
        Some(p) => {
            for (c, &city) in cands.iter().enumerate() {
                let w = (counts.user_count(u, c) + gammas[c])
                    * view.power_law.kernel(view.gaz.distance(city, p));
                buf.push(w);
            }
        }
        None => {
            for (c, _) in cands.iter().enumerate() {
                buf.push(counts.user_count(u, c) + gammas[c]);
            }
        }
    }
}

/// Eq. 6 — unnormalised selector weights `(w_based, w_noisy)` for `ν_k`.
#[inline]
pub fn mention_selector_weights<P: ProfileView + ?Sized>(
    view: &SamplerView<'_, P>,
    counts: &impl CountView,
    i: UserId,
    zi: usize,
    z_city: CityId,
    v: VenueId,
) -> (f64, f64) {
    let w_based = (1.0 - view.config.rho_t)
        * profile_term(view, counts, i, zi)
        * venue_term(view, counts, z_city, v);
    let w_noisy = view.config.rho_t * view.random.venue_prob(v);
    (w_based, w_noisy)
}

/// Eq. 9 — fills `buf` with unnormalised weights over `u`'s candidates for
/// the mention assignment. `venue` is the mentioned venue when the mention
/// is location-based, or `None` when noisy (no venue factor).
#[inline]
pub fn mention_position_weights<P: ProfileView + ?Sized>(
    view: &SamplerView<'_, P>,
    counts: &impl CountView,
    u: UserId,
    venue: Option<VenueId>,
    buf: &mut Vec<f64>,
) {
    let cands = view.candidacy.candidates(u);
    let gammas = view.candidacy.gammas(u);
    buf.clear();
    match venue {
        Some(v) => {
            for (c, &city) in cands.iter().enumerate() {
                let w = (counts.user_count(u, c) + gammas[c]) * venue_term(view, counts, city, v);
                buf.push(w);
            }
        }
        None => {
            for (c, _) in cands.iter().enumerate() {
                buf.push(counts.user_count(u, c) + gammas[c]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_models::RandomModels;
    use crate::sampler::GibbsSampler;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    /// The load-bearing invariant of the refactor: for the same exclusion
    /// context, the kernel produces bit-identical weights whether counts
    /// come from the live state (sequential driver) or from a frozen
    /// snapshot with arithmetic exclusion (chunked driver).
    #[test]
    fn kernel_weights_identical_across_drivers() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 120, seed: 31, ..Default::default() },
        )
        .generate();
        let config = MlpConfig::default();
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        sampler.sweep();
        let view = SamplerView {
            gaz: &gaz,
            candidacy: &cand,
            random: &random,
            config: &config,
            power_law: sampler.power_law,
        };

        let mut live_buf = Vec::new();
        let mut snap_buf = Vec::new();

        // Edges: exclude via live decrement vs. arithmetic wrapper.
        for s in 0..data.dataset.num_edges().min(200) {
            let e = data.dataset.edges[s];
            let (i, j) = (e.follower, e.friend);
            let (mu, xi, yj) =
                (sampler.state.mu[s], sampler.state.x[s] as usize, sampler.state.y[s] as usize);
            let counted = !mu || config.count_noisy_assignments;
            let x_city = cand.candidates(i)[xi];
            let y_city = cand.candidates(j)[yj];

            if counted {
                sampler.state.remove_user(i, xi);
                sampler.state.remove_user(j, yj);
            }
            let fe = Endpoint { user: i, pos: xi, city: x_city };
            let fr = Endpoint { user: j, pos: yj, city: y_city };
            let live_sel = edge_selector_weights(&view, &sampler.state, fe, fr);
            edge_position_weights(&view, &sampler.state, i, Some(y_city), &mut live_buf);
            if counted {
                sampler.state.add_user(i, xi);
                sampler.state.add_user(j, yj);
            }

            let excluded = EdgeExcluded::new(&sampler.state, counted, i, xi, j, yj);
            let snap_sel = edge_selector_weights(&view, &excluded, fe, fr);
            edge_position_weights(&view, &excluded, i, Some(y_city), &mut snap_buf);

            assert_eq!(live_sel, snap_sel, "edge {s} selector weights differ");
            assert_eq!(live_buf, snap_buf, "edge {s} position weights differ");
        }

        // Mentions: same, with the venue-count exclusion in play.
        for k in 0..data.dataset.num_mentions().min(200) {
            let m = data.dataset.mentions[k];
            let (i, v) = (m.user, m.venue);
            let (nu, zi) = (sampler.state.nu[k], sampler.state.z[k] as usize);
            let counted = !nu || config.count_noisy_assignments;
            let old_city = cand.candidates(i)[zi];

            if counted {
                sampler.state.remove_user(i, zi);
            }
            if !nu {
                sampler.state.remove_venue(old_city, v);
            }
            let live_sel = mention_selector_weights(&view, &sampler.state, i, zi, old_city, v);
            mention_position_weights(&view, &sampler.state, i, Some(v), &mut live_buf);
            if counted {
                sampler.state.add_user(i, zi);
            }
            if !nu {
                sampler.state.add_venue(old_city, v);
            }

            let excluded = MentionExcluded::new(&sampler.state, counted, !nu, i, zi, old_city, v);
            let snap_sel = mention_selector_weights(&view, &excluded, i, zi, old_city, v);
            mention_position_weights(&view, &excluded, i, Some(v), &mut snap_buf);

            assert_eq!(live_sel, snap_sel, "mention {k} selector weights differ");
            assert_eq!(live_buf, snap_buf, "mention {k} position weights differ");
        }
    }

    #[test]
    fn noisy_branches_drop_the_evidence_factor() {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: 60, seed: 37, ..Default::default() })
                .generate();
        let config = MlpConfig::default();
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        let view = SamplerView {
            gaz: &gaz,
            candidacy: &cand,
            random: &random,
            config: &config,
            power_law: sampler.power_law,
        };
        let u = data.dataset.edges[0].follower;
        let mut with = Vec::new();
        let mut without = Vec::new();
        edge_position_weights(&view, &sampler.state, u, None, &mut without);
        let anchor = cand.candidates(data.dataset.edges[0].friend)[0];
        edge_position_weights(&view, &sampler.state, u, Some(anchor), &mut with);
        assert_eq!(with.len(), without.len());
        // The noisy branch must be a pure profile draw: every weight equals
        // count + gamma, no kernel factor.
        for (c, w) in without.iter().enumerate() {
            let expect = CountView::user_count(&sampler.state, u, c) + cand.gammas(u)[c];
            assert_eq!(*w, expect);
        }
        // And the based branch differs wherever the kernel is not 1.
        assert_ne!(with, without);
    }
}
