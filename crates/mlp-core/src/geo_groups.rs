//! Geo groups: the application the paper builds on relationship
//! explanations (Sec. 5.3).
//!
//! "It allows us to group a user's followers into different geo groups
//! (e.g., Los Angeles and Austin). Geo groups can be further used to group
//! followers into more meaningful groups (e.g., classmates in Austin)."
//!
//! Given an [`crate::MlpResult`], this module buckets every neighbor of a
//! user by the location assignment on *the user's side* of the shared
//! relationship — i.e. by which of the user's locations the relationship is
//! about.

use crate::model::MlpResult;
use mlp_gazetteer::CityId;
use mlp_social::{Adjacency, Dataset, UserId};
use std::collections::HashMap;

/// One geo group of a user's network.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoGroup {
    /// The user's location this group hangs off.
    pub location: CityId,
    /// Neighbors whose shared relationship is assigned to `location`
    /// (friends and followers alike), in edge order.
    pub members: Vec<UserId>,
}

/// A user's network partitioned into geo groups plus a noisy remainder.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoGrouping {
    /// The grouped user.
    pub user: UserId,
    /// Groups sorted by descending size; ties broken by city id.
    pub groups: Vec<GeoGroup>,
    /// Neighbors whose relationship the model attributes to the random
    /// model — fans of celebrities, spam follows, etc.
    pub noisy: Vec<UserId>,
}

impl GeoGrouping {
    /// The group anchored at `location`, if any.
    pub fn group_at(&self, location: CityId) -> Option<&GeoGroup> {
        self.groups.iter().find(|g| g.location == location)
    }

    /// Total neighbors covered (grouped + noisy).
    pub fn total_neighbors(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum::<usize>() + self.noisy.len()
    }
}

/// Partitions `user`'s neighbors into geo groups using the per-edge
/// assignments of `result`.
pub fn geo_groups(
    dataset: &Dataset,
    adj: &Adjacency,
    result: &MlpResult,
    user: UserId,
) -> GeoGrouping {
    let mut buckets: HashMap<CityId, Vec<UserId>> = HashMap::new();
    let mut noisy = Vec::new();
    for &s in adj.out_edges(user).iter().chain(adj.in_edges(user)) {
        let e = &dataset.edges[s as usize];
        let a = &result.edge_assignments[s as usize];
        let (my_city, other) = if e.follower == user { (a.x, e.friend) } else { (a.y, e.follower) };
        if a.noisy {
            noisy.push(other);
        } else {
            buckets.entry(my_city).or_default().push(other);
        }
    }
    let mut groups: Vec<GeoGroup> =
        buckets.into_iter().map(|(location, members)| GeoGroup { location, members }).collect();
    groups.sort_by(|a, b| b.members.len().cmp(&a.members.len()).then(a.location.cmp(&b.location)));
    GeoGrouping { user, groups, noisy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MlpConfig;
    use crate::model::Mlp;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{EdgeTruth, Generator, GeneratorConfig};

    #[test]
    fn groups_cover_every_neighbor_exactly_once() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 300, seed: 201, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { iterations: 8, burn_in: 4, ..Default::default() };
        let result = Mlp::new(&gaz, &data.dataset, config).unwrap().run();
        let adj = Adjacency::build(&data.dataset);
        for u in 0..50u32 {
            let user = UserId(u);
            let grouping = geo_groups(&data.dataset, &adj, &result, user);
            let expect = adj.out_edges(user).len() + adj.in_edges(user).len();
            assert_eq!(grouping.total_neighbors(), expect, "user {u}");
            // Sorted by size.
            for w in grouping.groups.windows(2) {
                assert!(w[0].members.len() >= w[1].members.len());
            }
        }
    }

    #[test]
    fn multi_location_users_get_multiple_groups() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 800, seed: 203, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { iterations: 10, burn_in: 5, ..Default::default() };
        let result = Mlp::new(&gaz, &data.dataset, config).unwrap().run();
        let adj = Adjacency::build(&data.dataset);

        // Users whose two true locations are far apart and who have edges
        // truly based on both should mostly split into ≥2 groups.
        let mut split = 0;
        let mut eligible = 0;
        for &user in &data.truth.multi_location_users() {
            let locs = data.truth.locations(user);
            if gaz.distance(locs[0], locs[1]) < 300.0 {
                continue;
            }
            // Count true bases per side.
            let mut near = [0usize; 2];
            for &s in adj.out_edges(user).iter().chain(adj.in_edges(user)) {
                if let EdgeTruth::Based { x, y } = data.truth.edge_truth[s as usize] {
                    let e = &data.dataset.edges[s as usize];
                    let mine = if e.follower == user { x } else { y };
                    for (i, &l) in locs.iter().take(2).enumerate() {
                        if mine == l {
                            near[i] += 1;
                        }
                    }
                }
            }
            if near[0] < 2 || near[1] < 2 {
                continue;
            }
            eligible += 1;
            let grouping = geo_groups(&data.dataset, &adj, &result, user);
            // Two distinct groups within 100mi of the two true locations?
            let covered = locs
                .iter()
                .take(2)
                .filter(|&&l| grouping.groups.iter().any(|g| gaz.distance(g.location, l) <= 100.0))
                .count();
            split += (covered == 2) as usize;
        }
        assert!(eligible >= 10, "need eligible users, got {eligible}");
        // Full two-sided recovery is the hard case: with the paper's own
        // per-edge explanation accuracy at 57%, recovering *both* groups of
        // a user is roughly a squared event. Require substantially more
        // than the ~4% a single-location explainer would achieve.
        assert!(
            split as f64 / eligible as f64 > 0.33,
            "only {split}/{eligible} users split into both geo groups"
        );
    }

    #[test]
    fn group_at_lookup() {
        let grouping = GeoGrouping {
            user: UserId(0),
            groups: vec![GeoGroup { location: CityId(3), members: vec![UserId(1)] }],
            noisy: vec![UserId(2)],
        };
        assert!(grouping.group_at(CityId(3)).is_some());
        assert!(grouping.group_at(CityId(4)).is_none());
        assert_eq!(grouping.total_neighbors(), 2);
    }
}
