//! Frozen posterior artifacts for warm-start serving.
//!
//! Training is expensive (a full-corpus Gibbs run); prediction for a user
//! the model never saw should not be. A [`PosteriorSnapshot`] freezes
//! everything a fold-in chain ([`crate::infer`]) needs from a trained
//! sampler into one immutable, serialisable artifact:
//!
//! * the collapsed posterior — per-user mean counts `ϕ̄` over each user's
//!   candidate list, and the venue counts `φ_{l,v}` with city totals;
//! * the hyper-parameters the conditionals evaluate (`τ`, `δ`, `ρ_f`,
//!   `ρ_t`, the calibrated power law, the `count_noisy` convention and
//!   observation variant);
//! * the learned noise models `F_R` and `T_R` as exact probabilities.
//!
//! Since format **v2** the posterior lives in CSR arenas ([`UserArena`],
//! [`VenueArena`]): one offset table per arena and flat value slabs,
//! mirroring the training-time layout in [`crate::state`]. The binary
//! encoding is therefore a handful of length-prefixed slabs — no per-user
//! records, no intermediate maps on decode — following the
//! `mlp_social::codec` conventions: little-endian, magic-tagged and
//! versioned so stale or corrupted artifacts fail loudly with a typed
//! [`SnapshotError`] instead of deserialising garbage. Serving fleets can
//! therefore build the snapshot once offline, ship the bytes to replicas,
//! and answer fold-in queries against a shared read-only copy — no locks,
//! no count merging, because frozen counts never mutate.

use crate::config::Variant;
use crate::sampler::GibbsSampler;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_geo::PowerLaw;
use mlp_social::UserId;

const MAGIC: u32 = 0x4D4C_5053; // "MLPS"
const VERSION: u16 = 2;

/// Stable (FNV-1a, rustc-independent) content hash of a gazetteer:
/// every city's name, state, coordinates, and population, and every
/// venue's resolution list. Snapshots carry this so that thawing against
/// a *different* geography — even one with the same city and venue
/// counts — fails loudly instead of silently serving predictions whose
/// city ids mean different places.
pub fn gazetteer_fingerprint(gaz: &Gazetteer) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat_bytes = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat_bytes(&(gaz.num_cities() as u64).to_le_bytes());
    eat_bytes(&(gaz.num_venues() as u64).to_le_bytes());
    for city in gaz.cities() {
        eat_bytes(city.name.as_bytes());
        eat_bytes(city.state.as_bytes());
        eat_bytes(&city.center.lat().to_bits().to_le_bytes());
        eat_bytes(&city.center.lon().to_bits().to_le_bytes());
        eat_bytes(&city.population.to_le_bytes());
    }
    for venue in gaz.venues() {
        eat_bytes(venue.name.as_bytes());
        eat_bytes(&(venue.cities.len() as u64).to_le_bytes());
        for &c in &venue.cities {
            eat_bytes(&c.0.to_le_bytes());
        }
    }
    h
}

/// Errors raised when decoding a posterior snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Wrong magic number — not a posterior snapshot.
    BadMagic(u32),
    /// Snapshot from an incompatible format version (e.g. a v1 artifact
    /// from before the CSR arena layout).
    UnsupportedVersion(u16),
    /// Buffer ended before the declared payload.
    Truncated,
    /// An enum tag byte held an unknown value.
    BadTag(u8),
    /// Structurally invalid payload (mismatched lengths, bad ids).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:#x}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads v{VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadTag(t) => write!(f, "unknown snapshot tag byte {t}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One training user's posterior as an owned record — the *builder* input
/// for [`UserArena::from_users`] (tests and the freeze path construct
/// these; the stored representation is the arena).
#[derive(Debug, Clone, PartialEq)]
pub struct UserPosterior {
    /// Candidate cities, sorted ascending (the Gibbs domain).
    pub candidates: Vec<CityId>,
    /// Priors `γ` aligned with `candidates`.
    pub gammas: Vec<f64>,
    /// Mean post-burn-in counts `ϕ̄` aligned with `candidates`.
    pub mean_counts: Vec<f64>,
    /// `Σ_c ϕ̄` (kept explicit so [`crate::kernel::CountView`] lookups
    /// stay O(1)).
    pub mean_total: f64,
    /// `Σ_c γ`.
    pub gamma_total: f64,
    /// MAP home — the argmax of `θ̂` (Eq. 10).
    pub home: CityId,
}

/// A borrowed view of one user's row across the arena slabs.
#[derive(Debug, Clone, Copy)]
pub struct UserView<'a> {
    /// Candidate cities, sorted ascending.
    pub candidates: &'a [CityId],
    /// Priors `γ` aligned with `candidates`.
    pub gammas: &'a [f64],
    /// Mean counts `ϕ̄` aligned with `candidates`.
    pub mean_counts: &'a [f64],
    /// `Σ_c ϕ̄`.
    pub mean_total: f64,
    /// `Σ_c γ`.
    pub gamma_total: f64,
    /// MAP home.
    pub home: CityId,
}

/// The frozen per-user posterior: a CSR offset table over flat
/// `candidates`/`gammas`/`mean_counts` slabs plus per-user scalar columns.
#[derive(Debug, Clone, PartialEq)]
pub struct UserArena {
    /// `num_users + 1` offsets into the three row slabs.
    offsets: Vec<u32>,
    candidates: Vec<CityId>,
    gammas: Vec<f64>,
    mean_counts: Vec<f64>,
    mean_totals: Vec<f64>,
    gamma_totals: Vec<f64>,
    homes: Vec<CityId>,
}

impl UserArena {
    /// Packs owned per-user records into the columnar arena.
    pub fn from_users(users: impl IntoIterator<Item = UserPosterior>) -> Self {
        let mut arena = Self {
            offsets: vec![0],
            candidates: Vec::new(),
            gammas: Vec::new(),
            mean_counts: Vec::new(),
            mean_totals: Vec::new(),
            gamma_totals: Vec::new(),
            homes: Vec::new(),
        };
        for u in users {
            arena.candidates.extend(u.candidates);
            arena.gammas.extend(u.gammas);
            arena.mean_counts.extend(u.mean_counts);
            arena.offsets.push(arena.candidates.len() as u32);
            arena.mean_totals.push(u.mean_total);
            arena.gamma_totals.push(u.gamma_total);
            arena.homes.push(u.home);
        }
        arena
    }

    /// Number of training users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.homes.len()
    }

    /// User `u`'s row across all slabs.
    #[inline]
    pub fn user(&self, u: UserId) -> UserView<'_> {
        let i = u.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        UserView {
            candidates: &self.candidates[range.clone()],
            gammas: &self.gammas[range.clone()],
            mean_counts: &self.mean_counts[range],
            mean_total: self.mean_totals[i],
            gamma_total: self.gamma_totals[i],
            home: self.homes[i],
        }
    }

    // Single-column accessors for hot lookups that need one slab — the
    // fold-in kernel calls these per conditional evaluation, so they must
    // not assemble a whole `UserView`.

    /// User `u`'s candidate row.
    #[inline]
    pub fn candidates_of(&self, u: UserId) -> &[CityId] {
        &self.candidates[self.offsets[u.index()] as usize..self.offsets[u.index() + 1] as usize]
    }

    /// User `u`'s γ row.
    #[inline]
    pub fn gammas_of(&self, u: UserId) -> &[f64] {
        &self.gammas[self.offsets[u.index()] as usize..self.offsets[u.index() + 1] as usize]
    }

    /// User `u`'s ϕ̄ row.
    #[inline]
    pub fn mean_counts_of(&self, u: UserId) -> &[f64] {
        &self.mean_counts[self.offsets[u.index()] as usize..self.offsets[u.index() + 1] as usize]
    }

    /// `Σ_c ϕ̄` for user `u`.
    #[inline]
    pub fn mean_total(&self, u: UserId) -> f64 {
        self.mean_totals[u.index()]
    }

    /// `Σ_c γ` for user `u`.
    #[inline]
    pub fn gamma_total(&self, u: UserId) -> f64 {
        self.gamma_totals[u.index()]
    }

    /// MAP home of user `u`.
    #[inline]
    pub fn home(&self, u: UserId) -> CityId {
        self.homes[u.index()]
    }
}

/// The frozen `φ` counts: CSR offsets over sorted `venue_ids` with a
/// parallel `counts` slab, plus per-city totals.
#[derive(Debug, Clone, PartialEq)]
pub struct VenueArena {
    /// `num_cities + 1` offsets into `venue_ids`/`counts`.
    offsets: Vec<u32>,
    venue_ids: Vec<u32>,
    counts: Vec<f64>,
    city_totals: Vec<f64>,
}

impl VenueArena {
    /// Packs per-city `(venue, count)` rows (ascending venue id) into the
    /// arena; city totals are the row sums — exact, because training
    /// counts are integers.
    pub fn from_rows<R>(rows: impl Iterator<Item = R>) -> Self
    where
        R: IntoIterator<Item = (u32, f64)>,
    {
        let mut arena = Self {
            offsets: vec![0],
            venue_ids: Vec::new(),
            counts: Vec::new(),
            city_totals: Vec::new(),
        };
        for row in rows {
            let mut total = 0.0;
            for (v, c) in row {
                arena.venue_ids.push(v);
                arena.counts.push(c);
                total += c;
            }
            arena.offsets.push(arena.venue_ids.len() as u32);
            arena.city_totals.push(total);
        }
        arena
    }

    /// Number of cities.
    #[inline]
    pub fn num_cities(&self) -> usize {
        self.city_totals.len()
    }

    /// `φ_{l,v}` lookup (zero for venues the city never hosted).
    #[inline]
    pub fn count(&self, l: CityId, v: VenueId) -> f64 {
        let i = l.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        match self.venue_ids[range.clone()].binary_search(&v.0) {
            Ok(pos) => self.counts[range.start + pos],
            Err(_) => 0.0,
        }
    }

    /// `Σ_v φ_{l,v}`.
    #[inline]
    pub fn city_total(&self, l: CityId) -> f64 {
        self.city_totals[l.index()]
    }

    /// City `l`'s `(venue, count)` row, ascending by venue id.
    pub fn row(&self, l: CityId) -> impl Iterator<Item = (u32, f64)> + '_ {
        let i = l.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        self.venue_ids[range.clone()].iter().copied().zip(self.counts[range].iter().copied())
    }
}

/// An immutable frozen posterior, ready for fold-in inference.
#[derive(Debug, Clone, PartialEq)]
pub struct PosteriorSnapshot {
    /// Which observation types the model was trained on.
    pub variant: Variant,
    /// Whether noisy assignments contributed to `ϕ` during training.
    pub count_noisy_assignments: bool,
    /// τ — base candidate prior.
    pub tau: f64,
    /// δ — venue-multinomial prior.
    pub delta: f64,
    /// ρ_f — prior noise probability for following relationships.
    pub rho_f: f64,
    /// ρ_t — prior noise probability for tweeting relationships.
    pub rho_t: f64,
    /// The calibrated (possibly EM-refined) power law.
    pub power_law: PowerLaw,
    /// `p(f⟨i,j⟩ | F_R)`.
    pub follow_prob: f64,
    /// `p(t⟨i,j⟩ | T_R)` per venue id — exact training-time values.
    pub venue_probs: Vec<f64>,
    /// Gazetteer shape the snapshot was trained against.
    pub num_cities: u32,
    /// Venue vocabulary size.
    pub num_venues: u32,
    /// [`gazetteer_fingerprint`] of the training gazetteer — validated on
    /// thaw so a snapshot cannot silently serve a different geography,
    /// even one with identical shape.
    pub gaz_fingerprint: u64,
    /// Per-training-user posteriors, CSR arena indexed by `UserId`.
    pub users: UserArena,
    /// Frozen `φ` CSR arena with per-city totals.
    pub venues: VenueArena,
}

impl PosteriorSnapshot {
    /// Freezes a trained sampler into an immutable snapshot.
    ///
    /// Call after the final sweep (and after post-burn-in accumulation):
    /// `ϕ̄` uses the accumulated means, `φ` the final venue counts, and the
    /// power law whatever Gibbs-EM left behind.
    pub fn freeze(sampler: &GibbsSampler<'_>) -> Self {
        let gaz = sampler.gazetteer();
        let candidacy = sampler.candidacy();
        let config = sampler.config();
        let n = sampler.dataset().num_users();

        let users = UserArena::from_users((0..n).map(|u| {
            let user = UserId(u as u32);
            let candidates = candidacy.candidates(user).to_vec();
            let gammas = candidacy.gammas(user).to_vec();
            let mean_counts: Vec<f64> =
                (0..candidates.len()).map(|c| sampler.state.mean_user_count(user, c)).collect();
            let mean_total = mean_counts.iter().sum();
            UserPosterior {
                home: sampler.estimate_theta(user)[0].0,
                gamma_total: candidacy.gamma_total(user),
                candidates,
                gammas,
                mean_counts,
                mean_total,
            }
        }));

        // The CSR state rows already iterate non-zero entries in venue-id
        // order, so the arena packs straight off the live store — no
        // intermediate maps, no sorting.
        let venues =
            VenueArena::from_rows((0..gaz.num_cities()).map(|l| {
                sampler.state.venue_count_row(CityId(l as u32)).map(|(v, c)| (v, c as f64))
            }));

        Self {
            variant: config.variant,
            count_noisy_assignments: config.count_noisy_assignments,
            tau: config.tau,
            delta: config.delta,
            rho_f: config.rho_f,
            rho_t: config.rho_t,
            power_law: sampler.power_law,
            follow_prob: sampler.random_models().follow_prob(),
            venue_probs: (0..gaz.num_venues())
                .map(|v| sampler.random_models().venue_prob(VenueId(v as u32)))
                .collect(),
            num_cities: gaz.num_cities() as u32,
            num_venues: gaz.num_venues() as u32,
            gaz_fingerprint: gazetteer_fingerprint(gaz),
            users,
            venues,
        }
    }

    /// Number of training users in the snapshot.
    pub fn num_users(&self) -> usize {
        self.users.num_users()
    }

    /// Frozen `φ_{l,v}` lookup (zero for venues the city never hosted).
    #[inline]
    pub fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        self.venues.count(l, v)
    }

    /// Serialises the snapshot into the versioned binary format: a fixed
    /// header followed by length-prefixed flat slabs — the arenas'
    /// in-memory layout, written column by column.
    pub fn encode(&self) -> Bytes {
        let nnz = self.users.candidates.len();
        let vnz = self.venues.venue_ids.len();
        let n = self.users.num_users();
        let cities = self.venues.num_cities();
        let mut buf = BytesMut::with_capacity(
            96 + self.venue_probs.len() * 8
                + (n + 1) * 4
                + nnz * 20
                + n * 20
                + (cities + 1) * 4
                + vnz * 12
                + cities * 8,
        );
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(match self.variant {
            Variant::FollowingOnly => 0,
            Variant::TweetingOnly => 1,
            Variant::Full => 2,
        });
        buf.put_u8(self.count_noisy_assignments as u8);
        for x in [
            self.tau,
            self.delta,
            self.rho_f,
            self.rho_t,
            self.power_law.alpha,
            self.power_law.beta,
            self.follow_prob,
        ] {
            buf.put_f64_le(x);
        }
        buf.put_u32_le(self.num_cities);
        buf.put_u32_le(self.num_venues);
        buf.put_u64_le(self.gaz_fingerprint);

        buf.put_u32_le(self.venue_probs.len() as u32);
        for &p in &self.venue_probs {
            buf.put_f64_le(p);
        }

        // User arena: offsets, then each slab in column order.
        buf.put_u32_le(n as u32);
        buf.put_u32_le(nnz as u32);
        for &o in &self.users.offsets {
            buf.put_u32_le(o);
        }
        for &c in &self.users.candidates {
            buf.put_u32_le(c.0);
        }
        for &g in &self.users.gammas {
            buf.put_f64_le(g);
        }
        for &m in &self.users.mean_counts {
            buf.put_f64_le(m);
        }
        for &m in &self.users.mean_totals {
            buf.put_f64_le(m);
        }
        for &g in &self.users.gamma_totals {
            buf.put_f64_le(g);
        }
        for &h in &self.users.homes {
            buf.put_u32_le(h.0);
        }

        // Venue arena.
        buf.put_u32_le(cities as u32);
        buf.put_u32_le(vnz as u32);
        for &o in &self.venues.offsets {
            buf.put_u32_le(o);
        }
        for &v in &self.venues.venue_ids {
            buf.put_u32_le(v);
        }
        for &c in &self.venues.counts {
            buf.put_f64_le(c);
        }
        for &t in &self.venues.city_totals {
            buf.put_f64_le(t);
        }
        buf.freeze()
    }

    /// Decodes a snapshot produced by [`Self::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Self, SnapshotError> {
        fn need(buf: &Bytes, n: usize) -> Result<(), SnapshotError> {
            if buf.remaining() < n {
                Err(SnapshotError::Truncated)
            } else {
                Ok(())
            }
        }

        /// Reads a length-validated offset table: starts at 0, is
        /// non-decreasing, and ends exactly at `nnz`.
        fn get_offsets(buf: &mut Bytes, rows: usize, nnz: u32) -> Result<Vec<u32>, SnapshotError> {
            need(buf, (rows + 1) * 4)?;
            let offsets: Vec<u32> = (0..=rows).map(|_| buf.get_u32_le()).collect();
            if offsets[0] != 0 || offsets[rows] != nnz {
                return Err(SnapshotError::Corrupt("offset table does not span its slab"));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(SnapshotError::Corrupt("offset table not monotone"));
            }
            Ok(offsets)
        }

        need(&buf, 8)?;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let variant = match buf.get_u8() {
            0 => Variant::FollowingOnly,
            1 => Variant::TweetingOnly,
            2 => Variant::Full,
            t => return Err(SnapshotError::BadTag(t)),
        };
        let count_noisy_assignments = match buf.get_u8() {
            0 => false,
            1 => true,
            t => return Err(SnapshotError::BadTag(t)),
        };

        need(&buf, 7 * 8 + 8 + 8)?;
        let tau = buf.get_f64_le();
        let delta = buf.get_f64_le();
        let rho_f = buf.get_f64_le();
        let rho_t = buf.get_f64_le();
        let power_law = PowerLaw { alpha: buf.get_f64_le(), beta: buf.get_f64_le() };
        let follow_prob = buf.get_f64_le();
        let num_cities = buf.get_u32_le();
        let num_venues = buf.get_u32_le();
        let gaz_fingerprint = buf.get_u64_le();

        need(&buf, 4)?;
        let n_probs = buf.get_u32_le() as usize;
        if n_probs != num_venues as usize {
            return Err(SnapshotError::Corrupt("venue_probs length != num_venues"));
        }
        need(&buf, n_probs * 8)?;
        let venue_probs: Vec<f64> = (0..n_probs).map(|_| buf.get_f64_le()).collect();

        // --- User arena ---------------------------------------------------
        need(&buf, 8)?;
        let n_users = buf.get_u32_le() as usize;
        let nnz = buf.get_u32_le();
        // Every slab length is now known: a declared size the buffer
        // cannot possibly hold must fail *before* any pre-allocation, or a
        // corrupt header turns into a multi-GB allocation instead of a
        // typed error.
        need(&buf, (n_users + 1) * 4 + (nnz as usize) * 20 + n_users * 20)?;
        let offsets = get_offsets(&mut buf, n_users, nnz)?;
        let candidates: Vec<CityId> = (0..nnz).map(|_| CityId(buf.get_u32_le())).collect();
        if candidates.iter().any(|c| c.0 >= num_cities) {
            return Err(SnapshotError::Corrupt("candidate city out of range"));
        }
        let gammas: Vec<f64> = (0..nnz).map(|_| buf.get_f64_le()).collect();
        let mean_counts: Vec<f64> = (0..nnz).map(|_| buf.get_f64_le()).collect();
        let mean_totals: Vec<f64> = (0..n_users).map(|_| buf.get_f64_le()).collect();
        let gamma_totals: Vec<f64> = (0..n_users).map(|_| buf.get_f64_le()).collect();
        let homes: Vec<CityId> = (0..n_users).map(|_| CityId(buf.get_u32_le())).collect();
        for u in 0..n_users {
            let row = &candidates[offsets[u] as usize..offsets[u + 1] as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("candidate list not sorted"));
            }
            // Fold-in anchors partners at `home` and binary-searches it in
            // the candidate list; a snapshot violating that must not thaw.
            if row.binary_search(&homes[u]).is_err() {
                return Err(SnapshotError::Corrupt("home city is not a candidate"));
            }
        }
        let users = UserArena {
            offsets,
            candidates,
            gammas,
            mean_counts,
            mean_totals,
            gamma_totals,
            homes,
        };

        // --- Venue arena --------------------------------------------------
        need(&buf, 8)?;
        let n_cities = buf.get_u32_le() as usize;
        if n_cities != num_cities as usize {
            return Err(SnapshotError::Corrupt("venue arena rows != num_cities"));
        }
        let vnz = buf.get_u32_le();
        need(&buf, (n_cities + 1) * 4 + (vnz as usize) * 12 + n_cities * 8)?;
        let offsets = get_offsets(&mut buf, n_cities, vnz)?;
        let venue_ids: Vec<u32> = (0..vnz).map(|_| buf.get_u32_le()).collect();
        if venue_ids.iter().any(|&v| v >= num_venues) {
            return Err(SnapshotError::Corrupt("venue id out of range"));
        }
        let counts: Vec<f64> = (0..vnz).map(|_| buf.get_f64_le()).collect();
        let city_totals: Vec<f64> = (0..n_cities).map(|_| buf.get_f64_le()).collect();
        for l in 0..n_cities {
            let row = &venue_ids[offsets[l] as usize..offsets[l + 1] as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("venue count row not sorted"));
            }
        }
        let venues = VenueArena { offsets, venue_ids, counts, city_totals };

        Ok(Self {
            variant,
            count_noisy_assignments,
            tau,
            delta,
            rho_f,
            rho_t,
            power_law,
            follow_prob,
            venue_probs,
            num_cities,
            num_venues,
            gaz_fingerprint,
            users,
            venues,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidacy::Candidacy;
    use crate::config::MlpConfig;
    use crate::random_models::RandomModels;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    fn trained_snapshot(users: usize, seed: u64) -> PosteriorSnapshot {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
                .generate();
        let config = MlpConfig { seed, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for _ in 0..6 {
            sampler.sweep();
            sampler.state.accumulate();
        }
        PosteriorSnapshot::freeze(&sampler)
    }

    #[test]
    fn freeze_captures_the_trained_state() {
        let snap = trained_snapshot(120, 41);
        assert_eq!(snap.num_users(), 120);
        assert_eq!(snap.num_cities as usize, Gazetteer::us_cities().num_cities());
        for u in 0..snap.num_users() {
            let view = snap.users.user(UserId(u as u32));
            assert_eq!(view.candidates.len(), view.gammas.len());
            assert_eq!(view.candidates.len(), view.mean_counts.len());
            assert!((view.mean_total - view.mean_counts.iter().sum::<f64>()).abs() < 1e-9);
            assert!(view.candidates.contains(&view.home));
        }
        // φ totals match their rows.
        for l in 0..snap.venues.num_cities() {
            let city = CityId(l as u32);
            let sum: f64 = snap.venues.row(city).map(|(_, c)| c).sum();
            assert_eq!(sum, snap.venues.city_total(city));
        }
        // Venue noise sums to one (it is T_R, a distribution).
        let total: f64 = snap.venue_probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let snap = trained_snapshot(100, 43);
        let decoded = PosteriorSnapshot::decode(snap.encode()).unwrap();
        assert_eq!(snap, decoded);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let snap = trained_snapshot(20, 47);
        let mut raw = snap.encode().to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::BadMagic(_)
        ));
        let mut raw = snap.encode().to_vec();
        raw[4] = 0xFE;
        assert!(matches!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::UnsupportedVersion(_)
        ));
    }

    /// A stored v1 artifact prefix (magic "MLPS" + version 1, as every v1
    /// snapshot began) must fail with the typed version error — not panic,
    /// and never decode as garbage v2 slabs.
    #[test]
    fn v1_snapshot_prefix_fails_with_unsupported_version() {
        // First 6 bytes of any v1 artifact: 4D4C5053 LE + 0001 LE.
        let mut v1 = vec![0x53, 0x50, 0x4C, 0x4D, 0x01, 0x00];
        // Arbitrary v1 payload tail — must never be interpreted.
        v1.extend_from_slice(&[0x02, 0x01, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF]);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(v1)).unwrap_err(),
            SnapshotError::UnsupportedVersion(1)
        );
    }

    #[test]
    fn truncation_fails_loudly_at_every_cut() {
        let snap = trained_snapshot(15, 53);
        let bytes = snap.encode();
        for cut in [0usize, 3, 8, 40, bytes.len() / 3, bytes.len() - 1] {
            let err = PosteriorSnapshot::decode(bytes.slice(..cut)).unwrap_err();
            assert_eq!(err, SnapshotError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn frozen_noise_matches_training_bit_for_bit() {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: 80, seed: 59, ..Default::default() })
                .generate();
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let probs: Vec<f64> =
            (0..gaz.num_venues()).map(|v| random.venue_prob(VenueId(v as u32))).collect();
        let frozen = RandomModels::from_frozen(random.follow_prob(), probs);
        assert_eq!(frozen.follow_prob().to_bits(), random.follow_prob().to_bits());
        for v in 0..gaz.num_venues() as u32 {
            assert_eq!(
                frozen.venue_prob(VenueId(v)).to_bits(),
                random.venue_prob(VenueId(v)).to_bits(),
                "venue {v}"
            );
        }
    }
}
