//! Frozen posterior artifacts for warm-start serving.
//!
//! Training is expensive (a full-corpus Gibbs run); prediction for a user
//! the model never saw should not be. A [`PosteriorSnapshot`] freezes
//! everything a fold-in chain ([`crate::infer`]) needs from a trained
//! sampler into one immutable, serialisable artifact:
//!
//! * the collapsed posterior — per-user mean counts `ϕ̄` over each user's
//!   candidate list, and the venue counts `φ_{l,v}` with city totals;
//! * the hyper-parameters the conditionals evaluate (`τ`, `δ`, `ρ_f`,
//!   `ρ_t`, the calibrated power law, the `count_noisy` convention and
//!   observation variant);
//! * the learned noise models `F_R` and `T_R` as exact probabilities.
//!
//! The binary encoding follows the `mlp_social::codec` conventions: a
//! little-endian layout over `bytes`, magic-tagged and versioned so stale
//! or corrupted artifacts fail loudly with a typed [`SnapshotError`]
//! instead of deserialising garbage. Serving fleets can therefore build
//! the snapshot once offline, ship the bytes to replicas, and answer
//! fold-in queries against a shared read-only copy — no locks, no count
//! merging, because frozen counts never mutate.

use crate::config::Variant;
use crate::sampler::GibbsSampler;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_geo::PowerLaw;
use mlp_social::UserId;

const MAGIC: u32 = 0x4D4C_5053; // "MLPS"
const VERSION: u16 = 1;

/// Stable (FNV-1a, rustc-independent) content hash of a gazetteer:
/// every city's name, state, coordinates, and population, and every
/// venue's resolution list. Snapshots carry this so that thawing against
/// a *different* geography — even one with the same city and venue
/// counts — fails loudly instead of silently serving predictions whose
/// city ids mean different places.
pub fn gazetteer_fingerprint(gaz: &Gazetteer) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat_bytes = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat_bytes(&(gaz.num_cities() as u64).to_le_bytes());
    eat_bytes(&(gaz.num_venues() as u64).to_le_bytes());
    for city in gaz.cities() {
        eat_bytes(city.name.as_bytes());
        eat_bytes(city.state.as_bytes());
        eat_bytes(&city.center.lat().to_bits().to_le_bytes());
        eat_bytes(&city.center.lon().to_bits().to_le_bytes());
        eat_bytes(&city.population.to_le_bytes());
    }
    for venue in gaz.venues() {
        eat_bytes(venue.name.as_bytes());
        eat_bytes(&(venue.cities.len() as u64).to_le_bytes());
        for &c in &venue.cities {
            eat_bytes(&c.0.to_le_bytes());
        }
    }
    h
}

/// Errors raised when decoding a posterior snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Wrong magic number — not a posterior snapshot.
    BadMagic(u32),
    /// Snapshot from an incompatible format version.
    BadVersion(u16),
    /// Buffer ended before the declared payload.
    Truncated,
    /// An enum tag byte held an unknown value.
    BadTag(u8),
    /// Structurally invalid payload (mismatched lengths, bad ids).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:#x}"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadTag(t) => write!(f, "unknown snapshot tag byte {t}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One training user's frozen posterior: their candidate list, priors, and
/// post-burn-in mean counts, plus the derived MAP home used to anchor
/// fold-in edges.
#[derive(Debug, Clone, PartialEq)]
pub struct UserPosterior {
    /// Candidate cities, sorted ascending (the Gibbs domain).
    pub candidates: Vec<CityId>,
    /// Priors `γ` aligned with `candidates`.
    pub gammas: Vec<f64>,
    /// Mean post-burn-in counts `ϕ̄` aligned with `candidates`.
    pub mean_counts: Vec<f64>,
    /// `Σ_c ϕ̄` (kept explicit so [`crate::kernel::CountView`] lookups
    /// stay O(1)).
    pub mean_total: f64,
    /// `Σ_c γ`.
    pub gamma_total: f64,
    /// MAP home — the argmax of `θ̂` (Eq. 10).
    pub home: CityId,
}

/// An immutable frozen posterior, ready for fold-in inference.
#[derive(Debug, Clone, PartialEq)]
pub struct PosteriorSnapshot {
    /// Which observation types the model was trained on.
    pub variant: Variant,
    /// Whether noisy assignments contributed to `ϕ` during training.
    pub count_noisy_assignments: bool,
    /// τ — base candidate prior.
    pub tau: f64,
    /// δ — venue-multinomial prior.
    pub delta: f64,
    /// ρ_f — prior noise probability for following relationships.
    pub rho_f: f64,
    /// ρ_t — prior noise probability for tweeting relationships.
    pub rho_t: f64,
    /// The calibrated (possibly EM-refined) power law.
    pub power_law: PowerLaw,
    /// `p(f⟨i,j⟩ | F_R)`.
    pub follow_prob: f64,
    /// `p(t⟨i,j⟩ | T_R)` per venue id — exact training-time values.
    pub venue_probs: Vec<f64>,
    /// Gazetteer shape the snapshot was trained against.
    pub num_cities: u32,
    /// Venue vocabulary size.
    pub num_venues: u32,
    /// [`gazetteer_fingerprint`] of the training gazetteer — validated on
    /// thaw so a snapshot cannot silently serve a different geography,
    /// even one with identical shape.
    pub gaz_fingerprint: u64,
    /// Per-training-user posteriors, indexed by `UserId`.
    pub users: Vec<UserPosterior>,
    /// Frozen `φ_{l,·}` per city: `(venue id, count)` sorted by venue id.
    pub venue_counts: Vec<Vec<(u32, f64)>>,
    /// `Σ_v φ_{l,v}` per city.
    pub city_totals: Vec<f64>,
}

impl PosteriorSnapshot {
    /// Freezes a trained sampler into an immutable snapshot.
    ///
    /// Call after the final sweep (and after post-burn-in accumulation):
    /// `ϕ̄` uses the accumulated means, `φ` the final venue counts, and the
    /// power law whatever Gibbs-EM left behind.
    pub fn freeze(sampler: &GibbsSampler<'_>) -> Self {
        let gaz = sampler.gazetteer();
        let candidacy = sampler.candidacy();
        let config = sampler.config();
        let n = sampler.dataset().num_users();

        let users = (0..n)
            .map(|u| {
                let user = UserId(u as u32);
                let candidates = candidacy.candidates(user).to_vec();
                let gammas = candidacy.gammas(user).to_vec();
                let mean_counts: Vec<f64> =
                    (0..candidates.len()).map(|c| sampler.state.mean_user_count(user, c)).collect();
                let mean_total = mean_counts.iter().sum();
                UserPosterior {
                    home: sampler.estimate_theta(user)[0].0,
                    gamma_total: candidacy.gamma_total(user),
                    candidates,
                    gammas,
                    mean_counts,
                    mean_total,
                }
            })
            .collect();

        let venue_counts: Vec<Vec<(u32, f64)>> = (0..gaz.num_cities())
            .map(|l| {
                sampler
                    .state
                    .venue_count_row(CityId(l as u32))
                    .into_iter()
                    .map(|(v, c)| (v, c as f64))
                    .collect()
            })
            .collect();
        let city_totals = (0..gaz.num_cities())
            .map(|l| sampler.state.city_total(CityId(l as u32)) as f64)
            .collect();

        Self {
            variant: config.variant,
            count_noisy_assignments: config.count_noisy_assignments,
            tau: config.tau,
            delta: config.delta,
            rho_f: config.rho_f,
            rho_t: config.rho_t,
            power_law: sampler.power_law,
            follow_prob: sampler.random_models().follow_prob(),
            venue_probs: (0..gaz.num_venues())
                .map(|v| sampler.random_models().venue_prob(VenueId(v as u32)))
                .collect(),
            num_cities: gaz.num_cities() as u32,
            num_venues: gaz.num_venues() as u32,
            gaz_fingerprint: gazetteer_fingerprint(gaz),
            users,
            venue_counts,
            city_totals,
        }
    }

    /// Number of training users in the snapshot.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Frozen `φ_{l,v}` lookup (zero for venues the city never hosted).
    #[inline]
    pub fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        let row = &self.venue_counts[l.index()];
        match row.binary_search_by_key(&v.0, |&(id, _)| id) {
            Ok(i) => row[i].1,
            Err(_) => 0.0,
        }
    }

    /// Serialises the snapshot into the versioned binary format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            64 + self.venue_probs.len() * 8
                + self.users.iter().map(|u| 32 + u.candidates.len() * 20).sum::<usize>()
                + self.venue_counts.iter().map(|r| 8 + r.len() * 12).sum::<usize>(),
        );
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(match self.variant {
            Variant::FollowingOnly => 0,
            Variant::TweetingOnly => 1,
            Variant::Full => 2,
        });
        buf.put_u8(self.count_noisy_assignments as u8);
        for x in [
            self.tau,
            self.delta,
            self.rho_f,
            self.rho_t,
            self.power_law.alpha,
            self.power_law.beta,
            self.follow_prob,
        ] {
            buf.put_f64_le(x);
        }
        buf.put_u32_le(self.num_cities);
        buf.put_u32_le(self.num_venues);
        buf.put_u64_le(self.gaz_fingerprint);

        buf.put_u32_le(self.venue_probs.len() as u32);
        for &p in &self.venue_probs {
            buf.put_f64_le(p);
        }

        buf.put_u32_le(self.users.len() as u32);
        for u in &self.users {
            buf.put_u32_le(u.candidates.len() as u32);
            for i in 0..u.candidates.len() {
                buf.put_u32_le(u.candidates[i].0);
                buf.put_f64_le(u.gammas[i]);
                buf.put_f64_le(u.mean_counts[i]);
            }
            buf.put_f64_le(u.mean_total);
            buf.put_f64_le(u.gamma_total);
            buf.put_u32_le(u.home.0);
        }

        buf.put_u32_le(self.venue_counts.len() as u32);
        for (row, &total) in self.venue_counts.iter().zip(&self.city_totals) {
            buf.put_u32_le(row.len() as u32);
            for &(v, c) in row {
                buf.put_u32_le(v);
                buf.put_f64_le(c);
            }
            buf.put_f64_le(total);
        }
        buf.freeze()
    }

    /// Decodes a snapshot produced by [`Self::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Self, SnapshotError> {
        fn need(buf: &Bytes, n: usize) -> Result<(), SnapshotError> {
            if buf.remaining() < n {
                Err(SnapshotError::Truncated)
            } else {
                Ok(())
            }
        }

        need(&buf, 8)?;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let variant = match buf.get_u8() {
            0 => Variant::FollowingOnly,
            1 => Variant::TweetingOnly,
            2 => Variant::Full,
            t => return Err(SnapshotError::BadTag(t)),
        };
        let count_noisy_assignments = match buf.get_u8() {
            0 => false,
            1 => true,
            t => return Err(SnapshotError::BadTag(t)),
        };

        need(&buf, 7 * 8 + 8 + 8)?;
        let tau = buf.get_f64_le();
        let delta = buf.get_f64_le();
        let rho_f = buf.get_f64_le();
        let rho_t = buf.get_f64_le();
        let power_law = PowerLaw { alpha: buf.get_f64_le(), beta: buf.get_f64_le() };
        let follow_prob = buf.get_f64_le();
        let num_cities = buf.get_u32_le();
        let num_venues = buf.get_u32_le();
        let gaz_fingerprint = buf.get_u64_le();

        need(&buf, 4)?;
        let n_probs = buf.get_u32_le() as usize;
        if n_probs != num_venues as usize {
            return Err(SnapshotError::Corrupt("venue_probs length != num_venues"));
        }
        need(&buf, n_probs * 8)?;
        let venue_probs: Vec<f64> = (0..n_probs).map(|_| buf.get_f64_le()).collect();

        need(&buf, 4)?;
        let n_users = buf.get_u32_le() as usize;
        // A user record is at least 24 bytes; a declared count the buffer
        // cannot possibly hold must fail *before* the pre-allocation, or a
        // corrupt header turns into a multi-GB allocation instead of a
        // typed error.
        need(&buf, n_users.saturating_mul(24))?;
        let mut users = Vec::with_capacity(n_users);
        for _ in 0..n_users {
            need(&buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(&buf, len.saturating_mul(20).saturating_add(20))?;
            let mut candidates = Vec::with_capacity(len);
            let mut gammas = Vec::with_capacity(len);
            let mut mean_counts = Vec::with_capacity(len);
            for _ in 0..len {
                let city = buf.get_u32_le();
                if city >= num_cities {
                    return Err(SnapshotError::Corrupt("candidate city out of range"));
                }
                candidates.push(CityId(city));
                gammas.push(buf.get_f64_le());
                mean_counts.push(buf.get_f64_le());
            }
            let mean_total = buf.get_f64_le();
            let gamma_total = buf.get_f64_le();
            let home = CityId(buf.get_u32_le());
            if candidates.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("candidate list not sorted"));
            }
            // Fold-in anchors partners at `home` and binary-searches it in
            // the candidate list; a snapshot violating that must not thaw.
            if candidates.binary_search(&home).is_err() {
                return Err(SnapshotError::Corrupt("home city is not a candidate"));
            }
            users.push(UserPosterior {
                candidates,
                gammas,
                mean_counts,
                mean_total,
                gamma_total,
                home,
            });
        }

        need(&buf, 4)?;
        let n_cities = buf.get_u32_le() as usize;
        if n_cities != num_cities as usize {
            return Err(SnapshotError::Corrupt("venue_counts length != num_cities"));
        }
        // Same bounded-allocation guard: 12 bytes minimum per city row.
        need(&buf, n_cities.saturating_mul(12))?;
        let mut venue_counts = Vec::with_capacity(n_cities);
        let mut city_totals = Vec::with_capacity(n_cities);
        for _ in 0..n_cities {
            need(&buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(&buf, len.saturating_mul(12).saturating_add(8))?;
            let row: Vec<(u32, f64)> =
                (0..len).map(|_| (buf.get_u32_le(), buf.get_f64_le())).collect();
            if row.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(SnapshotError::Corrupt("venue count row not sorted"));
            }
            venue_counts.push(row);
            city_totals.push(buf.get_f64_le());
        }

        Ok(Self {
            variant,
            count_noisy_assignments,
            tau,
            delta,
            rho_f,
            rho_t,
            power_law,
            follow_prob,
            venue_probs,
            num_cities,
            num_venues,
            gaz_fingerprint,
            users,
            venue_counts,
            city_totals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidacy::Candidacy;
    use crate::config::MlpConfig;
    use crate::random_models::RandomModels;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    fn trained_snapshot(users: usize, seed: u64) -> PosteriorSnapshot {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
                .generate();
        let config = MlpConfig { seed, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for _ in 0..6 {
            sampler.sweep();
            sampler.state.accumulate();
        }
        PosteriorSnapshot::freeze(&sampler)
    }

    #[test]
    fn freeze_captures_the_trained_state() {
        let snap = trained_snapshot(120, 41);
        assert_eq!(snap.num_users(), 120);
        assert_eq!(snap.num_cities as usize, Gazetteer::us_cities().num_cities());
        for u in &snap.users {
            assert_eq!(u.candidates.len(), u.gammas.len());
            assert_eq!(u.candidates.len(), u.mean_counts.len());
            assert!((u.mean_total - u.mean_counts.iter().sum::<f64>()).abs() < 1e-9);
            assert!(u.candidates.contains(&u.home));
        }
        // φ totals match their rows.
        for (row, &total) in snap.venue_counts.iter().zip(&snap.city_totals) {
            let sum: f64 = row.iter().map(|&(_, c)| c).sum();
            assert_eq!(sum, total);
        }
        // Venue noise sums to one (it is T_R, a distribution).
        let total: f64 = snap.venue_probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let snap = trained_snapshot(100, 43);
        let decoded = PosteriorSnapshot::decode(snap.encode()).unwrap();
        assert_eq!(snap, decoded);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let snap = trained_snapshot(20, 47);
        let mut raw = snap.encode().to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::BadMagic(_)
        ));
        let mut raw = snap.encode().to_vec();
        raw[4] = 0xFE;
        assert!(matches!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::BadVersion(_)
        ));
    }

    #[test]
    fn truncation_fails_loudly_at_every_cut() {
        let snap = trained_snapshot(15, 53);
        let bytes = snap.encode();
        for cut in [0usize, 3, 8, 40, bytes.len() / 3, bytes.len() - 1] {
            let err = PosteriorSnapshot::decode(bytes.slice(..cut)).unwrap_err();
            assert_eq!(err, SnapshotError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn frozen_noise_matches_training_bit_for_bit() {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: 80, seed: 59, ..Default::default() })
                .generate();
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let probs: Vec<f64> =
            (0..gaz.num_venues()).map(|v| random.venue_prob(VenueId(v as u32))).collect();
        let frozen = RandomModels::from_frozen(random.follow_prob(), probs);
        assert_eq!(frozen.follow_prob().to_bits(), random.follow_prob().to_bits());
        for v in 0..gaz.num_venues() as u32 {
            assert_eq!(
                frozen.venue_prob(VenueId(v)).to_bits(),
                random.venue_prob(VenueId(v)).to_bits(),
                "venue {v}"
            );
        }
    }
}
