//! Frozen posterior artifacts for warm-start serving.
//!
//! Training is expensive (a full-corpus Gibbs run); prediction for a user
//! the model never saw should not be. A [`PosteriorSnapshot`] freezes
//! everything a fold-in chain ([`crate::infer`]) needs from a trained
//! sampler into one immutable, serialisable artifact:
//!
//! * the collapsed posterior — per-user mean counts `ϕ̄` over each user's
//!   candidate list, and the venue counts `φ_{l,v}` with city totals;
//! * the hyper-parameters the conditionals evaluate (`τ`, `δ`, `ρ_f`,
//!   `ρ_t`, the calibrated power law, the `count_noisy` convention and
//!   observation variant);
//! * the learned noise models `F_R` and `T_R` as exact probabilities.
//!
//! Since format **v2** the posterior lives in CSR arenas ([`UserArena`],
//! [`VenueArena`]): one offset table per arena and flat value slabs,
//! mirroring the training-time layout in [`crate::state`]. The binary
//! encoding is therefore a handful of length-prefixed slabs — no per-user
//! records, no intermediate maps on decode — following the
//! `mlp_social::codec` conventions: little-endian, magic-tagged and
//! versioned so stale or corrupted artifacts fail loudly with a typed
//! [`SnapshotError`] instead of deserialising garbage. Serving fleets can
//! therefore build the snapshot once offline, ship the bytes to replicas,
//! and answer fold-in queries against a shared read-only copy — no locks,
//! no count merging, because frozen counts never mutate.

use crate::config::Variant;
use crate::sampler::GibbsSampler;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_geo::PowerLaw;
use mlp_social::UserId;

const MAGIC: u32 = 0x4D4C_5053; // "MLPS"
/// Current write version: v4 = the v2 CSR-arena payload followed by a
/// [`SnapshotDelta`] record section (online refresh) whose records are
/// CRC32-framed (`u64` length + `u32` IEEE CRC of the payload). v3 wrote
/// the same section without the per-record checksum.
const VERSION: u16 = 4;
/// Oldest version this build still reads. v2 artifacts (pre-refresh, no
/// delta section) and v3 artifacts (un-checksummed records) thaw
/// unchanged; v1 artifacts fail with the typed
/// [`SnapshotError::UnsupportedVersion`].
const MIN_READ_VERSION: u16 = 2;

/// IEEE CRC32 (the zlib/PNG polynomial), table-driven, no external
/// crates. Frames every v4 delta record and every WAL record so a torn
/// or bit-flipped write is detected before its payload is parsed.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Stable (FNV-1a, rustc-independent) content hash of a gazetteer:
/// every city's name, state, coordinates, and population, and every
/// venue's resolution list. Snapshots carry this so that thawing against
/// a *different* geography — even one with the same city and venue
/// counts — fails loudly instead of silently serving predictions whose
/// city ids mean different places.
pub fn gazetteer_fingerprint(gaz: &Gazetteer) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat_bytes = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat_bytes(&(gaz.num_cities() as u64).to_le_bytes());
    eat_bytes(&(gaz.num_venues() as u64).to_le_bytes());
    for city in gaz.cities() {
        eat_bytes(city.name.as_bytes());
        eat_bytes(city.state.as_bytes());
        eat_bytes(&city.center.lat().to_bits().to_le_bytes());
        eat_bytes(&city.center.lon().to_bits().to_le_bytes());
        eat_bytes(&city.population.to_le_bytes());
    }
    for venue in gaz.venues() {
        eat_bytes(venue.name.as_bytes());
        eat_bytes(&(venue.cities.len() as u64).to_le_bytes());
        for &c in &venue.cities {
            eat_bytes(&c.0.to_le_bytes());
        }
    }
    h
}

/// Errors raised when decoding a posterior snapshot.
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Wrong magic number — not a posterior snapshot.
    BadMagic(u32),
    /// Snapshot from an incompatible format version (e.g. a v1 artifact
    /// from before the CSR arena layout).
    UnsupportedVersion(u16),
    /// Buffer ended before the declared payload.
    Truncated,
    /// An enum tag byte held an unknown value.
    BadTag(u8),
    /// Structurally invalid payload (mismatched lengths, bad ids).
    Corrupt(&'static str),
    /// A declared size cannot be represented on this target (e.g. a u64
    /// length prefix exceeding `usize::MAX` on 32-bit) or overflows the
    /// byte-count arithmetic — rejected before any allocation.
    Overflow(&'static str),
    /// The in-memory state exceeds the format's `u32` slab limits and
    /// cannot be encoded (or a delta commit would push it past them).
    TooLarge(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:#x}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads v{VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadTag(t) => write!(f, "unknown snapshot tag byte {t}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapshotError::Overflow(what) => {
                write!(f, "snapshot size overflow: {what} not representable on this target")
            }
            SnapshotError::TooLarge(what) => {
                write!(f, "snapshot exceeds format limits: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One training user's posterior as an owned record — the *builder* input
/// for [`UserArena::from_users`] (tests and the freeze path construct
/// these; the stored representation is the arena).
#[derive(Debug, Clone, PartialEq)]
pub struct UserPosterior {
    /// Candidate cities, sorted ascending (the Gibbs domain).
    pub candidates: Vec<CityId>,
    /// Priors `γ` aligned with `candidates`.
    pub gammas: Vec<f64>,
    /// Mean post-burn-in counts `ϕ̄` aligned with `candidates`.
    pub mean_counts: Vec<f64>,
    /// `Σ_c ϕ̄` (kept explicit so [`crate::kernel::CountView`] lookups
    /// stay O(1)).
    pub mean_total: f64,
    /// `Σ_c γ`.
    pub gamma_total: f64,
    /// MAP home — the argmax of `θ̂` (Eq. 10).
    pub home: CityId,
}

/// A borrowed view of one user's row across the arena slabs.
#[derive(Debug, Clone, Copy)]
pub struct UserView<'a> {
    /// Candidate cities, sorted ascending.
    pub candidates: &'a [CityId],
    /// Priors `γ` aligned with `candidates`.
    pub gammas: &'a [f64],
    /// Mean counts `ϕ̄` aligned with `candidates`.
    pub mean_counts: &'a [f64],
    /// `Σ_c ϕ̄`.
    pub mean_total: f64,
    /// `Σ_c γ`.
    pub gamma_total: f64,
    /// MAP home.
    pub home: CityId,
}

/// The frozen per-user posterior: a CSR offset table over flat
/// `candidates`/`gammas`/`mean_counts` slabs plus per-user scalar columns.
#[derive(Debug, Clone, PartialEq)]
pub struct UserArena {
    /// `num_users + 1` offsets into the three row slabs.
    offsets: Vec<u32>,
    candidates: Vec<CityId>,
    gammas: Vec<f64>,
    mean_counts: Vec<f64>,
    mean_totals: Vec<f64>,
    gamma_totals: Vec<f64>,
    homes: Vec<CityId>,
}

impl UserArena {
    /// An arena with no users.
    pub fn empty() -> Self {
        Self {
            offsets: vec![0],
            candidates: Vec::new(),
            gammas: Vec::new(),
            mean_counts: Vec::new(),
            mean_totals: Vec::new(),
            gamma_totals: Vec::new(),
            homes: Vec::new(),
        }
    }

    /// Packs owned per-user records into the columnar arena.
    pub fn from_users(users: impl IntoIterator<Item = UserPosterior>) -> Self {
        let mut arena = Self::empty();
        for u in users {
            arena.push(u);
        }
        arena
    }

    /// Appends one user's row; their id is the arena's previous
    /// [`Self::num_users`].
    pub fn push(&mut self, u: UserPosterior) {
        self.candidates.extend(u.candidates);
        self.gammas.extend(u.gammas);
        self.mean_counts.extend(u.mean_counts);
        self.offsets.push(self.candidates.len() as u32);
        self.mean_totals.push(u.mean_total);
        self.gamma_totals.push(u.gamma_total);
        self.homes.push(u.home);
    }

    /// Appends every row of `other` (an index-wise slab concatenation —
    /// the commit step of an online delta). Fails without mutating when
    /// the combined slabs would overflow the format's `u32` offsets.
    pub fn extend_from(&mut self, other: &UserArena) -> Result<(), SnapshotError> {
        let base = self.candidates.len();
        if base as u64 + other.candidates.len() as u64 > u32::MAX as u64 {
            return Err(SnapshotError::TooLarge("user candidate slab exceeds u32::MAX entries"));
        }
        if self.num_users() as u64 + other.num_users() as u64 > u32::MAX as u64 {
            return Err(SnapshotError::TooLarge("user count exceeds u32::MAX"));
        }
        self.offsets.extend(other.offsets[1..].iter().map(|&o| base as u32 + o));
        self.candidates.extend_from_slice(&other.candidates);
        self.gammas.extend_from_slice(&other.gammas);
        self.mean_counts.extend_from_slice(&other.mean_counts);
        self.mean_totals.extend_from_slice(&other.mean_totals);
        self.gamma_totals.extend_from_slice(&other.gamma_totals);
        self.homes.extend_from_slice(&other.homes);
        Ok(())
    }

    /// Number of training users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.homes.len()
    }

    /// Total number of candidate entries across all rows.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.candidates.len()
    }

    /// User `u`'s row across all slabs.
    #[inline]
    pub fn user(&self, u: UserId) -> UserView<'_> {
        let i = u.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        UserView {
            candidates: &self.candidates[range.clone()],
            gammas: &self.gammas[range.clone()],
            mean_counts: &self.mean_counts[range],
            mean_total: self.mean_totals[i],
            gamma_total: self.gamma_totals[i],
            home: self.homes[i],
        }
    }

    // Single-column accessors for hot lookups that need one slab — the
    // fold-in kernel calls these per conditional evaluation, so they must
    // not assemble a whole `UserView`.

    /// User `u`'s candidate row.
    #[inline]
    pub fn candidates_of(&self, u: UserId) -> &[CityId] {
        &self.candidates[self.offsets[u.index()] as usize..self.offsets[u.index() + 1] as usize]
    }

    /// User `u`'s γ row.
    #[inline]
    pub fn gammas_of(&self, u: UserId) -> &[f64] {
        &self.gammas[self.offsets[u.index()] as usize..self.offsets[u.index() + 1] as usize]
    }

    /// User `u`'s ϕ̄ row.
    #[inline]
    pub fn mean_counts_of(&self, u: UserId) -> &[f64] {
        &self.mean_counts[self.offsets[u.index()] as usize..self.offsets[u.index() + 1] as usize]
    }

    /// `Σ_c ϕ̄` for user `u`.
    #[inline]
    pub fn mean_total(&self, u: UserId) -> f64 {
        self.mean_totals[u.index()]
    }

    /// `Σ_c γ` for user `u`.
    #[inline]
    pub fn gamma_total(&self, u: UserId) -> f64 {
        self.gamma_totals[u.index()]
    }

    /// MAP home of user `u`.
    #[inline]
    pub fn home(&self, u: UserId) -> CityId {
        self.homes[u.index()]
    }
}

/// The frozen `φ` counts: CSR offsets over sorted `venue_ids` with a
/// parallel `counts` slab, plus per-city totals.
#[derive(Debug, Clone, PartialEq)]
pub struct VenueArena {
    /// `num_cities + 1` offsets into `venue_ids`/`counts`.
    offsets: Vec<u32>,
    venue_ids: Vec<u32>,
    counts: Vec<f64>,
    city_totals: Vec<f64>,
}

impl VenueArena {
    /// Packs per-city `(venue, count)` rows (ascending venue id) into the
    /// arena; city totals are the row sums — exact, because training
    /// counts are integers.
    pub fn from_rows<R>(rows: impl Iterator<Item = R>) -> Self
    where
        R: IntoIterator<Item = (u32, f64)>,
    {
        let mut arena = Self {
            offsets: vec![0],
            venue_ids: Vec::new(),
            counts: Vec::new(),
            city_totals: Vec::new(),
        };
        for row in rows {
            let mut total = 0.0;
            for (v, c) in row {
                arena.venue_ids.push(v);
                arena.counts.push(c);
                total += c;
            }
            arena.offsets.push(arena.venue_ids.len() as u32);
            arena.city_totals.push(total);
        }
        arena
    }

    /// Number of cities.
    #[inline]
    pub fn num_cities(&self) -> usize {
        self.city_totals.len()
    }

    /// `φ_{l,v}` lookup (zero for venues the city never hosted).
    #[inline]
    pub fn count(&self, l: CityId, v: VenueId) -> f64 {
        let i = l.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        match self.venue_ids[range.clone()].binary_search(&v.0) {
            Ok(pos) => self.counts[range.start + pos],
            Err(_) => 0.0,
        }
    }

    /// `Σ_v φ_{l,v}`.
    #[inline]
    pub fn city_total(&self, l: CityId) -> f64 {
        self.city_totals[l.index()]
    }

    /// City `l`'s `(venue, count)` row, ascending by venue id.
    pub fn row(&self, l: CityId) -> impl Iterator<Item = (u32, f64)> + '_ {
        let i = l.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        self.venue_ids[range.clone()].iter().copied().zip(self.counts[range].iter().copied())
    }

    /// Total number of stored `(city, venue)` cells.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.venue_ids.len()
    }

    /// Merges sorted-unique COO weight deltas `(cities[i], venues[i]) +=
    /// weights[i]` into the CSR slabs in one deterministic pass: existing
    /// cells accumulate in place of the merged row, new cells splice in at
    /// their venue-id position, and city totals absorb the per-city sums.
    /// Inputs must already be validated (strictly ascending `(city,
    /// venue)` keys in range, finite non-negative weights) — the caller is
    /// [`PosteriorSnapshot::apply_delta`], which checks them with typed
    /// errors. Cost is `O(existing + new)`, paid per commit rather than
    /// per request.
    fn apply_sorted_weights(
        &mut self,
        cities: &[u32],
        venues: &[u32],
        weights: &[f64],
    ) -> Result<(), SnapshotError> {
        if cities.is_empty() {
            return Ok(());
        }
        if self.venue_ids.len() as u64 + venues.len() as u64 > u32::MAX as u64 {
            return Err(SnapshotError::TooLarge("venue count slab exceeds u32::MAX entries"));
        }
        let mut new_offsets = Vec::with_capacity(self.offsets.len());
        let mut new_ids = Vec::with_capacity(self.venue_ids.len() + venues.len());
        let mut new_counts = Vec::with_capacity(self.venue_ids.len() + venues.len());
        new_offsets.push(0u32);
        let mut d = 0usize; // cursor into the delta COO
        for l in 0..self.num_cities() {
            let mut i = self.offsets[l] as usize;
            let end = self.offsets[l + 1] as usize;
            let mut total_add = 0.0f64;
            while d < cities.len() && cities[d] as usize == l {
                let v = venues[d];
                // Copy existing entries below the delta's venue id.
                while i < end && self.venue_ids[i] < v {
                    new_ids.push(self.venue_ids[i]);
                    new_counts.push(self.counts[i]);
                    i += 1;
                }
                if i < end && self.venue_ids[i] == v {
                    new_ids.push(v);
                    new_counts.push(self.counts[i] + weights[d]);
                    i += 1;
                } else {
                    new_ids.push(v);
                    new_counts.push(weights[d]);
                }
                total_add += weights[d];
                d += 1;
            }
            while i < end {
                new_ids.push(self.venue_ids[i]);
                new_counts.push(self.counts[i]);
                i += 1;
            }
            new_offsets.push(new_ids.len() as u32);
            self.city_totals[l] += total_add;
        }
        self.offsets = new_offsets;
        self.venue_ids = new_ids;
        self.counts = new_counts;
        Ok(())
    }
}

/// A mergeable increment to a [`PosteriorSnapshot`]: the unit of online
/// posterior refresh.
///
/// A delta mirrors the snapshot's arenas as flat slabs — appended user
/// rows live in their own [`UserArena`], and `φ` increments are a
/// sorted-unique COO (`(city, venue) → weight`) that
/// [`PosteriorSnapshot::apply_delta`] merges index-wise into the venue
/// CSR. Deltas compose: [`Self::merge`] concatenates consecutive deltas
/// into one (compaction), and the v3 binary format ships them as
/// length-prefixed records after the base payload, so a serving replica
/// can refresh by appending records instead of re-downloading the model.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// User count of the snapshot this delta appends after — the first
    /// appended user gets id `base_users`.
    base_users: u32,
    /// Appended users as a columnar arena.
    users: UserArena,
    /// `φ` increments: city ids, parallel venue ids, parallel weights,
    /// strictly ascending by `(city, venue)`.
    venue_cities: Vec<u32>,
    venue_ids: Vec<u32>,
    venue_weights: Vec<f64>,
}

impl SnapshotDelta {
    /// An empty delta applying after `base_users` trained users.
    pub fn new(base_users: u32) -> Self {
        Self {
            base_users,
            users: UserArena::empty(),
            venue_cities: Vec::new(),
            venue_ids: Vec::new(),
            venue_weights: Vec::new(),
        }
    }

    /// The user count this delta expects the snapshot to have.
    pub fn base_users(&self) -> u32 {
        self.base_users
    }

    /// Number of users this delta appends.
    pub fn num_new_users(&self) -> usize {
        self.users.num_users()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.users.num_users() == 0 && self.venue_cities.is_empty()
    }

    /// Appends one user's posterior row (id `base_users + previous
    /// [`Self::num_new_users`]` once committed).
    pub fn push_user(&mut self, user: UserPosterior) {
        self.users.push(user);
    }

    /// Folds `(city, venue, weight)` increments into the delta's COO.
    /// `deltas` must be sorted by `(city, venue)` with unique keys (the
    /// form [`crate::infer::FoldInRecord`] produces); weights accumulate
    /// for keys already present.
    pub fn add_venue_weights(&mut self, deltas: &[(CityId, VenueId, f64)]) {
        if deltas.is_empty() {
            return;
        }
        let old_cities = std::mem::take(&mut self.venue_cities);
        let old_ids = std::mem::take(&mut self.venue_ids);
        let old_weights = std::mem::take(&mut self.venue_weights);
        self.venue_cities.reserve(old_cities.len() + deltas.len());
        self.venue_ids.reserve(old_ids.len() + deltas.len());
        self.venue_weights.reserve(old_weights.len() + deltas.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_cities.len() || j < deltas.len() {
            let take_old = match (old_cities.get(i), deltas.get(j)) {
                (Some(&lc), Some(&(dc, dv, _))) => (lc, old_ids[i]) <= (dc.0, dv.0),
                (Some(_), None) => true,
                _ => false,
            };
            if take_old {
                let key = (old_cities[i], old_ids[i]);
                let mut w = old_weights[i];
                i += 1;
                if j < deltas.len() && (deltas[j].0 .0, deltas[j].1 .0) == key {
                    w += deltas[j].2;
                    j += 1;
                }
                self.venue_cities.push(key.0);
                self.venue_ids.push(key.1);
                self.venue_weights.push(w);
            } else {
                let (dc, dv, dw) = deltas[j];
                j += 1;
                self.venue_cities.push(dc.0);
                self.venue_ids.push(dv.0);
                self.venue_weights.push(dw);
            }
        }
    }

    /// Compacts `next` into `self`: the combined delta applies both in
    /// order. `next` must apply exactly where `self` leaves off
    /// (`next.base_users == self.base_users + self.num_new_users()`), or
    /// the merge is rejected with a typed error and `self` is unchanged.
    pub fn merge(&mut self, next: &SnapshotDelta) -> Result<(), SnapshotError> {
        if next.base_users as u64 != self.base_users as u64 + self.users.num_users() as u64 {
            return Err(SnapshotError::Corrupt("delta sequence gap: base user count mismatch"));
        }
        self.users.extend_from(&next.users)?;
        let coo: Vec<(CityId, VenueId, f64)> = next
            .venue_cities
            .iter()
            .zip(&next.venue_ids)
            .zip(&next.venue_weights)
            .map(|((&l, &v), &w)| (CityId(l), VenueId(v), w))
            .collect();
        self.add_venue_weights(&coo);
        Ok(())
    }

    /// Serialised record size in bytes (excluding the length prefix).
    fn record_len(&self) -> u64 {
        let n = self.users.num_users() as u64;
        let nnz = self.users.num_entries() as u64;
        let vnz = self.venue_cities.len() as u64;
        4 + 4 + 4 + (n + 1) * 4 + nnz * 20 + n * 20 + 4 + vnz * 16
    }

    /// Appends the v4 framed record: `u64` payload byte length, `u32`
    /// IEEE CRC32 of the payload, then the payload itself.
    pub(crate) fn encode_record(&self, buf: &mut BytesMut) -> Result<(), SnapshotError> {
        let payload = self.encode_record_payload()?;
        buf.put_u64_le(payload.len() as u64);
        buf.put_u32_le(crc32(payload.as_slice()));
        buf.extend_from_slice(payload.as_slice());
        Ok(())
    }

    /// The bare record payload (no framing) — shared by the artifact's
    /// delta section and the sidecar WAL, which adds its own framing.
    pub(crate) fn encode_record_payload(&self) -> Result<Bytes, SnapshotError> {
        let n = u32::try_from(self.users.num_users())
            .map_err(|_| SnapshotError::TooLarge("delta user count exceeds u32::MAX"))?;
        let nnz = u32::try_from(self.users.num_entries())
            .map_err(|_| SnapshotError::TooLarge("delta candidate slab exceeds u32::MAX"))?;
        let vnz = u32::try_from(self.venue_cities.len())
            .map_err(|_| SnapshotError::TooLarge("delta venue slab exceeds u32::MAX"))?;
        let mut buf = BytesMut::with_capacity(self.record_len() as usize);
        buf.put_u32_le(self.base_users);
        buf.put_u32_le(n);
        buf.put_u32_le(nnz);
        for &o in &self.users.offsets {
            buf.put_u32_le(o);
        }
        for &c in &self.users.candidates {
            buf.put_u32_le(c.0);
        }
        for &g in &self.users.gammas {
            buf.put_f64_le(g);
        }
        for &m in &self.users.mean_counts {
            buf.put_f64_le(m);
        }
        for &m in &self.users.mean_totals {
            buf.put_f64_le(m);
        }
        for &g in &self.users.gamma_totals {
            buf.put_f64_le(g);
        }
        for &h in &self.users.homes {
            buf.put_u32_le(h.0);
        }
        buf.put_u32_le(vnz);
        for &l in &self.venue_cities {
            buf.put_u32_le(l);
        }
        for &v in &self.venue_ids {
            buf.put_u32_le(v);
        }
        for &w in &self.venue_weights {
            buf.put_f64_le(w);
        }
        Ok(buf.freeze())
    }

    /// Parses one framed record. The `u64` length prefix is checked
    /// against the remaining buffer *before* any slab is sized (an absurd
    /// declared length is a typed error, not an allocation), and a record
    /// that does not consume exactly its declared bytes is rejected.
    ///
    /// `checksummed` selects the framing: v4 records carry a `u32` IEEE
    /// CRC32 between the length prefix and the payload, verified before
    /// the payload is parsed; v3 records have no checksum.
    pub(crate) fn decode_record(buf: &mut Bytes, checksummed: bool) -> Result<Self, SnapshotError> {
        need64(buf, 8)?;
        let declared = buf.get_u64_le();
        let len = usize::try_from(declared)
            .map_err(|_| SnapshotError::Overflow("delta record length prefix"))?;
        let expect_crc = if checksummed {
            need64(buf, 4)?;
            Some(buf.get_u32_le())
        } else {
            None
        };
        if buf.remaining() < len {
            return Err(SnapshotError::Truncated);
        }
        let rec = buf.split_to(len);
        if let Some(crc) = expect_crc {
            if crc32(rec.as_slice()) != crc {
                return Err(SnapshotError::Corrupt("delta record checksum mismatch"));
            }
        }
        Self::decode_record_payload(rec)
    }

    /// Parses a bare record payload whose framing (length, and for v4 /
    /// the WAL a CRC) has already been read and verified by the caller.
    pub(crate) fn decode_record_payload(mut rec: Bytes) -> Result<Self, SnapshotError> {
        need64(&rec, 12)?;
        let base_users = rec.get_u32_le();
        let n = rec.get_u32_le() as usize;
        let nnz = rec.get_u32_le();
        need64(&rec, (n as u64 + 1) * 4 + nnz as u64 * 20 + n as u64 * 20)?;
        let offsets = get_offsets(&mut rec, n, nnz)?;
        let candidates: Vec<CityId> = (0..nnz).map(|_| CityId(rec.get_u32_le())).collect();
        let gammas: Vec<f64> = (0..nnz).map(|_| rec.get_f64_le()).collect();
        let mean_counts: Vec<f64> = (0..nnz).map(|_| rec.get_f64_le()).collect();
        let mean_totals: Vec<f64> = (0..n).map(|_| rec.get_f64_le()).collect();
        let gamma_totals: Vec<f64> = (0..n).map(|_| rec.get_f64_le()).collect();
        let homes: Vec<CityId> = (0..n).map(|_| CityId(rec.get_u32_le())).collect();
        need64(&rec, 4)?;
        let vnz = rec.get_u32_le();
        need64(&rec, vnz as u64 * 16)?;
        let venue_cities: Vec<u32> = (0..vnz).map(|_| rec.get_u32_le()).collect();
        let venue_ids: Vec<u32> = (0..vnz).map(|_| rec.get_u32_le()).collect();
        let venue_weights: Vec<f64> = (0..vnz).map(|_| rec.get_f64_le()).collect();
        if rec.has_remaining() {
            return Err(SnapshotError::Corrupt("delta record longer than its payload"));
        }
        Ok(Self {
            base_users,
            users: UserArena {
                offsets,
                candidates,
                gammas,
                mean_counts,
                mean_totals,
                gamma_totals,
                homes,
            },
            venue_cities,
            venue_ids,
            venue_weights,
        })
    }
}

/// An immutable frozen posterior, ready for fold-in inference.
#[derive(Debug, Clone, PartialEq)]
pub struct PosteriorSnapshot {
    /// Which observation types the model was trained on.
    pub variant: Variant,
    /// Whether noisy assignments contributed to `ϕ` during training.
    pub count_noisy_assignments: bool,
    /// τ — base candidate prior.
    pub tau: f64,
    /// δ — venue-multinomial prior.
    pub delta: f64,
    /// ρ_f — prior noise probability for following relationships.
    pub rho_f: f64,
    /// ρ_t — prior noise probability for tweeting relationships.
    pub rho_t: f64,
    /// The calibrated (possibly EM-refined) power law.
    pub power_law: PowerLaw,
    /// `p(f⟨i,j⟩ | F_R)`.
    pub follow_prob: f64,
    /// `p(t⟨i,j⟩ | T_R)` per venue id — exact training-time values.
    pub venue_probs: Vec<f64>,
    /// Gazetteer shape the snapshot was trained against.
    pub num_cities: u32,
    /// Venue vocabulary size.
    pub num_venues: u32,
    /// [`gazetteer_fingerprint`] of the training gazetteer — validated on
    /// thaw so a snapshot cannot silently serve a different geography,
    /// even one with identical shape.
    pub gaz_fingerprint: u64,
    /// Per-training-user posteriors, CSR arena indexed by `UserId`.
    pub users: UserArena,
    /// Frozen `φ` CSR arena with per-city totals.
    pub venues: VenueArena,
}

impl PosteriorSnapshot {
    /// Freezes a trained sampler into an immutable snapshot.
    ///
    /// Call after the final sweep (and after post-burn-in accumulation):
    /// `ϕ̄` uses the accumulated means, `φ` the final venue counts, and the
    /// power law whatever Gibbs-EM left behind.
    pub fn freeze(sampler: &GibbsSampler<'_>) -> Self {
        let gaz = sampler.gazetteer();
        let candidacy = sampler.candidacy();
        let config = sampler.config();
        let n = sampler.dataset().num_users();

        let users = UserArena::from_users((0..n).map(|u| {
            let user = UserId(u as u32);
            let candidates = candidacy.candidates(user).to_vec();
            let gammas = candidacy.gammas(user).to_vec();
            let mean_counts: Vec<f64> =
                (0..candidates.len()).map(|c| sampler.state.mean_user_count(user, c)).collect();
            let mean_total = mean_counts.iter().sum();
            UserPosterior {
                home: sampler.estimate_theta(user)[0].0,
                gamma_total: candidacy.gamma_total(user),
                candidates,
                gammas,
                mean_counts,
                mean_total,
            }
        }));

        // The CSR state rows already iterate non-zero entries in venue-id
        // order, so the arena packs straight off the live store — no
        // intermediate maps, no sorting.
        let venues =
            VenueArena::from_rows((0..gaz.num_cities()).map(|l| {
                sampler.state.venue_count_row(CityId(l as u32)).map(|(v, c)| (v, c as f64))
            }));

        Self {
            variant: config.variant,
            count_noisy_assignments: config.count_noisy_assignments,
            tau: config.tau,
            delta: config.delta,
            rho_f: config.rho_f,
            rho_t: config.rho_t,
            power_law: sampler.power_law,
            follow_prob: sampler.random_models().follow_prob(),
            venue_probs: (0..gaz.num_venues())
                .map(|v| sampler.random_models().venue_prob(VenueId(v as u32)))
                .collect(),
            num_cities: gaz.num_cities() as u32,
            num_venues: gaz.num_venues() as u32,
            gaz_fingerprint: gazetteer_fingerprint(gaz),
            users,
            venues,
        }
    }

    /// Number of training users in the snapshot.
    pub fn num_users(&self) -> usize {
        self.users.num_users()
    }

    /// Frozen `φ_{l,v}` lookup (zero for venues the city never hosted).
    #[inline]
    pub fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        self.venues.count(l, v)
    }

    /// Serialises the snapshot into the versioned binary format: a fixed
    /// header followed by length-prefixed flat slabs — the arenas'
    /// in-memory layout, written column by column — and an empty delta
    /// record section (v4).
    ///
    /// The format's `u32` slab limits (> 4 Gi candidate entries —
    /// hundreds of GiB of state) surface as the typed
    /// [`SnapshotError::TooLarge`]; there is deliberately no panicking
    /// variant, so no serving process can abort on an oversized encode.
    pub fn try_encode(&self) -> Result<Bytes, SnapshotError> {
        self.encode_with_deltas(&[])
    }

    /// Serialises this snapshot as a v4 *base* followed by `deltas` as
    /// CRC-framed records. Decoding replays the records onto the base,
    /// so the artifact thaws to the refreshed posterior — and a
    /// publisher can ship an update by appending a record and patching the
    /// count instead of re-encoding the arenas
    /// ([`crate::online::OnlineUpdater::encode_artifact`] does exactly
    /// that).
    pub fn encode_with_deltas(&self, deltas: &[SnapshotDelta]) -> Result<Bytes, SnapshotError> {
        let mut buf = self.encode_payload()?;
        append_delta_section(&mut buf, deltas)?;
        Ok(buf.freeze())
    }

    /// The v4 header + base payload, without the trailing delta section.
    pub(crate) fn encode_payload(&self) -> Result<BytesMut, SnapshotError> {
        let nnz = self.users.candidates.len();
        let vnz = self.venues.venue_ids.len();
        let n = self.users.num_users();
        let cities = self.venues.num_cities();
        let nnz32 = u32::try_from(nnz)
            .map_err(|_| SnapshotError::TooLarge("user candidate slab exceeds u32::MAX entries"))?;
        let vnz32 = u32::try_from(vnz)
            .map_err(|_| SnapshotError::TooLarge("venue count slab exceeds u32::MAX entries"))?;
        let n32 =
            u32::try_from(n).map_err(|_| SnapshotError::TooLarge("user count exceeds u32::MAX"))?;
        let cities32 = u32::try_from(cities)
            .map_err(|_| SnapshotError::TooLarge("city count exceeds u32::MAX"))?;
        let mut buf = BytesMut::with_capacity(
            100 + self.venue_probs.len() * 8
                + (n + 1) * 4
                + nnz * 20
                + n * 20
                + (cities + 1) * 4
                + vnz * 12
                + cities * 8,
        );
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(match self.variant {
            Variant::FollowingOnly => 0,
            Variant::TweetingOnly => 1,
            Variant::Full => 2,
        });
        buf.put_u8(self.count_noisy_assignments as u8);
        for x in [
            self.tau,
            self.delta,
            self.rho_f,
            self.rho_t,
            self.power_law.alpha,
            self.power_law.beta,
            self.follow_prob,
        ] {
            buf.put_f64_le(x);
        }
        buf.put_u32_le(self.num_cities);
        buf.put_u32_le(self.num_venues);
        buf.put_u64_le(self.gaz_fingerprint);

        buf.put_u32_le(self.venue_probs.len() as u32);
        for &p in &self.venue_probs {
            buf.put_f64_le(p);
        }

        // User arena: offsets, then each slab in column order.
        buf.put_u32_le(n32);
        buf.put_u32_le(nnz32);
        for &o in &self.users.offsets {
            buf.put_u32_le(o);
        }
        for &c in &self.users.candidates {
            buf.put_u32_le(c.0);
        }
        for &g in &self.users.gammas {
            buf.put_f64_le(g);
        }
        for &m in &self.users.mean_counts {
            buf.put_f64_le(m);
        }
        for &m in &self.users.mean_totals {
            buf.put_f64_le(m);
        }
        for &g in &self.users.gamma_totals {
            buf.put_f64_le(g);
        }
        for &h in &self.users.homes {
            buf.put_u32_le(h.0);
        }

        // Venue arena.
        buf.put_u32_le(cities32);
        buf.put_u32_le(vnz32);
        for &o in &self.venues.offsets {
            buf.put_u32_le(o);
        }
        for &v in &self.venues.venue_ids {
            buf.put_u32_le(v);
        }
        for &c in &self.venues.counts {
            buf.put_f64_le(c);
        }
        for &t in &self.venues.city_totals {
            buf.put_f64_le(t);
        }
        Ok(buf)
    }

    /// Commits a delta: appends its user rows to the user arena and
    /// merges its `φ` increments into the venue CSR — index-wise, no
    /// clone of the trained state, no retrain. Everything is validated
    /// up front with typed errors (the same invariants [`Self::decode`]
    /// enforces), so a failed apply leaves the snapshot untouched.
    pub fn apply_delta(&mut self, delta: &SnapshotDelta) -> Result<(), SnapshotError> {
        if delta.base_users as usize != self.users.num_users() {
            return Err(SnapshotError::Corrupt("delta base user count mismatch"));
        }
        for u in 0..delta.users.num_users() {
            let view = delta.users.user(UserId(u as u32));
            if view.candidates.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("delta candidate list not sorted"));
            }
            if view.candidates.iter().any(|c| c.0 >= self.num_cities) {
                return Err(SnapshotError::Corrupt("delta candidate city out of range"));
            }
            if view.candidates.binary_search(&view.home).is_err() {
                return Err(SnapshotError::Corrupt("delta home city is not a candidate"));
            }
            if view.gammas.iter().any(|g| !g.is_finite() || *g <= 0.0) {
                return Err(SnapshotError::Corrupt("delta gamma not finite-positive"));
            }
            if view.mean_counts.iter().any(|m| !m.is_finite() || *m < 0.0)
                || !view.mean_total.is_finite()
                || view.mean_total < 0.0
                || !view.gamma_total.is_finite()
                || view.gamma_total <= 0.0
            {
                return Err(SnapshotError::Corrupt("delta mean counts not finite-nonnegative"));
            }
        }
        if delta.venue_cities.len() != delta.venue_ids.len()
            || delta.venue_cities.len() != delta.venue_weights.len()
        {
            return Err(SnapshotError::Corrupt("delta venue columns misaligned"));
        }
        let keys = delta.venue_cities.iter().zip(&delta.venue_ids);
        if keys.clone().any(|(&l, &v)| l >= self.num_cities || v >= self.num_venues) {
            return Err(SnapshotError::Corrupt("delta venue cell out of range"));
        }
        let mut prev: Option<(u32, u32)> = None;
        for (&l, &v) in keys {
            if prev.is_some_and(|p| p >= (l, v)) {
                return Err(SnapshotError::Corrupt("delta venue cells not sorted-unique"));
            }
            prev = Some((l, v));
        }
        if delta.venue_weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(SnapshotError::Corrupt("delta venue weight not finite-nonnegative"));
        }
        // Slab-limit checks up front too, so a failure below cannot leave
        // one arena mutated and the other not.
        if self.venues.num_entries() as u64 + delta.venue_ids.len() as u64 > u32::MAX as u64 {
            return Err(SnapshotError::TooLarge("venue count slab exceeds u32::MAX entries"));
        }
        self.users.extend_from(&delta.users)?;
        self.venues.apply_sorted_weights(
            &delta.venue_cities,
            &delta.venue_ids,
            &delta.venue_weights,
        )
    }

    /// Decodes a snapshot produced by [`Self::try_encode`] (v4) or by an
    /// older v3 / pre-refresh v2 build; delta records are replayed onto
    /// the base so the result is the refreshed posterior.
    pub fn decode(mut buf: Bytes) -> Result<Self, SnapshotError> {
        need64(&buf, 8)?;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = buf.get_u16_le();
        if !(MIN_READ_VERSION..=VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let variant = match buf.get_u8() {
            0 => Variant::FollowingOnly,
            1 => Variant::TweetingOnly,
            2 => Variant::Full,
            t => return Err(SnapshotError::BadTag(t)),
        };
        let count_noisy_assignments = match buf.get_u8() {
            0 => false,
            1 => true,
            t => return Err(SnapshotError::BadTag(t)),
        };

        need64(&buf, 7 * 8 + 8 + 8)?;
        let tau = buf.get_f64_le();
        let delta = buf.get_f64_le();
        let rho_f = buf.get_f64_le();
        let rho_t = buf.get_f64_le();
        let power_law = PowerLaw { alpha: buf.get_f64_le(), beta: buf.get_f64_le() };
        let follow_prob = buf.get_f64_le();
        let num_cities = buf.get_u32_le();
        let num_venues = buf.get_u32_le();
        let gaz_fingerprint = buf.get_u64_le();

        need64(&buf, 4)?;
        let n_probs = buf.get_u32_le() as usize;
        if n_probs != num_venues as usize {
            return Err(SnapshotError::Corrupt("venue_probs length != num_venues"));
        }
        need64(&buf, n_probs as u64 * 8)?;
        let venue_probs: Vec<f64> = (0..n_probs).map(|_| buf.get_f64_le()).collect();

        // --- User arena ---------------------------------------------------
        need64(&buf, 8)?;
        let n_users = buf.get_u32_le() as usize;
        let nnz = buf.get_u32_le();
        // Every slab length is now known: a declared size the buffer
        // cannot possibly hold must fail *before* any pre-allocation, or a
        // corrupt header turns into a multi-GB allocation instead of a
        // typed error. The byte count is computed in u64 so a declared
        // size near `u32::MAX` cannot wrap `usize` on 32-bit targets.
        need64(&buf, (n_users as u64 + 1) * 4 + nnz as u64 * 20 + n_users as u64 * 20)?;
        let offsets = get_offsets(&mut buf, n_users, nnz)?;
        let candidates: Vec<CityId> = (0..nnz).map(|_| CityId(buf.get_u32_le())).collect();
        if candidates.iter().any(|c| c.0 >= num_cities) {
            return Err(SnapshotError::Corrupt("candidate city out of range"));
        }
        let gammas: Vec<f64> = (0..nnz).map(|_| buf.get_f64_le()).collect();
        let mean_counts: Vec<f64> = (0..nnz).map(|_| buf.get_f64_le()).collect();
        let mean_totals: Vec<f64> = (0..n_users).map(|_| buf.get_f64_le()).collect();
        let gamma_totals: Vec<f64> = (0..n_users).map(|_| buf.get_f64_le()).collect();
        let homes: Vec<CityId> = (0..n_users).map(|_| CityId(buf.get_u32_le())).collect();
        for u in 0..n_users {
            let row = &candidates[offsets[u] as usize..offsets[u + 1] as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("candidate list not sorted"));
            }
            // Fold-in anchors partners at `home` and binary-searches it in
            // the candidate list; a snapshot violating that must not thaw.
            if row.binary_search(&homes[u]).is_err() {
                return Err(SnapshotError::Corrupt("home city is not a candidate"));
            }
        }
        let users = UserArena {
            offsets,
            candidates,
            gammas,
            mean_counts,
            mean_totals,
            gamma_totals,
            homes,
        };

        // --- Venue arena --------------------------------------------------
        need64(&buf, 8)?;
        let n_cities = buf.get_u32_le() as usize;
        if n_cities != num_cities as usize {
            return Err(SnapshotError::Corrupt("venue arena rows != num_cities"));
        }
        let vnz = buf.get_u32_le();
        need64(&buf, (n_cities as u64 + 1) * 4 + vnz as u64 * 12 + n_cities as u64 * 8)?;
        let offsets = get_offsets(&mut buf, n_cities, vnz)?;
        let venue_ids: Vec<u32> = (0..vnz).map(|_| buf.get_u32_le()).collect();
        if venue_ids.iter().any(|&v| v >= num_venues) {
            return Err(SnapshotError::Corrupt("venue id out of range"));
        }
        let counts: Vec<f64> = (0..vnz).map(|_| buf.get_f64_le()).collect();
        let city_totals: Vec<f64> = (0..n_cities).map(|_| buf.get_f64_le()).collect();
        for l in 0..n_cities {
            let row = &venue_ids[offsets[l] as usize..offsets[l + 1] as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("venue count row not sorted"));
            }
        }
        let venues = VenueArena { offsets, venue_ids, counts, city_totals };

        let mut snap = Self {
            variant,
            count_noisy_assignments,
            tau,
            delta,
            rho_f,
            rho_t,
            power_law,
            follow_prob,
            venue_probs,
            num_cities,
            num_venues,
            gaz_fingerprint,
            users,
            venues,
        };

        // --- Delta record section (v3+) -----------------------------------
        // Replay every committed increment onto the base, validating each
        // one exactly like base state. A v2 artifact simply has no
        // section; v4 records are CRC-framed, v3 records are not.
        if version >= 3 {
            need64(&buf, 4)?;
            let n_deltas = buf.get_u32_le();
            for _ in 0..n_deltas {
                let record = SnapshotDelta::decode_record(&mut buf, version >= 4)?;
                snap.apply_delta(&record)?;
            }
        }
        // A well-formed artifact ends exactly here; leftover bytes mean a
        // stale in-place overwrite or a mangled concatenation, and
        // silently ignoring them would mask the corruption.
        if buf.has_remaining() {
            return Err(SnapshotError::Corrupt("trailing bytes after snapshot"));
        }
        Ok(snap)
    }
}

/// Appends the v4 trailer — `u32` record count + CRC-framed records —
/// the one framing shared by [`PosteriorSnapshot::encode_with_deltas`]
/// and the updater's incremental
/// [`crate::online::OnlineUpdater::encode_artifact`].
pub(crate) fn append_delta_section(
    buf: &mut BytesMut,
    deltas: &[SnapshotDelta],
) -> Result<(), SnapshotError> {
    let count = u32::try_from(deltas.len())
        .map_err(|_| SnapshotError::TooLarge("delta record count exceeds u32::MAX"))?;
    buf.put_u32_le(count);
    for d in deltas {
        d.encode_record(buf)?;
    }
    Ok(())
}

/// Fails with [`SnapshotError::Truncated`] when `buf` holds fewer than `n`
/// bytes; declared sizes are computed in `u64` and converted checked, so a
/// hostile header cannot wrap the byte count on 32-bit targets.
fn need64(buf: &Bytes, n: u64) -> Result<(), SnapshotError> {
    let n = usize::try_from(n).map_err(|_| SnapshotError::Overflow("declared payload size"))?;
    if buf.remaining() < n {
        Err(SnapshotError::Truncated)
    } else {
        Ok(())
    }
}

/// Reads a length-validated offset table: starts at 0, is non-decreasing,
/// and ends exactly at `nnz`.
fn get_offsets(buf: &mut Bytes, rows: usize, nnz: u32) -> Result<Vec<u32>, SnapshotError> {
    need64(buf, (rows as u64 + 1) * 4)?;
    let offsets: Vec<u32> = (0..=rows).map(|_| buf.get_u32_le()).collect();
    if offsets[0] != 0 || offsets[rows] != nnz {
        return Err(SnapshotError::Corrupt("offset table does not span its slab"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt("offset table not monotone"));
    }
    Ok(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidacy::Candidacy;
    use crate::config::MlpConfig;
    use crate::random_models::RandomModels;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    fn trained_snapshot(users: usize, seed: u64) -> PosteriorSnapshot {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
                .generate();
        let config = MlpConfig { seed, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for _ in 0..6 {
            sampler.sweep();
            sampler.state.accumulate();
        }
        PosteriorSnapshot::freeze(&sampler)
    }

    #[test]
    fn freeze_captures_the_trained_state() {
        let snap = trained_snapshot(120, 41);
        assert_eq!(snap.num_users(), 120);
        assert_eq!(snap.num_cities as usize, Gazetteer::us_cities().num_cities());
        for u in 0..snap.num_users() {
            let view = snap.users.user(UserId(u as u32));
            assert_eq!(view.candidates.len(), view.gammas.len());
            assert_eq!(view.candidates.len(), view.mean_counts.len());
            assert!((view.mean_total - view.mean_counts.iter().sum::<f64>()).abs() < 1e-9);
            assert!(view.candidates.contains(&view.home));
        }
        // φ totals match their rows.
        for l in 0..snap.venues.num_cities() {
            let city = CityId(l as u32);
            let sum: f64 = snap.venues.row(city).map(|(_, c)| c).sum();
            assert_eq!(sum, snap.venues.city_total(city));
        }
        // Venue noise sums to one (it is T_R, a distribution).
        let total: f64 = snap.venue_probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let snap = trained_snapshot(100, 43);
        let decoded = PosteriorSnapshot::decode(snap.try_encode().unwrap()).unwrap();
        assert_eq!(snap, decoded);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let snap = trained_snapshot(20, 47);
        let mut raw = snap.try_encode().unwrap().to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::BadMagic(_)
        ));
        let mut raw = snap.try_encode().unwrap().to_vec();
        raw[4] = 0xFE;
        assert!(matches!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::UnsupportedVersion(_)
        ));
    }

    /// A v2 artifact — the pre-refresh format, byte-identical to a v4
    /// base minus the trailing delta record section — must still thaw.
    /// Synthesised from a v4 encode by rewriting the version and dropping
    /// the empty record count, which is exactly what a v2 writer
    /// produced.
    #[test]
    fn v2_snapshot_still_decodes() {
        let snap = trained_snapshot(40, 48);
        let v4 = snap.try_encode().unwrap();
        let mut v2 = v4.to_vec();
        v2[4..6].copy_from_slice(&2u16.to_le_bytes());
        v2.truncate(v2.len() - 4);
        let decoded = PosteriorSnapshot::decode(Bytes::from(v2)).unwrap();
        assert_eq!(snap, decoded, "v2 payload must thaw identically");
    }

    /// A v3 artifact — un-checksummed delta records — must still thaw,
    /// records included. Synthesised from the v4 base payload with the
    /// version rewritten and the record section re-framed the way a v3
    /// writer laid it out: `u32` count, then per record a `u64` length
    /// prefix and the bare payload (no CRC).
    #[test]
    fn v3_snapshot_with_records_still_decodes() {
        let base = trained_snapshot(25, 54);
        let mut delta = SnapshotDelta::new(base.num_users() as u32);
        delta.push_user(UserPosterior {
            candidates: vec![CityId(2), CityId(7)],
            gammas: vec![0.3, 0.1],
            mean_counts: vec![2.0, 1.0],
            mean_total: 3.0,
            gamma_total: 0.4,
            home: CityId(7),
        });
        delta.add_venue_weights(&[(CityId(2), VenueId(1), 1.0)]);

        let mut v3 = base.encode_payload().unwrap();
        let payload = delta.encode_record_payload().unwrap();
        v3.put_u32_le(1);
        v3.put_u64_le(payload.len() as u64);
        v3.extend_from_slice(payload.as_slice());
        let mut raw = v3.freeze().to_vec();
        raw[4..6].copy_from_slice(&3u16.to_le_bytes());

        let thawed = PosteriorSnapshot::decode(Bytes::from(raw.clone())).unwrap();
        let mut applied = base.clone();
        applied.apply_delta(&delta).unwrap();
        assert_eq!(thawed, applied, "v3 records must replay identically");

        // The v3 path still catches a record that lies about its length:
        // inflate the prefix and pad so it under-consumes.
        let prefix_at = raw.len() - payload.len() - 8;
        raw[prefix_at..prefix_at + 8].copy_from_slice(&(payload.len() as u64 + 8).to_le_bytes());
        raw.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::Corrupt("delta record longer than its payload")
        );
    }

    /// Future versions stay rejected with the typed error.
    #[test]
    fn v5_snapshot_rejected() {
        let snap = trained_snapshot(15, 49);
        let mut raw = snap.try_encode().unwrap().to_vec();
        raw[4..6].copy_from_slice(&5u16.to_le_bytes());
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::UnsupportedVersion(5)
        );
    }

    /// v3 artifacts with delta records thaw to the refreshed posterior,
    /// and structurally invalid records fail with typed errors — home
    /// outside candidates, negative venue weights, and record
    /// length-prefix mismatches all caught before the state mutates.
    #[test]
    fn delta_records_round_trip_and_validate() {
        let base = trained_snapshot(30, 50);
        let mut delta = SnapshotDelta::new(base.num_users() as u32);
        delta.push_user(UserPosterior {
            candidates: vec![CityId(1), CityId(5)],
            gammas: vec![0.2, 0.2],
            mean_counts: vec![3.0, 1.0],
            mean_total: 4.0,
            gamma_total: 0.4,
            home: CityId(1),
        });
        delta.add_venue_weights(&[(CityId(1), VenueId(0), 1.5), (CityId(5), VenueId(2), 0.5)]);

        let artifact = base.encode_with_deltas(std::slice::from_ref(&delta)).unwrap();
        let thawed = PosteriorSnapshot::decode(artifact).unwrap();
        assert_eq!(thawed.num_users(), base.num_users() + 1);
        let added = thawed.users.user(UserId(base.num_users() as u32));
        assert_eq!(added.home, CityId(1));
        assert_eq!(added.mean_counts, &[3.0, 1.0]);
        assert_eq!(
            thawed.venue_count(CityId(1), VenueId(0)),
            base.venue_count(CityId(1), VenueId(0)) + 1.5
        );
        assert_eq!(thawed.venues.city_total(CityId(5)), base.venues.city_total(CityId(5)) + 0.5);

        // Same delta applied in memory matches the decoded artifact.
        let mut applied = base.clone();
        applied.apply_delta(&delta).unwrap();
        assert_eq!(applied, thawed);

        // Home outside candidates: typed, pre-mutation.
        let mut bad = SnapshotDelta::new(base.num_users() as u32);
        bad.push_user(UserPosterior {
            candidates: vec![CityId(2)],
            gammas: vec![0.2],
            mean_counts: vec![1.0],
            mean_total: 1.0,
            gamma_total: 0.2,
            home: CityId(3),
        });
        let mut target = base.clone();
        assert_eq!(
            target.apply_delta(&bad).unwrap_err(),
            SnapshotError::Corrupt("delta home city is not a candidate")
        );
        assert_eq!(target, base, "failed apply must not mutate");

        // Negative venue weight: rejected wherever it arrives from.
        let mut negative = SnapshotDelta::new(base.num_users() as u32);
        negative.add_venue_weights(&[(CityId(0), VenueId(0), -1.0)]);
        assert_eq!(
            target.apply_delta(&negative).unwrap_err(),
            SnapshotError::Corrupt("delta venue weight not finite-nonnegative")
        );
        let encoded = base.encode_with_deltas(std::slice::from_ref(&negative)).unwrap();
        assert_eq!(
            PosteriorSnapshot::decode(encoded).unwrap_err(),
            SnapshotError::Corrupt("delta venue weight not finite-nonnegative")
        );

        // A record that lies about its length is rejected: the stored CRC
        // covers the true payload, so the inflated slice fails the
        // checksum before a single slab is parsed.
        let mut lying = base.encode_with_deltas(std::slice::from_ref(&delta)).unwrap().to_vec();
        let prefix_at = lying.len() - (delta.record_len() as usize) - 4 - 8;
        lying[prefix_at..prefix_at + 8].copy_from_slice(&(delta.record_len() + 8).to_le_bytes());
        // Extend so the inflated length is available, making the record
        // under-consume instead of truncate.
        lying.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(lying)).unwrap_err(),
            SnapshotError::Corrupt("delta record checksum mismatch")
        );

        // Any bit flip inside the record payload trips the CRC too.
        let mut flipped = base.encode_with_deltas(std::slice::from_ref(&delta)).unwrap().to_vec();
        let payload_at = flipped.len() - (delta.record_len() as usize);
        flipped[payload_at + 5] ^= 0x10;
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(flipped)).unwrap_err(),
            SnapshotError::Corrupt("delta record checksum mismatch")
        );
    }

    /// Bytes past the end of a well-formed artifact mean a stale
    /// in-place overwrite or mangled concatenation — rejected, not
    /// silently ignored, on both the v4 and v2 read paths.
    #[test]
    fn trailing_bytes_are_rejected() {
        let snap = trained_snapshot(10, 52);
        let mut v4 = snap.try_encode().unwrap().to_vec();
        v4.push(0);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(v4)).unwrap_err(),
            SnapshotError::Corrupt("trailing bytes after snapshot")
        );
        let mut v2 = snap.try_encode().unwrap().to_vec();
        v2[4..6].copy_from_slice(&2u16.to_le_bytes());
        v2.truncate(v2.len() - 4);
        v2.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(v2)).unwrap_err(),
            SnapshotError::Corrupt("trailing bytes after snapshot")
        );
    }

    /// Delta sequence gaps are rejected at merge and apply time.
    #[test]
    fn delta_sequencing_is_enforced() {
        let base = trained_snapshot(20, 51);
        let wrong_base = SnapshotDelta::new(base.num_users() as u32 + 7);
        let mut with_user = wrong_base.clone();
        with_user.push_user(UserPosterior {
            candidates: vec![CityId(0)],
            gammas: vec![0.2],
            mean_counts: vec![0.0],
            mean_total: 0.0,
            gamma_total: 0.2,
            home: CityId(0),
        });
        let mut target = base.clone();
        assert_eq!(
            target.apply_delta(&with_user).unwrap_err(),
            SnapshotError::Corrupt("delta base user count mismatch")
        );
        let mut first = SnapshotDelta::new(base.num_users() as u32);
        assert_eq!(
            first.merge(&with_user).unwrap_err(),
            SnapshotError::Corrupt("delta sequence gap: base user count mismatch")
        );
    }

    /// A stored v1 artifact prefix (magic "MLPS" + version 1, as every v1
    /// snapshot began) must fail with the typed version error — not panic,
    /// and never decode as garbage v2 slabs.
    #[test]
    fn v1_snapshot_prefix_fails_with_unsupported_version() {
        // First 6 bytes of any v1 artifact: 4D4C5053 LE + 0001 LE.
        let mut v1 = vec![0x53, 0x50, 0x4C, 0x4D, 0x01, 0x00];
        // Arbitrary v1 payload tail — must never be interpreted.
        v1.extend_from_slice(&[0x02, 0x01, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF]);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(v1)).unwrap_err(),
            SnapshotError::UnsupportedVersion(1)
        );
    }

    #[test]
    fn truncation_fails_loudly_at_every_cut() {
        let snap = trained_snapshot(15, 53);
        let bytes = snap.try_encode().unwrap();
        for cut in [0usize, 3, 8, 40, bytes.len() / 3, bytes.len() - 1] {
            let err = PosteriorSnapshot::decode(bytes.slice(..cut)).unwrap_err();
            assert_eq!(err, SnapshotError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn frozen_noise_matches_training_bit_for_bit() {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: 80, seed: 59, ..Default::default() })
                .generate();
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let probs: Vec<f64> =
            (0..gaz.num_venues()).map(|v| random.venue_prob(VenueId(v as u32))).collect();
        let frozen = RandomModels::from_frozen(random.follow_prob(), probs);
        assert_eq!(frozen.follow_prob().to_bits(), random.follow_prob().to_bits());
        for v in 0..gaz.num_venues() as u32 {
            assert_eq!(
                frozen.venue_prob(VenueId(v)).to_bits(),
                random.venue_prob(VenueId(v)).to_bits(),
                "venue {v}"
            );
        }
    }
}
