//! Frozen posterior artifacts for warm-start serving.
//!
//! Training is expensive (a full-corpus Gibbs run); prediction for a user
//! the model never saw should not be. A [`PosteriorSnapshot`] freezes
//! everything a fold-in chain ([`crate::infer`]) needs from a trained
//! sampler into one immutable, serialisable artifact:
//!
//! * the collapsed posterior — per-user mean counts `ϕ̄` over each user's
//!   candidate list, and the venue counts `φ_{l,v}` with city totals;
//! * the hyper-parameters the conditionals evaluate (`τ`, `δ`, `ρ_f`,
//!   `ρ_t`, the calibrated power law, the `count_noisy` convention and
//!   observation variant);
//! * the learned noise models `F_R` and `T_R` as exact probabilities.
//!
//! Since format **v2** the posterior lives in CSR arenas ([`UserArena`],
//! [`VenueArena`]): one offset table per arena and flat value slabs,
//! mirroring the training-time layout in [`crate::state`]. The binary
//! encoding is therefore a handful of length-prefixed slabs — no per-user
//! records, no intermediate maps on decode — following the
//! `mlp_social::codec` conventions: little-endian, magic-tagged and
//! versioned so stale or corrupted artifacts fail loudly with a typed
//! [`SnapshotError`] instead of deserialising garbage. Serving fleets can
//! therefore build the snapshot once offline, ship the bytes to replicas,
//! and answer fold-in queries against a shared read-only copy — no locks,
//! no count merging, because frozen counts never mutate.

use crate::config::Variant;
use crate::sampler::GibbsSampler;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_geo::PowerLaw;
use mlp_social::{Csr, Slab, UserId};
use std::any::Any;
use std::sync::Arc;

const MAGIC: u32 = 0x4D4C_5053; // "MLPS"
/// Current write version: v5 = a 64-byte-aligned section table over the
/// CSR slabs (fixed-width little-endian, per-section CRC32s) so each slab
/// can be reinterpreted in place from a mapped file, followed by a
/// [`SnapshotDelta`] record section with the same CRC-framed records v4
/// introduced (`u64` length + `u32` IEEE CRC of the payload). v4 was the
/// v2 CSR-arena payload plus that record section; v3 wrote the section
/// without per-record checksums.
const VERSION: u16 = 5;
/// Newest *legacy* (pre-section-table) version; v2..=v4 decode through
/// the copying path, byte-identically to the builds that wrote them.
const LEGACY_MAX_VERSION: u16 = 4;
/// Oldest version this build still reads. v2 artifacts (pre-refresh, no
/// delta section) and v3 artifacts (un-checksummed records) thaw
/// unchanged; v1 artifacts fail with the typed
/// [`SnapshotError::UnsupportedVersion`].
const MIN_READ_VERSION: u16 = 2;

/// IEEE CRC32 (the zlib/PNG polynomial), slicing-by-8, no external
/// crates. Frames every v4+ delta record and every WAL record, and
/// checksums every v5 section — a mapped open verifies whole slabs with
/// it, so the wide variant matters: it runs several times faster than the
/// byte-at-a-time loop while producing identical digests.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const TABLES: [[u32; 256]; 8] = {
        let mut t = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[0][i] = c;
            i += 1;
        }
        let mut k = 1;
        while k < 8 {
            let mut i = 0;
            while i < 256 {
                t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xFF) as usize];
                i += 1;
            }
            k += 1;
        }
        t
    };
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        c ^= u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = TABLES[7][(c & 0xFF) as usize]
            ^ TABLES[6][((c >> 8) & 0xFF) as usize]
            ^ TABLES[5][((c >> 16) & 0xFF) as usize]
            ^ TABLES[4][(c >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Stable (FNV-1a, rustc-independent) content hash of a gazetteer:
/// every city's name, state, coordinates, and population, and every
/// venue's resolution list. Snapshots carry this so that thawing against
/// a *different* geography — even one with the same city and venue
/// counts — fails loudly instead of silently serving predictions whose
/// city ids mean different places.
pub fn gazetteer_fingerprint(gaz: &Gazetteer) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat_bytes = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat_bytes(&(gaz.num_cities() as u64).to_le_bytes());
    eat_bytes(&(gaz.num_venues() as u64).to_le_bytes());
    for city in gaz.cities() {
        eat_bytes(city.name.as_bytes());
        eat_bytes(city.state.as_bytes());
        eat_bytes(&city.center.lat().to_bits().to_le_bytes());
        eat_bytes(&city.center.lon().to_bits().to_le_bytes());
        eat_bytes(&city.population.to_le_bytes());
    }
    for venue in gaz.venues() {
        eat_bytes(venue.name.as_bytes());
        eat_bytes(&(venue.cities.len() as u64).to_le_bytes());
        for &c in &venue.cities {
            eat_bytes(&c.0.to_le_bytes());
        }
    }
    h
}

/// Errors raised when decoding a posterior snapshot.
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Wrong magic number — not a posterior snapshot.
    BadMagic(u32),
    /// Snapshot from an incompatible format version (e.g. a v1 artifact
    /// from before the CSR arena layout).
    UnsupportedVersion(u16),
    /// Buffer ended before the declared payload.
    Truncated,
    /// An enum tag byte held an unknown value.
    BadTag(u8),
    /// Structurally invalid payload (mismatched lengths, bad ids).
    Corrupt(&'static str),
    /// A declared size cannot be represented on this target (e.g. a u64
    /// length prefix exceeding `usize::MAX` on 32-bit) or overflows the
    /// byte-count arithmetic — rejected before any allocation.
    Overflow(&'static str),
    /// The in-memory state exceeds the format's `u32` slab limits and
    /// cannot be encoded (or a delta commit would push it past them).
    TooLarge(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:#x}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads v{VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadTag(t) => write!(f, "unknown snapshot tag byte {t}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapshotError::Overflow(what) => {
                write!(f, "snapshot size overflow: {what} not representable on this target")
            }
            SnapshotError::TooLarge(what) => {
                write!(f, "snapshot exceeds format limits: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One training user's posterior as an owned record — the *builder* input
/// for [`UserArena::from_users`] (tests and the freeze path construct
/// these; the stored representation is the arena).
#[derive(Debug, Clone, PartialEq)]
pub struct UserPosterior {
    /// Candidate cities, sorted ascending (the Gibbs domain).
    pub candidates: Vec<CityId>,
    /// Priors `γ` aligned with `candidates`.
    pub gammas: Vec<f64>,
    /// Mean post-burn-in counts `ϕ̄` aligned with `candidates`.
    pub mean_counts: Vec<f64>,
    /// `Σ_c ϕ̄` (kept explicit so [`crate::kernel::CountView`] lookups
    /// stay O(1)).
    pub mean_total: f64,
    /// `Σ_c γ`.
    pub gamma_total: f64,
    /// MAP home — the argmax of `θ̂` (Eq. 10).
    pub home: CityId,
}

/// A borrowed view of one user's row across the arena slabs.
#[derive(Debug, Clone, Copy)]
pub struct UserView<'a> {
    /// Candidate cities, sorted ascending.
    pub candidates: &'a [CityId],
    /// Priors `γ` aligned with `candidates`.
    pub gammas: &'a [f64],
    /// Mean counts `ϕ̄` aligned with `candidates`.
    pub mean_counts: &'a [f64],
    /// `Σ_c ϕ̄`.
    pub mean_total: f64,
    /// `Σ_c γ`.
    pub gamma_total: f64,
    /// MAP home.
    pub home: CityId,
}

/// The frozen per-user posterior: a CSR offset table over flat
/// `candidates`/`gammas`/`mean_counts` slabs plus per-user scalar columns.
///
/// Every column is a [`Slab`] (the candidate rows a [`Csr`]), so the whole
/// arena either owns its memory (trained / copy-decoded snapshots) or
/// borrows it zero-copy from a mapped v5 artifact. Row logic lives in the
/// `Csr` offset table once; the parallel `gammas`/`mean_counts` columns
/// reuse its [`Csr::row_range`]. Deltas append whole user rows, which land
/// in the slabs' owned tails when the base is mapped — the overlay that
/// lets a mapped snapshot absorb WAL replay without materializing.
#[derive(Debug, Clone, PartialEq)]
pub struct UserArena {
    /// Candidate rows: the offset table (`num_users + 1` entries) shared by
    /// all three row-shaped columns, plus the candidate slab itself.
    candidates: Csr<CityId>,
    gammas: Slab<f64>,
    mean_counts: Slab<f64>,
    mean_totals: Slab<f64>,
    gamma_totals: Slab<f64>,
    homes: Slab<CityId>,
}

impl UserArena {
    /// An arena with no users.
    pub fn empty() -> Self {
        Self {
            candidates: Csr::empty(),
            gammas: Slab::new(),
            mean_counts: Slab::new(),
            mean_totals: Slab::new(),
            gamma_totals: Slab::new(),
            homes: Slab::new(),
        }
    }

    /// Packs owned per-user records into the columnar arena.
    pub fn from_users(users: impl IntoIterator<Item = UserPosterior>) -> Self {
        let mut arena = Self::empty();
        for u in users {
            arena.push(u);
        }
        arena
    }

    /// Builds an arena from owned, pre-validated columns (the copying
    /// decode path and delta records).
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        candidates: Vec<CityId>,
        gammas: Vec<f64>,
        mean_counts: Vec<f64>,
        mean_totals: Vec<f64>,
        gamma_totals: Vec<f64>,
        homes: Vec<CityId>,
    ) -> Self {
        Self {
            candidates: Csr::from_parts(offsets, candidates),
            gammas: Slab::from_vec(gammas),
            mean_counts: Slab::from_vec(mean_counts),
            mean_totals: Slab::from_vec(mean_totals),
            gamma_totals: Slab::from_vec(gamma_totals),
            homes: Slab::from_vec(homes),
        }
    }

    /// Builds an arena on pre-validated slabs — owned or borrowed from a
    /// mapped artifact (the zero-copy open path).
    pub(crate) fn from_slabs(
        offsets: Slab<u32>,
        candidates: Slab<CityId>,
        gammas: Slab<f64>,
        mean_counts: Slab<f64>,
        mean_totals: Slab<f64>,
        gamma_totals: Slab<f64>,
        homes: Slab<CityId>,
    ) -> Self {
        Self {
            candidates: Csr::from_slabs(offsets, candidates),
            gammas,
            mean_counts,
            mean_totals,
            gamma_totals,
            homes,
        }
    }

    /// Whether the arena borrows a mapped artifact instead of owning its
    /// slabs.
    #[inline]
    pub fn is_zero_copy(&self) -> bool {
        self.candidates.is_zero_copy()
    }

    /// Appends one user's row; their id is the arena's previous
    /// [`Self::num_users`].
    pub fn push(&mut self, u: UserPosterior) {
        self.candidates.push_row(&u.candidates);
        self.gammas.extend_from_slice(&u.gammas);
        self.mean_counts.extend_from_slice(&u.mean_counts);
        self.mean_totals.push(u.mean_total);
        self.gamma_totals.push(u.gamma_total);
        self.homes.push(u.home);
    }

    /// Appends every row of `other` (an index-wise slab concatenation —
    /// the commit step of an online delta). Fails without mutating when
    /// the combined slabs would overflow the format's `u32` offsets. When
    /// `self` is mapped, the rows land in the slabs' owned tails and the
    /// mapped base stays untouched.
    pub fn extend_from(&mut self, other: &UserArena) -> Result<(), SnapshotError> {
        if self.num_entries() as u64 + other.num_entries() as u64 > u32::MAX as u64 {
            return Err(SnapshotError::TooLarge("user candidate slab exceeds u32::MAX entries"));
        }
        if self.num_users() as u64 + other.num_users() as u64 > u32::MAX as u64 {
            return Err(SnapshotError::TooLarge("user count exceeds u32::MAX"));
        }
        self.candidates.append(&other.candidates);
        for seg in [other.gammas.segments().0, other.gammas.segments().1] {
            self.gammas.extend_from_slice(seg);
        }
        for seg in [other.mean_counts.segments().0, other.mean_counts.segments().1] {
            self.mean_counts.extend_from_slice(seg);
        }
        for seg in [other.mean_totals.segments().0, other.mean_totals.segments().1] {
            self.mean_totals.extend_from_slice(seg);
        }
        for seg in [other.gamma_totals.segments().0, other.gamma_totals.segments().1] {
            self.gamma_totals.extend_from_slice(seg);
        }
        for seg in [other.homes.segments().0, other.homes.segments().1] {
            self.homes.extend_from_slice(seg);
        }
        Ok(())
    }

    /// Number of training users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.homes.len()
    }

    /// Total number of candidate entries across all rows.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.candidates.num_values()
    }

    /// User `u`'s row across all slabs.
    #[inline]
    pub fn user(&self, u: UserId) -> UserView<'_> {
        let i = u.index();
        let range = self.candidates.row_range(i);
        UserView {
            candidates: self.candidates.row(i),
            gammas: self.gammas.slice(range.start, range.end),
            mean_counts: self.mean_counts.slice(range.start, range.end),
            mean_total: self.mean_totals.get(i),
            gamma_total: self.gamma_totals.get(i),
            home: self.homes.get(i),
        }
    }

    // Single-column accessors for hot lookups that need one slab — the
    // fold-in kernel calls these per conditional evaluation, so they must
    // not assemble a whole `UserView`.

    /// User `u`'s candidate row.
    #[inline]
    pub fn candidates_of(&self, u: UserId) -> &[CityId] {
        self.candidates.row(u.index())
    }

    /// User `u`'s γ row.
    #[inline]
    pub fn gammas_of(&self, u: UserId) -> &[f64] {
        let range = self.candidates.row_range(u.index());
        self.gammas.slice(range.start, range.end)
    }

    /// User `u`'s ϕ̄ row.
    #[inline]
    pub fn mean_counts_of(&self, u: UserId) -> &[f64] {
        let range = self.candidates.row_range(u.index());
        self.mean_counts.slice(range.start, range.end)
    }

    /// `Σ_c ϕ̄` for user `u`.
    #[inline]
    pub fn mean_total(&self, u: UserId) -> f64 {
        self.mean_totals.get(u.index())
    }

    /// `Σ_c γ` for user `u`.
    #[inline]
    pub fn gamma_total(&self, u: UserId) -> f64 {
        self.gamma_totals.get(u.index())
    }

    /// MAP home of user `u`.
    #[inline]
    pub fn home(&self, u: UserId) -> CityId {
        self.homes.get(u.index())
    }

    // Column iterators for the encoders (segment-aware, so a mapped arena
    // with appended tails serialises correctly).

    pub(crate) fn offsets_iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.candidates.offsets_iter()
    }

    pub(crate) fn candidate_ids_iter(&self) -> impl Iterator<Item = u32> + '_ {
        let (h, t) = self.candidates.values_segments();
        h.iter().chain(t).map(|c| c.0)
    }

    pub(crate) fn gammas_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.gammas.iter().copied()
    }

    pub(crate) fn mean_counts_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.mean_counts.iter().copied()
    }

    pub(crate) fn mean_totals_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.mean_totals.iter().copied()
    }

    pub(crate) fn gamma_totals_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.gamma_totals.iter().copied()
    }

    pub(crate) fn home_ids_iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.homes.iter().map(|c| c.0)
    }
}

/// The frozen `φ` counts: CSR offsets over sorted `venue_ids` with a
/// parallel `counts` slab, plus per-city totals.
///
/// Slab-backed like [`UserArena`], so a mapped v5 artifact serves `φ`
/// lookups straight from the file. Venue deltas rebuild the slabs
/// (`apply_sorted_weights`), which copies a mapped arena to owned
/// — acceptable because the venue arena is gazetteer-bounded, orders of
/// magnitude smaller than the user arena.
#[derive(Debug, Clone, PartialEq)]
pub struct VenueArena {
    /// `num_cities + 1` offsets over the sorted venue-id rows.
    venue_ids: Csr<u32>,
    counts: Slab<f64>,
    city_totals: Slab<f64>,
}

impl VenueArena {
    /// Packs per-city `(venue, count)` rows (ascending venue id) into the
    /// arena; city totals are the row sums — exact, because training
    /// counts are integers.
    pub fn from_rows<R>(rows: impl Iterator<Item = R>) -> Self
    where
        R: IntoIterator<Item = (u32, f64)>,
    {
        let mut offsets = vec![0u32];
        let mut venue_ids = Vec::new();
        let mut counts = Vec::new();
        let mut city_totals = Vec::new();
        for row in rows {
            let mut total = 0.0;
            for (v, c) in row {
                venue_ids.push(v);
                counts.push(c);
                total += c;
            }
            offsets.push(venue_ids.len() as u32);
            city_totals.push(total);
        }
        Self::from_parts(offsets, venue_ids, counts, city_totals)
    }

    /// Builds the arena from owned, pre-validated columns.
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        venue_ids: Vec<u32>,
        counts: Vec<f64>,
        city_totals: Vec<f64>,
    ) -> Self {
        Self {
            venue_ids: Csr::from_parts(offsets, venue_ids),
            counts: Slab::from_vec(counts),
            city_totals: Slab::from_vec(city_totals),
        }
    }

    /// Builds the arena on pre-validated slabs (owned or mapped).
    pub(crate) fn from_slabs(
        offsets: Slab<u32>,
        venue_ids: Slab<u32>,
        counts: Slab<f64>,
        city_totals: Slab<f64>,
    ) -> Self {
        Self { venue_ids: Csr::from_slabs(offsets, venue_ids), counts, city_totals }
    }

    /// Whether the arena borrows a mapped artifact.
    #[inline]
    pub fn is_zero_copy(&self) -> bool {
        self.venue_ids.is_zero_copy()
    }

    /// Number of cities.
    #[inline]
    pub fn num_cities(&self) -> usize {
        self.city_totals.len()
    }

    /// `φ_{l,v}` lookup (zero for venues the city never hosted).
    #[inline]
    pub fn count(&self, l: CityId, v: VenueId) -> f64 {
        let i = l.index();
        let range = self.venue_ids.row_range(i);
        match self.venue_ids.row(i).binary_search(&v.0) {
            Ok(pos) => self.counts.get(range.start + pos),
            Err(_) => 0.0,
        }
    }

    /// `Σ_v φ_{l,v}`.
    #[inline]
    pub fn city_total(&self, l: CityId) -> f64 {
        self.city_totals.get(l.index())
    }

    /// City `l`'s `(venue, count)` row, ascending by venue id.
    pub fn row(&self, l: CityId) -> impl Iterator<Item = (u32, f64)> + '_ {
        let i = l.index();
        let range = self.venue_ids.row_range(i);
        self.venue_ids
            .row(i)
            .iter()
            .copied()
            .zip(self.counts.slice(range.start, range.end).iter().copied())
    }

    /// Total number of stored `(city, venue)` cells.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.venue_ids.num_values()
    }

    // Column iterators for the encoders.

    pub(crate) fn offsets_iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.venue_ids.offsets_iter()
    }

    pub(crate) fn venue_ids_iter(&self) -> impl Iterator<Item = u32> + '_ {
        let (h, t) = self.venue_ids.values_segments();
        h.iter().chain(t).copied()
    }

    pub(crate) fn counts_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.counts.iter().copied()
    }

    pub(crate) fn city_totals_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.city_totals.iter().copied()
    }

    /// Merges sorted-unique COO weight deltas `(cities[i], venues[i]) +=
    /// weights[i]` into the CSR slabs in one deterministic pass: existing
    /// cells accumulate in place of the merged row, new cells splice in at
    /// their venue-id position, and city totals absorb the per-city sums.
    /// Inputs must already be validated (strictly ascending `(city,
    /// venue)` keys in range, finite non-negative weights) — the caller is
    /// [`PosteriorSnapshot::apply_delta`], which checks them with typed
    /// errors. Cost is `O(existing + new)`, paid per commit rather than
    /// per request.
    fn apply_sorted_weights(
        &mut self,
        cities: &[u32],
        venues: &[u32],
        weights: &[f64],
    ) -> Result<(), SnapshotError> {
        if cities.is_empty() {
            return Ok(());
        }
        if self.num_entries() as u64 + venues.len() as u64 > u32::MAX as u64 {
            return Err(SnapshotError::TooLarge("venue count slab exceeds u32::MAX entries"));
        }
        let mut new_offsets = Vec::with_capacity(self.num_cities() + 1);
        let mut new_ids = Vec::with_capacity(self.num_entries() + venues.len());
        let mut new_counts = Vec::with_capacity(self.num_entries() + venues.len());
        let mut new_totals = Vec::with_capacity(self.num_cities());
        new_offsets.push(0u32);
        let mut d = 0usize; // cursor into the delta COO
        for l in 0..self.num_cities() {
            let range = self.venue_ids.row_range(l);
            let ids = self.venue_ids.row(l);
            let cnts = self.counts.slice(range.start, range.end);
            let mut i = 0usize;
            let end = ids.len();
            let mut total_add = 0.0f64;
            while d < cities.len() && cities[d] as usize == l {
                let v = venues[d];
                // Copy existing entries below the delta's venue id.
                while i < end && ids[i] < v {
                    new_ids.push(ids[i]);
                    new_counts.push(cnts[i]);
                    i += 1;
                }
                if i < end && ids[i] == v {
                    new_ids.push(v);
                    new_counts.push(cnts[i] + weights[d]);
                    i += 1;
                } else {
                    new_ids.push(v);
                    new_counts.push(weights[d]);
                }
                total_add += weights[d];
                d += 1;
            }
            while i < end {
                new_ids.push(ids[i]);
                new_counts.push(cnts[i]);
                i += 1;
            }
            new_offsets.push(new_ids.len() as u32);
            new_totals.push(self.city_totals.get(l) + total_add);
        }
        // The rebuild is always owned: venue deltas are rare relative to
        // user appends, and the arena is gazetteer-bounded, so copying a
        // mapped base here costs little and keeps the merge logic single.
        *self = Self::from_parts(new_offsets, new_ids, new_counts, new_totals);
        Ok(())
    }
}

/// A mergeable increment to a [`PosteriorSnapshot`]: the unit of online
/// posterior refresh.
///
/// A delta mirrors the snapshot's arenas as flat slabs — appended user
/// rows live in their own [`UserArena`], and `φ` increments are a
/// sorted-unique COO (`(city, venue) → weight`) that
/// [`PosteriorSnapshot::apply_delta`] merges index-wise into the venue
/// CSR. Deltas compose: [`Self::merge`] concatenates consecutive deltas
/// into one (compaction), and the v3 binary format ships them as
/// length-prefixed records after the base payload, so a serving replica
/// can refresh by appending records instead of re-downloading the model.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// User count of the snapshot this delta appends after — the first
    /// appended user gets id `base_users`.
    base_users: u32,
    /// Appended users as a columnar arena.
    users: UserArena,
    /// `φ` increments: city ids, parallel venue ids, parallel weights,
    /// strictly ascending by `(city, venue)`.
    venue_cities: Vec<u32>,
    venue_ids: Vec<u32>,
    venue_weights: Vec<f64>,
}

impl SnapshotDelta {
    /// An empty delta applying after `base_users` trained users.
    pub fn new(base_users: u32) -> Self {
        Self {
            base_users,
            users: UserArena::empty(),
            venue_cities: Vec::new(),
            venue_ids: Vec::new(),
            venue_weights: Vec::new(),
        }
    }

    /// The user count this delta expects the snapshot to have.
    pub fn base_users(&self) -> u32 {
        self.base_users
    }

    /// Number of users this delta appends.
    pub fn num_new_users(&self) -> usize {
        self.users.num_users()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.users.num_users() == 0 && self.venue_cities.is_empty()
    }

    /// Appends one user's posterior row (id `base_users + previous
    /// [`Self::num_new_users`]` once committed).
    pub fn push_user(&mut self, user: UserPosterior) {
        self.users.push(user);
    }

    /// Folds `(city, venue, weight)` increments into the delta's COO.
    /// `deltas` must be sorted by `(city, venue)` with unique keys (the
    /// form [`crate::infer::FoldInRecord`] produces); weights accumulate
    /// for keys already present.
    pub fn add_venue_weights(&mut self, deltas: &[(CityId, VenueId, f64)]) {
        if deltas.is_empty() {
            return;
        }
        let old_cities = std::mem::take(&mut self.venue_cities);
        let old_ids = std::mem::take(&mut self.venue_ids);
        let old_weights = std::mem::take(&mut self.venue_weights);
        self.venue_cities.reserve(old_cities.len() + deltas.len());
        self.venue_ids.reserve(old_ids.len() + deltas.len());
        self.venue_weights.reserve(old_weights.len() + deltas.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_cities.len() || j < deltas.len() {
            let take_old = match (old_cities.get(i), deltas.get(j)) {
                (Some(&lc), Some(&(dc, dv, _))) => (lc, old_ids[i]) <= (dc.0, dv.0),
                (Some(_), None) => true,
                _ => false,
            };
            if take_old {
                let key = (old_cities[i], old_ids[i]);
                let mut w = old_weights[i];
                i += 1;
                if j < deltas.len() && (deltas[j].0 .0, deltas[j].1 .0) == key {
                    w += deltas[j].2;
                    j += 1;
                }
                self.venue_cities.push(key.0);
                self.venue_ids.push(key.1);
                self.venue_weights.push(w);
            } else {
                let (dc, dv, dw) = deltas[j];
                j += 1;
                self.venue_cities.push(dc.0);
                self.venue_ids.push(dv.0);
                self.venue_weights.push(dw);
            }
        }
    }

    /// Compacts `next` into `self`: the combined delta applies both in
    /// order. `next` must apply exactly where `self` leaves off
    /// (`next.base_users == self.base_users + self.num_new_users()`), or
    /// the merge is rejected with a typed error and `self` is unchanged.
    pub fn merge(&mut self, next: &SnapshotDelta) -> Result<(), SnapshotError> {
        if next.base_users as u64 != self.base_users as u64 + self.users.num_users() as u64 {
            return Err(SnapshotError::Corrupt("delta sequence gap: base user count mismatch"));
        }
        self.users.extend_from(&next.users)?;
        let coo: Vec<(CityId, VenueId, f64)> = next
            .venue_cities
            .iter()
            .zip(&next.venue_ids)
            .zip(&next.venue_weights)
            .map(|((&l, &v), &w)| (CityId(l), VenueId(v), w))
            .collect();
        self.add_venue_weights(&coo);
        Ok(())
    }

    /// Serialised record size in bytes (excluding the length prefix).
    fn record_len(&self) -> u64 {
        let n = self.users.num_users() as u64;
        let nnz = self.users.num_entries() as u64;
        let vnz = self.venue_cities.len() as u64;
        4 + 4 + 4 + (n + 1) * 4 + nnz * 20 + n * 20 + 4 + vnz * 16
    }

    /// Appends the v4 framed record: `u64` payload byte length, `u32`
    /// IEEE CRC32 of the payload, then the payload itself.
    pub(crate) fn encode_record(&self, buf: &mut BytesMut) -> Result<(), SnapshotError> {
        let payload = self.encode_record_payload()?;
        buf.put_u64_le(payload.len() as u64);
        buf.put_u32_le(crc32(payload.as_slice()));
        buf.extend_from_slice(payload.as_slice());
        Ok(())
    }

    /// The bare record payload (no framing) — shared by the artifact's
    /// delta section and the sidecar WAL, which adds its own framing.
    pub(crate) fn encode_record_payload(&self) -> Result<Bytes, SnapshotError> {
        let n = u32::try_from(self.users.num_users())
            .map_err(|_| SnapshotError::TooLarge("delta user count exceeds u32::MAX"))?;
        let nnz = u32::try_from(self.users.num_entries())
            .map_err(|_| SnapshotError::TooLarge("delta candidate slab exceeds u32::MAX"))?;
        let vnz = u32::try_from(self.venue_cities.len())
            .map_err(|_| SnapshotError::TooLarge("delta venue slab exceeds u32::MAX"))?;
        let mut buf = BytesMut::with_capacity(self.record_len() as usize);
        buf.put_u32_le(self.base_users);
        buf.put_u32_le(n);
        buf.put_u32_le(nnz);
        for o in self.users.offsets_iter() {
            buf.put_u32_le(o);
        }
        for c in self.users.candidate_ids_iter() {
            buf.put_u32_le(c);
        }
        for g in self.users.gammas_iter() {
            buf.put_f64_le(g);
        }
        for m in self.users.mean_counts_iter() {
            buf.put_f64_le(m);
        }
        for m in self.users.mean_totals_iter() {
            buf.put_f64_le(m);
        }
        for g in self.users.gamma_totals_iter() {
            buf.put_f64_le(g);
        }
        for h in self.users.home_ids_iter() {
            buf.put_u32_le(h);
        }
        buf.put_u32_le(vnz);
        for &l in &self.venue_cities {
            buf.put_u32_le(l);
        }
        for &v in &self.venue_ids {
            buf.put_u32_le(v);
        }
        for &w in &self.venue_weights {
            buf.put_f64_le(w);
        }
        Ok(buf.freeze())
    }

    /// Parses one framed record. The `u64` length prefix is checked
    /// against the remaining buffer *before* any slab is sized (an absurd
    /// declared length is a typed error, not an allocation), and a record
    /// that does not consume exactly its declared bytes is rejected.
    ///
    /// `checksummed` selects the framing: v4 records carry a `u32` IEEE
    /// CRC32 between the length prefix and the payload, verified before
    /// the payload is parsed; v3 records have no checksum.
    pub(crate) fn decode_record(buf: &mut Bytes, checksummed: bool) -> Result<Self, SnapshotError> {
        need64(buf, 8)?;
        let declared = buf.get_u64_le();
        let len = usize::try_from(declared)
            .map_err(|_| SnapshotError::Overflow("delta record length prefix"))?;
        let expect_crc = if checksummed {
            need64(buf, 4)?;
            Some(buf.get_u32_le())
        } else {
            None
        };
        if buf.remaining() < len {
            return Err(SnapshotError::Truncated);
        }
        let rec = buf.split_to(len);
        if let Some(crc) = expect_crc {
            if crc32(rec.as_slice()) != crc {
                return Err(SnapshotError::Corrupt("delta record checksum mismatch"));
            }
        }
        Self::decode_record_payload(rec)
    }

    /// Parses a bare record payload whose framing (length, and for v4 /
    /// the WAL a CRC) has already been read and verified by the caller.
    pub(crate) fn decode_record_payload(mut rec: Bytes) -> Result<Self, SnapshotError> {
        need64(&rec, 12)?;
        let base_users = rec.get_u32_le();
        let n = rec.get_u32_le() as usize;
        let nnz = rec.get_u32_le();
        need64(&rec, (n as u64 + 1) * 4 + nnz as u64 * 20 + n as u64 * 20)?;
        let offsets = get_offsets(&mut rec, n, nnz)?;
        let candidates: Vec<CityId> = (0..nnz).map(|_| CityId(rec.get_u32_le())).collect();
        let gammas: Vec<f64> = (0..nnz).map(|_| rec.get_f64_le()).collect();
        let mean_counts: Vec<f64> = (0..nnz).map(|_| rec.get_f64_le()).collect();
        let mean_totals: Vec<f64> = (0..n).map(|_| rec.get_f64_le()).collect();
        let gamma_totals: Vec<f64> = (0..n).map(|_| rec.get_f64_le()).collect();
        let homes: Vec<CityId> = (0..n).map(|_| CityId(rec.get_u32_le())).collect();
        need64(&rec, 4)?;
        let vnz = rec.get_u32_le();
        need64(&rec, vnz as u64 * 16)?;
        let venue_cities: Vec<u32> = (0..vnz).map(|_| rec.get_u32_le()).collect();
        let venue_ids: Vec<u32> = (0..vnz).map(|_| rec.get_u32_le()).collect();
        let venue_weights: Vec<f64> = (0..vnz).map(|_| rec.get_f64_le()).collect();
        if rec.has_remaining() {
            return Err(SnapshotError::Corrupt("delta record longer than its payload"));
        }
        Ok(Self {
            base_users,
            users: UserArena::from_parts(
                offsets,
                candidates,
                gammas,
                mean_counts,
                mean_totals,
                gamma_totals,
                homes,
            ),
            venue_cities,
            venue_ids,
            venue_weights,
        })
    }
}

/// An immutable frozen posterior, ready for fold-in inference.
#[derive(Debug, Clone, PartialEq)]
pub struct PosteriorSnapshot {
    /// Which observation types the model was trained on.
    pub variant: Variant,
    /// Whether noisy assignments contributed to `ϕ` during training.
    pub count_noisy_assignments: bool,
    /// τ — base candidate prior.
    pub tau: f64,
    /// δ — venue-multinomial prior.
    pub delta: f64,
    /// ρ_f — prior noise probability for following relationships.
    pub rho_f: f64,
    /// ρ_t — prior noise probability for tweeting relationships.
    pub rho_t: f64,
    /// The calibrated (possibly EM-refined) power law.
    pub power_law: PowerLaw,
    /// `p(f⟨i,j⟩ | F_R)`.
    pub follow_prob: f64,
    /// `p(t⟨i,j⟩ | T_R)` per venue id — exact training-time values.
    pub venue_probs: Vec<f64>,
    /// Gazetteer shape the snapshot was trained against.
    pub num_cities: u32,
    /// Venue vocabulary size.
    pub num_venues: u32,
    /// [`gazetteer_fingerprint`] of the training gazetteer — validated on
    /// thaw so a snapshot cannot silently serve a different geography,
    /// even one with identical shape.
    pub gaz_fingerprint: u64,
    /// Per-training-user posteriors, CSR arena indexed by `UserId`.
    pub users: UserArena,
    /// Frozen `φ` CSR arena with per-city totals.
    pub venues: VenueArena,
}

impl PosteriorSnapshot {
    /// Freezes a trained sampler into an immutable snapshot.
    ///
    /// Call after the final sweep (and after post-burn-in accumulation):
    /// `ϕ̄` uses the accumulated means, `φ` the final venue counts, and the
    /// power law whatever Gibbs-EM left behind.
    pub fn freeze(sampler: &GibbsSampler<'_>) -> Self {
        let gaz = sampler.gazetteer();
        let candidacy = sampler.candidacy();
        let config = sampler.config();
        let n = sampler.dataset().num_users();

        let users = UserArena::from_users((0..n).map(|u| {
            let user = UserId(u as u32);
            let candidates = candidacy.candidates(user).to_vec();
            let gammas = candidacy.gammas(user).to_vec();
            let mean_counts: Vec<f64> =
                (0..candidates.len()).map(|c| sampler.state.mean_user_count(user, c)).collect();
            let mean_total = mean_counts.iter().sum();
            UserPosterior {
                home: sampler.estimate_theta(user)[0].0,
                gamma_total: candidacy.gamma_total(user),
                candidates,
                gammas,
                mean_counts,
                mean_total,
            }
        }));

        // The CSR state rows already iterate non-zero entries in venue-id
        // order, so the arena packs straight off the live store — no
        // intermediate maps, no sorting.
        let venues =
            VenueArena::from_rows((0..gaz.num_cities()).map(|l| {
                sampler.state.venue_count_row(CityId(l as u32)).map(|(v, c)| (v, c as f64))
            }));

        Self {
            variant: config.variant,
            count_noisy_assignments: config.count_noisy_assignments,
            tau: config.tau,
            delta: config.delta,
            rho_f: config.rho_f,
            rho_t: config.rho_t,
            power_law: sampler.power_law,
            follow_prob: sampler.random_models().follow_prob(),
            venue_probs: (0..gaz.num_venues())
                .map(|v| sampler.random_models().venue_prob(VenueId(v as u32)))
                .collect(),
            num_cities: gaz.num_cities() as u32,
            num_venues: gaz.num_venues() as u32,
            gaz_fingerprint: gazetteer_fingerprint(gaz),
            users,
            venues,
        }
    }

    /// Number of training users in the snapshot.
    pub fn num_users(&self) -> usize {
        self.users.num_users()
    }

    /// Frozen `φ_{l,v}` lookup (zero for venues the city never hosted).
    #[inline]
    pub fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        self.venues.count(l, v)
    }

    /// Serialises the snapshot into the current (v5) binary format: a
    /// 64-byte-aligned section table over fixed-width little-endian slabs
    /// with per-section CRC32s, ready to be reinterpreted in place by a
    /// mapped open, plus an empty delta record section.
    ///
    /// The format's `u32` slab limits (> 4 Gi candidate entries —
    /// hundreds of GiB of state) surface as the typed
    /// [`SnapshotError::TooLarge`]; there is deliberately no panicking
    /// variant, so no serving process can abort on an oversized encode.
    pub fn try_encode(&self) -> Result<Bytes, SnapshotError> {
        self.encode_with_deltas(&[])
    }

    /// Serialises this snapshot as a v5 *base* followed by `deltas` as
    /// CRC-framed records in the trailing delta section. Decoding replays
    /// the records onto the base, so the artifact thaws to the refreshed
    /// posterior — and a publisher can ship an update by rewriting the
    /// (final) delta section and patching its table entry instead of
    /// re-encoding the arenas
    /// ([`crate::online::OnlineUpdater::encode_artifact`] does exactly
    /// that via the crate-internal `v5_set_delta_section`).
    pub fn encode_with_deltas(&self, deltas: &[SnapshotDelta]) -> Result<Bytes, SnapshotError> {
        let mut delta_section = BytesMut::new();
        append_delta_section(&mut delta_section, deltas)?;
        self.encode_v5(delta_section.as_slice())
    }

    /// Whether this snapshot borrows its slabs from a mapped artifact
    /// (zero-copy open) rather than owning them.
    pub fn is_zero_copy(&self) -> bool {
        self.users.is_zero_copy() || self.venues.is_zero_copy()
    }

    /// The v5 writer: prelude + section table + aligned sections +
    /// `delta_section` (already framed: `u32` count + CRC-framed records)
    /// as the final, variable-length section.
    fn encode_v5(&self, delta_section: &[u8]) -> Result<Bytes, SnapshotError> {
        let (n32, nnz32, cities32, vnz32) = self.slab_counts()?;
        let lens = v5_section_lens(
            n32 as u64,
            nnz32 as u64,
            cities32 as u64,
            self.venue_probs.len() as u64,
            vnz32 as u64,
        );
        let mut offs = [0u64; V5_NUM_SECTIONS];
        let mut cur = V5_DATA_START as u64;
        for (i, &len) in lens.iter().enumerate() {
            offs[i] = cur;
            cur = v5_align(cur + len);
        }
        offs[V5_NUM_SECTIONS - 1] = cur;
        let deltas_len = delta_section.len() as u64;
        let total = usize::try_from(cur + deltas_len)
            .map_err(|_| SnapshotError::Overflow("snapshot byte length"))?;
        let mut out = vec![0u8; total];

        // Prelude (bytes 0..96).
        out[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        out[4..6].copy_from_slice(&VERSION.to_le_bytes());
        out[6] = match self.variant {
            Variant::FollowingOnly => 0,
            Variant::TweetingOnly => 1,
            Variant::Full => 2,
        };
        out[7] = self.count_noisy_assignments as u8;
        for (k, x) in [
            self.tau,
            self.delta,
            self.rho_f,
            self.rho_t,
            self.power_law.alpha,
            self.power_law.beta,
            self.follow_prob,
        ]
        .into_iter()
        .enumerate()
        {
            out[8 + k * 8..16 + k * 8].copy_from_slice(&x.to_le_bytes());
        }
        out[64..68].copy_from_slice(&self.num_cities.to_le_bytes());
        out[68..72].copy_from_slice(&self.num_venues.to_le_bytes());
        out[72..80].copy_from_slice(&self.gaz_fingerprint.to_le_bytes());
        out[80..84].copy_from_slice(&n32.to_le_bytes());
        out[84..88].copy_from_slice(&nnz32.to_le_bytes());
        out[88..92].copy_from_slice(&vnz32.to_le_bytes());
        out[92..96].copy_from_slice(&(V5_NUM_SECTIONS as u32).to_le_bytes());

        // Section payloads.
        {
            let mut w = SectionWriter::new(&mut out, offs[0]);
            for &p in &self.venue_probs {
                w.f64(p);
            }
            w = SectionWriter::new(&mut out, offs[1]);
            for o in self.users.offsets_iter() {
                w.u32(o);
            }
            w = SectionWriter::new(&mut out, offs[2]);
            for c in self.users.candidate_ids_iter() {
                w.u32(c);
            }
            w = SectionWriter::new(&mut out, offs[3]);
            for g in self.users.gammas_iter() {
                w.f64(g);
            }
            w = SectionWriter::new(&mut out, offs[4]);
            for m in self.users.mean_counts_iter() {
                w.f64(m);
            }
            w = SectionWriter::new(&mut out, offs[5]);
            for m in self.users.mean_totals_iter() {
                w.f64(m);
            }
            w = SectionWriter::new(&mut out, offs[6]);
            for g in self.users.gamma_totals_iter() {
                w.f64(g);
            }
            w = SectionWriter::new(&mut out, offs[7]);
            for h in self.users.home_ids_iter() {
                w.u32(h);
            }
            w = SectionWriter::new(&mut out, offs[8]);
            for o in self.venues.offsets_iter() {
                w.u32(o);
            }
            w = SectionWriter::new(&mut out, offs[9]);
            for v in self.venues.venue_ids_iter() {
                w.u32(v);
            }
            w = SectionWriter::new(&mut out, offs[10]);
            for c in self.venues.counts_iter() {
                w.f64(c);
            }
            w = SectionWriter::new(&mut out, offs[11]);
            for t in self.venues.city_totals_iter() {
                w.f64(t);
            }
        }
        let d_off = offs[V5_NUM_SECTIONS - 1] as usize;
        out[d_off..d_off + delta_section.len()].copy_from_slice(delta_section);

        // Section table (13 × 32-byte entries at byte 96), then header CRC.
        for i in 0..V5_NUM_SECTIONS {
            let len = if i < V5_NUM_SECTIONS - 1 { lens[i] } else { deltas_len };
            let off = offs[i] as usize;
            let crc = crc32(&out[off..off + len as usize]);
            let e = V5_PRELUDE_LEN + i * V5_ENTRY_LEN;
            out[e..e + 4].copy_from_slice(&((i as u32) + 1).to_le_bytes());
            out[e + 8..e + 16].copy_from_slice(&offs[i].to_le_bytes());
            out[e + 16..e + 24].copy_from_slice(&len.to_le_bytes());
            out[e + 24..e + 28].copy_from_slice(&crc.to_le_bytes());
        }
        let hcrc = crc32(&out[..V5_HEADER_LEN]);
        out[V5_HEADER_LEN..V5_HEADER_LEN + 4].copy_from_slice(&hcrc.to_le_bytes());
        Ok(Bytes::from(out))
    }

    /// The arena sizes as checked `u32`s — shared by both encoders.
    fn slab_counts(&self) -> Result<(u32, u32, u32, u32), SnapshotError> {
        let n32 = u32::try_from(self.users.num_users())
            .map_err(|_| SnapshotError::TooLarge("user count exceeds u32::MAX"))?;
        let nnz32 = u32::try_from(self.users.num_entries())
            .map_err(|_| SnapshotError::TooLarge("user candidate slab exceeds u32::MAX entries"))?;
        let cities32 = u32::try_from(self.venues.num_cities())
            .map_err(|_| SnapshotError::TooLarge("city count exceeds u32::MAX"))?;
        let vnz32 = u32::try_from(self.venues.num_entries())
            .map_err(|_| SnapshotError::TooLarge("venue count slab exceeds u32::MAX entries"))?;
        Ok((n32, nnz32, cities32, vnz32))
    }

    /// Serialises in the *legacy* v4 layout (length-prefixed slabs, no
    /// section table). Kept so the v2/v3/v4 read path stays pinned by
    /// tests against real legacy bytes; production writers emit v5.
    #[cfg(test)]
    pub(crate) fn encode_with_deltas_v4(
        &self,
        deltas: &[SnapshotDelta],
    ) -> Result<Bytes, SnapshotError> {
        let mut buf = self.encode_payload()?;
        append_delta_section(&mut buf, deltas)?;
        Ok(buf.freeze())
    }

    /// The legacy v4 header + base payload, without the trailing delta
    /// section.
    #[cfg(test)]
    pub(crate) fn encode_payload(&self) -> Result<BytesMut, SnapshotError> {
        let nnz = self.users.num_entries();
        let vnz = self.venues.num_entries();
        let n = self.users.num_users();
        let cities = self.venues.num_cities();
        let nnz32 = u32::try_from(nnz)
            .map_err(|_| SnapshotError::TooLarge("user candidate slab exceeds u32::MAX entries"))?;
        let vnz32 = u32::try_from(vnz)
            .map_err(|_| SnapshotError::TooLarge("venue count slab exceeds u32::MAX entries"))?;
        let n32 =
            u32::try_from(n).map_err(|_| SnapshotError::TooLarge("user count exceeds u32::MAX"))?;
        let cities32 = u32::try_from(cities)
            .map_err(|_| SnapshotError::TooLarge("city count exceeds u32::MAX"))?;
        let mut buf = BytesMut::with_capacity(
            100 + self.venue_probs.len() * 8
                + (n + 1) * 4
                + nnz * 20
                + n * 20
                + (cities + 1) * 4
                + vnz * 12
                + cities * 8,
        );
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(LEGACY_MAX_VERSION);
        buf.put_u8(match self.variant {
            Variant::FollowingOnly => 0,
            Variant::TweetingOnly => 1,
            Variant::Full => 2,
        });
        buf.put_u8(self.count_noisy_assignments as u8);
        for x in [
            self.tau,
            self.delta,
            self.rho_f,
            self.rho_t,
            self.power_law.alpha,
            self.power_law.beta,
            self.follow_prob,
        ] {
            buf.put_f64_le(x);
        }
        buf.put_u32_le(self.num_cities);
        buf.put_u32_le(self.num_venues);
        buf.put_u64_le(self.gaz_fingerprint);

        buf.put_u32_le(self.venue_probs.len() as u32);
        for &p in &self.venue_probs {
            buf.put_f64_le(p);
        }

        // User arena: offsets, then each slab in column order.
        buf.put_u32_le(n32);
        buf.put_u32_le(nnz32);
        for o in self.users.offsets_iter() {
            buf.put_u32_le(o);
        }
        for c in self.users.candidate_ids_iter() {
            buf.put_u32_le(c);
        }
        for g in self.users.gammas_iter() {
            buf.put_f64_le(g);
        }
        for m in self.users.mean_counts_iter() {
            buf.put_f64_le(m);
        }
        for m in self.users.mean_totals_iter() {
            buf.put_f64_le(m);
        }
        for g in self.users.gamma_totals_iter() {
            buf.put_f64_le(g);
        }
        for h in self.users.home_ids_iter() {
            buf.put_u32_le(h);
        }

        // Venue arena.
        buf.put_u32_le(cities32);
        buf.put_u32_le(vnz32);
        for o in self.venues.offsets_iter() {
            buf.put_u32_le(o);
        }
        for v in self.venues.venue_ids_iter() {
            buf.put_u32_le(v);
        }
        for c in self.venues.counts_iter() {
            buf.put_f64_le(c);
        }
        for t in self.venues.city_totals_iter() {
            buf.put_f64_le(t);
        }
        Ok(buf)
    }

    /// Commits a delta: appends its user rows to the user arena and
    /// merges its `φ` increments into the venue CSR — index-wise, no
    /// clone of the trained state, no retrain. Everything is validated
    /// up front with typed errors (the same invariants [`Self::decode`]
    /// enforces), so a failed apply leaves the snapshot untouched.
    pub fn apply_delta(&mut self, delta: &SnapshotDelta) -> Result<(), SnapshotError> {
        if delta.base_users as usize != self.users.num_users() {
            return Err(SnapshotError::Corrupt("delta base user count mismatch"));
        }
        for u in 0..delta.users.num_users() {
            let view = delta.users.user(UserId(u as u32));
            if view.candidates.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("delta candidate list not sorted"));
            }
            if view.candidates.iter().any(|c| c.0 >= self.num_cities) {
                return Err(SnapshotError::Corrupt("delta candidate city out of range"));
            }
            if view.candidates.binary_search(&view.home).is_err() {
                return Err(SnapshotError::Corrupt("delta home city is not a candidate"));
            }
            if view.gammas.iter().any(|g| !g.is_finite() || *g <= 0.0) {
                return Err(SnapshotError::Corrupt("delta gamma not finite-positive"));
            }
            if view.mean_counts.iter().any(|m| !m.is_finite() || *m < 0.0)
                || !view.mean_total.is_finite()
                || view.mean_total < 0.0
                || !view.gamma_total.is_finite()
                || view.gamma_total <= 0.0
            {
                return Err(SnapshotError::Corrupt("delta mean counts not finite-nonnegative"));
            }
        }
        if delta.venue_cities.len() != delta.venue_ids.len()
            || delta.venue_cities.len() != delta.venue_weights.len()
        {
            return Err(SnapshotError::Corrupt("delta venue columns misaligned"));
        }
        let keys = delta.venue_cities.iter().zip(&delta.venue_ids);
        if keys.clone().any(|(&l, &v)| l >= self.num_cities || v >= self.num_venues) {
            return Err(SnapshotError::Corrupt("delta venue cell out of range"));
        }
        let mut prev: Option<(u32, u32)> = None;
        for (&l, &v) in keys {
            if prev.is_some_and(|p| p >= (l, v)) {
                return Err(SnapshotError::Corrupt("delta venue cells not sorted-unique"));
            }
            prev = Some((l, v));
        }
        if delta.venue_weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(SnapshotError::Corrupt("delta venue weight not finite-nonnegative"));
        }
        // Slab-limit checks up front too, so a failure below cannot leave
        // one arena mutated and the other not.
        if self.venues.num_entries() as u64 + delta.venue_ids.len() as u64 > u32::MAX as u64 {
            return Err(SnapshotError::TooLarge("venue count slab exceeds u32::MAX entries"));
        }
        self.users.extend_from(&delta.users)?;
        self.venues.apply_sorted_weights(
            &delta.venue_cities,
            &delta.venue_ids,
            &delta.venue_weights,
        )
    }

    /// Decodes a snapshot produced by [`Self::try_encode`] (v5) or by an
    /// older v2–v4 build; delta records are replayed onto the base so the
    /// result is the refreshed posterior. This is the *copying* path — it
    /// always yields owned arenas. Zero-copy opens go through
    /// [`Self::open_mapped`].
    pub fn decode(mut buf: Bytes) -> Result<Self, SnapshotError> {
        need64(&buf, 8)?;
        let head = buf.as_slice();
        let magic = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version == VERSION {
            // The v5 section-table parser works off the full byte range
            // (offsets are absolute); copy every slab to owned memory.
            return Self::thaw_v5(buf.as_slice(), None, Integrity::Full);
        }
        if !(MIN_READ_VERSION..LEGACY_MAX_VERSION + 1).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        buf.get_u32_le();
        buf.get_u16_le();
        let variant = match buf.get_u8() {
            0 => Variant::FollowingOnly,
            1 => Variant::TweetingOnly,
            2 => Variant::Full,
            t => return Err(SnapshotError::BadTag(t)),
        };
        let count_noisy_assignments = match buf.get_u8() {
            0 => false,
            1 => true,
            t => return Err(SnapshotError::BadTag(t)),
        };

        need64(&buf, 7 * 8 + 8 + 8)?;
        let tau = buf.get_f64_le();
        let delta = buf.get_f64_le();
        let rho_f = buf.get_f64_le();
        let rho_t = buf.get_f64_le();
        let power_law = PowerLaw { alpha: buf.get_f64_le(), beta: buf.get_f64_le() };
        let follow_prob = buf.get_f64_le();
        let num_cities = buf.get_u32_le();
        let num_venues = buf.get_u32_le();
        let gaz_fingerprint = buf.get_u64_le();

        need64(&buf, 4)?;
        let n_probs = buf.get_u32_le() as usize;
        if n_probs != num_venues as usize {
            return Err(SnapshotError::Corrupt("venue_probs length != num_venues"));
        }
        need64(&buf, n_probs as u64 * 8)?;
        let venue_probs: Vec<f64> = (0..n_probs).map(|_| buf.get_f64_le()).collect();

        // --- User arena ---------------------------------------------------
        need64(&buf, 8)?;
        let n_users = buf.get_u32_le() as usize;
        let nnz = buf.get_u32_le();
        // Every slab length is now known: a declared size the buffer
        // cannot possibly hold must fail *before* any pre-allocation, or a
        // corrupt header turns into a multi-GB allocation instead of a
        // typed error. The byte count is computed in u64 so a declared
        // size near `u32::MAX` cannot wrap `usize` on 32-bit targets.
        need64(&buf, (n_users as u64 + 1) * 4 + nnz as u64 * 20 + n_users as u64 * 20)?;
        let offsets = get_offsets(&mut buf, n_users, nnz)?;
        let candidates: Vec<CityId> = (0..nnz).map(|_| CityId(buf.get_u32_le())).collect();
        if candidates.iter().any(|c| c.0 >= num_cities) {
            return Err(SnapshotError::Corrupt("candidate city out of range"));
        }
        let gammas: Vec<f64> = (0..nnz).map(|_| buf.get_f64_le()).collect();
        let mean_counts: Vec<f64> = (0..nnz).map(|_| buf.get_f64_le()).collect();
        let mean_totals: Vec<f64> = (0..n_users).map(|_| buf.get_f64_le()).collect();
        let gamma_totals: Vec<f64> = (0..n_users).map(|_| buf.get_f64_le()).collect();
        let homes: Vec<CityId> = (0..n_users).map(|_| CityId(buf.get_u32_le())).collect();
        for u in 0..n_users {
            let row = &candidates[offsets[u] as usize..offsets[u + 1] as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("candidate list not sorted"));
            }
            // Fold-in anchors partners at `home` and binary-searches it in
            // the candidate list; a snapshot violating that must not thaw.
            if row.binary_search(&homes[u]).is_err() {
                return Err(SnapshotError::Corrupt("home city is not a candidate"));
            }
        }
        let users = UserArena::from_parts(
            offsets,
            candidates,
            gammas,
            mean_counts,
            mean_totals,
            gamma_totals,
            homes,
        );

        // --- Venue arena --------------------------------------------------
        need64(&buf, 8)?;
        let n_cities = buf.get_u32_le() as usize;
        if n_cities != num_cities as usize {
            return Err(SnapshotError::Corrupt("venue arena rows != num_cities"));
        }
        let vnz = buf.get_u32_le();
        need64(&buf, (n_cities as u64 + 1) * 4 + vnz as u64 * 12 + n_cities as u64 * 8)?;
        let offsets = get_offsets(&mut buf, n_cities, vnz)?;
        let venue_ids: Vec<u32> = (0..vnz).map(|_| buf.get_u32_le()).collect();
        if venue_ids.iter().any(|&v| v >= num_venues) {
            return Err(SnapshotError::Corrupt("venue id out of range"));
        }
        let counts: Vec<f64> = (0..vnz).map(|_| buf.get_f64_le()).collect();
        let city_totals: Vec<f64> = (0..n_cities).map(|_| buf.get_f64_le()).collect();
        for l in 0..n_cities {
            let row = &venue_ids[offsets[l] as usize..offsets[l + 1] as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("venue count row not sorted"));
            }
        }
        let venues = VenueArena::from_parts(offsets, venue_ids, counts, city_totals);

        let mut snap = Self {
            variant,
            count_noisy_assignments,
            tau,
            delta,
            rho_f,
            rho_t,
            power_law,
            follow_prob,
            venue_probs,
            num_cities,
            num_venues,
            gaz_fingerprint,
            users,
            venues,
        };

        // --- Delta record section (v3+) -----------------------------------
        // Replay every committed increment onto the base, validating each
        // one exactly like base state. A v2 artifact simply has no
        // section; v4 records are CRC-framed, v3 records are not.
        if version >= 3 {
            need64(&buf, 4)?;
            let n_deltas = buf.get_u32_le();
            for _ in 0..n_deltas {
                let record = SnapshotDelta::decode_record(&mut buf, version >= 4)?;
                snap.apply_delta(&record)?;
            }
        }
        // A well-formed artifact ends exactly here; leftover bytes mean a
        // stale in-place overwrite or a mangled concatenation, and
        // silently ignoring them would mask the corruption.
        if buf.has_remaining() {
            return Err(SnapshotError::Corrupt("trailing bytes after snapshot"));
        }
        Ok(snap)
    }
}

/// Appends the v4 trailer — `u32` record count + CRC-framed records —
/// the one framing shared by [`PosteriorSnapshot::encode_with_deltas`]
/// and the updater's incremental
/// [`crate::online::OnlineUpdater::encode_artifact`].
pub(crate) fn append_delta_section(
    buf: &mut BytesMut,
    deltas: &[SnapshotDelta],
) -> Result<(), SnapshotError> {
    let count = u32::try_from(deltas.len())
        .map_err(|_| SnapshotError::TooLarge("delta record count exceeds u32::MAX"))?;
    buf.put_u32_le(count);
    for d in deltas {
        d.encode_record(buf)?;
    }
    Ok(())
}

/// Fails with [`SnapshotError::Truncated`] when `buf` holds fewer than `n`
/// bytes; declared sizes are computed in `u64` and converted checked, so a
/// hostile header cannot wrap the byte count on 32-bit targets.
fn need64(buf: &Bytes, n: u64) -> Result<(), SnapshotError> {
    let n = usize::try_from(n).map_err(|_| SnapshotError::Overflow("declared payload size"))?;
    if buf.remaining() < n {
        Err(SnapshotError::Truncated)
    } else {
        Ok(())
    }
}

/// Reads a length-validated offset table: starts at 0, is non-decreasing,
/// and ends exactly at `nnz`.
fn get_offsets(buf: &mut Bytes, rows: usize, nnz: u32) -> Result<Vec<u32>, SnapshotError> {
    need64(buf, (rows as u64 + 1) * 4)?;
    let offsets: Vec<u32> = (0..=rows).map(|_| buf.get_u32_le()).collect();
    check_offset_table(&offsets, nnz)?;
    Ok(offsets)
}

/// The shared offset-table invariant: starts at 0, non-decreasing, ends
/// exactly at `nnz`. Same checks (and error strings) on every read path —
/// legacy byte streams and v5 slabs alike.
fn check_offset_table(offsets: &[u32], nnz: u32) -> Result<(), SnapshotError> {
    if offsets.is_empty() || offsets[0] != 0 || offsets[offsets.len() - 1] != nnz {
        return Err(SnapshotError::Corrupt("offset table does not span its slab"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt("offset table not monotone"));
    }
    Ok(())
}

// --- v5: the section-table format ---------------------------------------
//
// Byte map (all little-endian, fixed-width):
//
//   0        magic "MLPS", version, variant, noisy flag, 7 × f64 scalars
//   64       num_cities, num_venues, gaz_fingerprint, n_users, user_nnz,
//            venue_nnz, section_count
//   96       section table: 13 × 32-byte entries
//            { kind u32, pad, offset u64, len u64, crc32, pad }
//   512      crc32 over bytes [0, 512)
//   516      zero padding
//   576      sections, each 64-byte aligned, in table order; DELTAS last
//            (u32 record count + CRC-framed records), ending exactly at
//            the file's end
//
// Fixed alignment plus per-section CRCs is what lets a mapped open
// reinterpret every slab in place: validate the header, checksum the
// ranges, and borrow.

pub(crate) const V5_PRELUDE_LEN: usize = 96;
const V5_ENTRY_LEN: usize = 32;
pub(crate) const V5_HEADER_LEN: usize = 512;
pub(crate) const V5_DATA_START: usize = 576;
const V5_ALIGN: u64 = 64;
pub(crate) const V5_NUM_SECTIONS: usize = 13;

/// Section names in table order (a section's `kind` tag is its 1-based
/// index here).
pub const V5_SECTION_NAMES: [&str; V5_NUM_SECTIONS] = [
    "venue_probs",
    "user_offsets",
    "user_candidates",
    "user_gammas",
    "user_mean_counts",
    "user_mean_totals",
    "user_gamma_totals",
    "user_homes",
    "venue_offsets",
    "venue_ids",
    "venue_counts",
    "venue_city_totals",
    "deltas",
];

#[inline]
fn v5_align(x: u64) -> u64 {
    (x + (V5_ALIGN - 1)) & !(V5_ALIGN - 1)
}

/// Byte lengths of the twelve fixed-shape sections, derived from the
/// prelude counts; the trailing deltas section is variable (0 here).
fn v5_section_lens(
    n: u64,
    nnz: u64,
    cities: u64,
    n_probs: u64,
    vnz: u64,
) -> [u64; V5_NUM_SECTIONS] {
    [
        n_probs * 8,
        (n + 1) * 4,
        nnz * 4,
        nnz * 8,
        nnz * 8,
        n * 8,
        n * 8,
        n * 4,
        (cities + 1) * 4,
        vnz * 4,
        vnz * 8,
        cities * 8,
        0,
    ]
}

/// A cursor writing fixed-width little-endian values into a section of a
/// pre-sized buffer.
struct SectionWriter<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> SectionWriter<'a> {
    fn new(buf: &'a mut [u8], offset: u64) -> Self {
        Self { buf, pos: offset as usize }
    }

    #[inline]
    fn u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    #[inline]
    fn f64(&mut self, v: f64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }
}

#[inline]
fn u32_at(s: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([s[off], s[off + 1], s[off + 2], s[off + 3]])
}

#[inline]
fn u64_at(s: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(s[off..off + 8].try_into().unwrap())
}

#[inline]
fn f64_at(s: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(s[off..off + 8].try_into().unwrap())
}

/// A validated v5 header: the prelude fields plus the section table as
/// `(offset, len, crc)` triples in table order.
struct V5Header {
    variant: Variant,
    count_noisy_assignments: bool,
    tau: f64,
    delta: f64,
    rho_f: f64,
    rho_t: f64,
    power_law: PowerLaw,
    follow_prob: f64,
    num_cities: u32,
    num_venues: u32,
    gaz_fingerprint: u64,
    n_users: u32,
    user_nnz: u32,
    venue_nnz: u32,
    sections: [(u64, u64, u32); V5_NUM_SECTIONS],
}

/// How much of a v5 artifact to verify before trusting it — the
/// mapped-open policy knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Integrity {
    /// Verify the header CRC and every section CRC before thawing: any
    /// bit flip anywhere in the file is rejected typed. Costs one full
    /// read pass over the artifact. The default.
    #[default]
    Full,
    /// Verify the header CRC, the section-table geometry, and every
    /// structural invariant indexing relies on (offset tables, id
    /// ranges, sort order) — but skip checksumming the section payloads.
    /// Still memory-safe and panic-free on arbitrary input; what it
    /// gives up is *detection*: corruption that keeps the structure
    /// valid (e.g. a flipped probability bit) thaws silently. In
    /// exchange, opening a mapped artifact faults in only its structure
    /// — the float payloads (most of the file) stay untouched until
    /// served. For trusted local files, e.g. a checkpoint this process
    /// wrote moments ago.
    Structural,
}

/// Validates a v5 header against `s`: magic, version, header CRC, tag
/// bytes, section-table geometry (kind tags, 64-byte alignment,
/// contiguity, the fixed section lengths implied by the prelude counts,
/// bounds, exact file length) and — under [`Integrity::Full`] — every
/// section CRC. After this returns, each section's byte range can be
/// reinterpreted or copied without further bounds checks. Work is
/// O(header) + one CRC pass over the file (Full) or O(header)
/// (Structural).
fn parse_v5(s: &[u8], integrity: Integrity) -> Result<V5Header, SnapshotError> {
    if s.len() < V5_DATA_START {
        return Err(SnapshotError::Truncated);
    }
    let magic = u32_at(s, 0);
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([s[4], s[5]]);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    if crc32(&s[..V5_HEADER_LEN]) != u32_at(s, V5_HEADER_LEN) {
        return Err(SnapshotError::Corrupt("snapshot header checksum mismatch"));
    }
    let variant = match s[6] {
        0 => Variant::FollowingOnly,
        1 => Variant::TweetingOnly,
        2 => Variant::Full,
        t => return Err(SnapshotError::BadTag(t)),
    };
    let count_noisy_assignments = match s[7] {
        0 => false,
        1 => true,
        t => return Err(SnapshotError::BadTag(t)),
    };
    let num_cities = u32_at(s, 64);
    let num_venues = u32_at(s, 68);
    let gaz_fingerprint = u64_at(s, 72);
    let n_users = u32_at(s, 80);
    let user_nnz = u32_at(s, 84);
    let venue_nnz = u32_at(s, 88);
    if u32_at(s, 92) != V5_NUM_SECTIONS as u32 {
        return Err(SnapshotError::Corrupt("section count mismatch"));
    }

    let lens = v5_section_lens(
        n_users as u64,
        user_nnz as u64,
        num_cities as u64,
        num_venues as u64,
        venue_nnz as u64,
    );
    let mut sections = [(0u64, 0u64, 0u32); V5_NUM_SECTIONS];
    let mut expected = V5_DATA_START as u64;
    for (i, entry) in sections.iter_mut().enumerate() {
        let e = V5_PRELUDE_LEN + i * V5_ENTRY_LEN;
        if u32_at(s, e) != i as u32 + 1 {
            return Err(SnapshotError::Corrupt("section table kind mismatch"));
        }
        let off = u64_at(s, e + 8);
        let len = u64_at(s, e + 16);
        if !off.is_multiple_of(V5_ALIGN) {
            return Err(SnapshotError::Corrupt("section offset misaligned"));
        }
        if off != expected {
            return Err(SnapshotError::Corrupt("section table not contiguous"));
        }
        if i < V5_NUM_SECTIONS - 1 && len != lens[i] {
            return Err(SnapshotError::Corrupt("section length mismatch"));
        }
        let end = off.checked_add(len).ok_or(SnapshotError::Truncated)?;
        if end > s.len() as u64 {
            return Err(SnapshotError::Truncated);
        }
        *entry = (off, len, u32_at(s, e + 24));
        expected = v5_align(end);
    }
    let (d_off, d_len, _) = sections[V5_NUM_SECTIONS - 1];
    // The delta section always carries at least its u32 record count.
    if d_len < 4 {
        return Err(SnapshotError::Truncated);
    }
    if d_off + d_len != s.len() as u64 {
        return Err(SnapshotError::Corrupt("trailing bytes after snapshot"));
    }
    if integrity == Integrity::Full {
        for &(off, len, crc) in &sections {
            if crc32(&s[off as usize..(off + len) as usize]) != crc {
                return Err(SnapshotError::Corrupt("section checksum mismatch"));
            }
        }
    }

    Ok(V5Header {
        variant,
        count_noisy_assignments,
        tau: f64_at(s, 8),
        delta: f64_at(s, 16),
        rho_f: f64_at(s, 24),
        rho_t: f64_at(s, 32),
        power_law: PowerLaw { alpha: f64_at(s, 40), beta: f64_at(s, 48) },
        follow_prob: f64_at(s, 56),
        num_cities,
        num_venues,
        gaz_fingerprint,
        n_users,
        user_nnz,
        venue_nnz,
        sections,
    })
}

/// Section `i`'s byte range (bounds already proven by [`parse_v5`]).
fn section_bytes<'a>(s: &'a [u8], h: &V5Header, i: usize) -> &'a [u8] {
    let (off, len, _) = h.sections[i];
    &s[off as usize..(off + len) as usize]
}

fn read_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect()
}

fn read_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

/// The eleven arena slabs of a v5 artifact, view or owned, pre-arena.
/// Validation runs on these *before* `Csr` construction so hostile
/// artifacts surface typed errors rather than tripping arena
/// debug-assertions.
struct V5Slabs {
    user_offsets: Slab<u32>,
    user_candidates: Slab<CityId>,
    user_gammas: Slab<f64>,
    user_mean_counts: Slab<f64>,
    user_mean_totals: Slab<f64>,
    user_gamma_totals: Slab<f64>,
    user_homes: Slab<CityId>,
    venue_offsets: Slab<u32>,
    venue_ids: Slab<u32>,
    venue_counts: Slab<f64>,
    venue_city_totals: Slab<f64>,
}

impl V5Slabs {
    /// Borrows every slab zero-copy from `s`. Fails (cleanly, no UB) when
    /// any section is misaligned for its element type in memory — the
    /// caller falls back to [`V5Slabs::copied`].
    fn mapped(
        s: &[u8],
        h: &V5Header,
        keep: &Arc<dyn Any + Send + Sync>,
    ) -> Result<V5Slabs, &'static str> {
        // Safety: every section range lies inside `s`, which the caller
        // guarantees is the allocation owned by `keep`; each slab holds
        // the Arc, so the memory outlives every view.
        unsafe {
            Ok(V5Slabs {
                user_offsets: Slab::view(section_bytes(s, h, 1), Arc::clone(keep))?,
                user_candidates: Slab::view(section_bytes(s, h, 2), Arc::clone(keep))?,
                user_gammas: Slab::view(section_bytes(s, h, 3), Arc::clone(keep))?,
                user_mean_counts: Slab::view(section_bytes(s, h, 4), Arc::clone(keep))?,
                user_mean_totals: Slab::view(section_bytes(s, h, 5), Arc::clone(keep))?,
                user_gamma_totals: Slab::view(section_bytes(s, h, 6), Arc::clone(keep))?,
                user_homes: Slab::view(section_bytes(s, h, 7), Arc::clone(keep))?,
                venue_offsets: Slab::view(section_bytes(s, h, 8), Arc::clone(keep))?,
                venue_ids: Slab::view(section_bytes(s, h, 9), Arc::clone(keep))?,
                venue_counts: Slab::view(section_bytes(s, h, 10), Arc::clone(keep))?,
                venue_city_totals: Slab::view(section_bytes(s, h, 11), Arc::clone(keep))?,
            })
        }
    }

    /// Copies every slab into owned memory — the fallback (and the plain
    /// [`PosteriorSnapshot::decode`]) path.
    fn copied(s: &[u8], h: &V5Header) -> V5Slabs {
        V5Slabs {
            user_offsets: Slab::from_vec(read_u32s(section_bytes(s, h, 1))),
            user_candidates: Slab::from_vec(
                read_u32s(section_bytes(s, h, 2)).into_iter().map(CityId).collect(),
            ),
            user_gammas: Slab::from_vec(read_f64s(section_bytes(s, h, 3))),
            user_mean_counts: Slab::from_vec(read_f64s(section_bytes(s, h, 4))),
            user_mean_totals: Slab::from_vec(read_f64s(section_bytes(s, h, 5))),
            user_gamma_totals: Slab::from_vec(read_f64s(section_bytes(s, h, 6))),
            user_homes: Slab::from_vec(
                read_u32s(section_bytes(s, h, 7)).into_iter().map(CityId).collect(),
            ),
            venue_offsets: Slab::from_vec(read_u32s(section_bytes(s, h, 8))),
            venue_ids: Slab::from_vec(read_u32s(section_bytes(s, h, 9))),
            venue_counts: Slab::from_vec(read_f64s(section_bytes(s, h, 10))),
            venue_city_totals: Slab::from_vec(read_f64s(section_bytes(s, h, 11))),
        }
    }

    /// The structural invariants the legacy decoder enforces, with the
    /// same error strings, checked in the same order.
    fn validate(&self, h: &V5Header) -> Result<(), SnapshotError> {
        let offsets = self.user_offsets.as_slice();
        check_offset_table(offsets, h.user_nnz)?;
        let candidates = self.user_candidates.as_slice();
        if candidates.iter().any(|c| c.0 >= h.num_cities) {
            return Err(SnapshotError::Corrupt("candidate city out of range"));
        }
        let homes = self.user_homes.as_slice();
        for u in 0..h.n_users as usize {
            let row = &candidates[offsets[u] as usize..offsets[u + 1] as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("candidate list not sorted"));
            }
            if row.binary_search(&homes[u]).is_err() {
                return Err(SnapshotError::Corrupt("home city is not a candidate"));
            }
        }
        let voffsets = self.venue_offsets.as_slice();
        check_offset_table(voffsets, h.venue_nnz)?;
        let ids = self.venue_ids.as_slice();
        if ids.iter().any(|&v| v >= h.num_venues) {
            return Err(SnapshotError::Corrupt("venue id out of range"));
        }
        for l in 0..h.num_cities as usize {
            let row = &ids[voffsets[l] as usize..voffsets[l + 1] as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SnapshotError::Corrupt("venue count row not sorted"));
            }
        }
        Ok(())
    }
}

impl PosteriorSnapshot {
    /// Thaws a v5 artifact from its full byte range. With `keep` — an
    /// owner of the bytes, e.g. a mapped file — the slabs are borrowed
    /// zero-copy when byte order and alignment allow; without it, or on
    /// any misalignment, every slab is copied to owned memory. Either way
    /// the delta section is replayed onto the base (records only — never
    /// the slabs), so a mapped open does O(slabs) validation but O(deltas)
    /// materialization.
    fn thaw_v5(
        s: &[u8],
        keep: Option<Arc<dyn Any + Send + Sync>>,
        integrity: Integrity,
    ) -> Result<Self, SnapshotError> {
        let h = parse_v5(s, integrity)?;
        // The on-disk representation is little-endian; on a big-endian
        // target reinterpreting would read garbage, so copy-decode there.
        let keep = if cfg!(target_endian = "little") { keep } else { None };
        let slabs = match &keep {
            Some(owner) => match V5Slabs::mapped(s, &h, owner) {
                Ok(slabs) => slabs,
                Err(_) => V5Slabs::copied(s, &h),
            },
            None => V5Slabs::copied(s, &h),
        };
        slabs.validate(&h)?;
        let users = UserArena::from_slabs(
            slabs.user_offsets,
            slabs.user_candidates,
            slabs.user_gammas,
            slabs.user_mean_counts,
            slabs.user_mean_totals,
            slabs.user_gamma_totals,
            slabs.user_homes,
        );
        let venues = VenueArena::from_slabs(
            slabs.venue_offsets,
            slabs.venue_ids,
            slabs.venue_counts,
            slabs.venue_city_totals,
        );
        let mut snap = Self {
            variant: h.variant,
            count_noisy_assignments: h.count_noisy_assignments,
            tau: h.tau,
            delta: h.delta,
            rho_f: h.rho_f,
            rho_t: h.rho_t,
            power_law: h.power_law,
            follow_prob: h.follow_prob,
            // A plain Vec field, gazetteer-sized — always copied.
            venue_probs: read_f64s(section_bytes(s, &h, 0)),
            num_cities: h.num_cities,
            num_venues: h.num_venues,
            gaz_fingerprint: h.gaz_fingerprint,
            users,
            venues,
        };
        let (d_off, d_len, _) = h.sections[V5_NUM_SECTIONS - 1];
        let mut dbuf = Bytes::from(s[d_off as usize..(d_off + d_len) as usize].to_vec());
        need64(&dbuf, 4)?;
        let n_deltas = dbuf.get_u32_le();
        for _ in 0..n_deltas {
            let record = SnapshotDelta::decode_record(&mut dbuf, true)?;
            snap.apply_delta(&record)?;
        }
        if dbuf.has_remaining() {
            return Err(SnapshotError::Corrupt("trailing bytes after snapshot"));
        }
        Ok(snap)
    }

    /// Opens an artifact zero-copy from a mapped file: validate header
    /// and section CRCs, then borrow every slab in place — no slab-sized
    /// allocation, no copy, O(1) in the user count apart from the CRC
    /// pass and structural scan. Legacy (v2–v4) artifacts have no section
    /// table and fall back to the copying [`Self::decode`]; so do
    /// misaligned or big-endian situations inside the internal v5 thaw.
    /// Callers observe identical snapshots on every path.
    pub fn open_mapped(map: &Arc<mmap_lite::Mmap>) -> Result<Self, SnapshotError> {
        Self::open_mapped_with(map, Integrity::Full)
    }

    /// [`Self::open_mapped`] with an explicit verification policy.
    /// [`Integrity::Structural`] skips the section-CRC pass, so the open
    /// touches only the artifact's structure — O(offsets + ids), not
    /// O(file) — at the cost of not detecting payload corruption; see
    /// [`Integrity`] for the exact trade.
    pub fn open_mapped_with(
        map: &Arc<mmap_lite::Mmap>,
        integrity: Integrity,
    ) -> Result<Self, SnapshotError> {
        let s = map.as_slice();
        if s.len() >= 6 {
            let version = u16::from_le_bytes([s[4], s[5]]);
            if u32_at(s, 0) == MAGIC && (MIN_READ_VERSION..VERSION).contains(&version) {
                return Self::decode(Bytes::from(s.to_vec()));
            }
        }
        if integrity == Integrity::Full {
            map.advise(mmap_lite::Advice::Sequential);
        }
        let keep: Arc<dyn Any + Send + Sync> = Arc::<mmap_lite::Mmap>::clone(map);
        let snap = Self::thaw_v5(s, Some(keep), integrity)?;
        map.advise(mmap_lite::Advice::Random);
        Ok(snap)
    }
}

/// Rewrites the (final) delta section of an existing v5 artifact: one
/// memcpy of everything before the deltas, fresh CRC-framed records, a
/// patched table entry and header CRC. The incremental publish path —
/// the arena sections are never re-encoded or re-checksummed.
pub(crate) fn v5_set_delta_section(
    base: &[u8],
    deltas: &[SnapshotDelta],
) -> Result<Bytes, SnapshotError> {
    if base.len() < V5_DATA_START {
        return Err(SnapshotError::Truncated);
    }
    let magic = u32_at(base, 0);
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([base[4], base[5]]);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let e = V5_PRELUDE_LEN + (V5_NUM_SECTIONS - 1) * V5_ENTRY_LEN;
    let d_off = u64_at(base, e + 8);
    if d_off < V5_DATA_START as u64 || d_off > base.len() as u64 {
        return Err(SnapshotError::Truncated);
    }
    let d_off = d_off as usize;
    let mut section = BytesMut::new();
    append_delta_section(&mut section, deltas)?;
    let mut out = Vec::with_capacity(d_off + section.len());
    out.extend_from_slice(&base[..d_off]);
    out.extend_from_slice(section.as_slice());
    let crc = crc32(section.as_slice());
    out[e + 16..e + 24].copy_from_slice(&(section.len() as u64).to_le_bytes());
    out[e + 24..e + 28].copy_from_slice(&crc.to_le_bytes());
    let hcrc = crc32(&out[..V5_HEADER_LEN]);
    out[V5_HEADER_LEN..V5_HEADER_LEN + 4].copy_from_slice(&hcrc.to_le_bytes());
    Ok(Bytes::from(out))
}

/// Per-section metadata surfaced by [`inspect_artifact`].
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Human name of the section kind.
    pub name: &'static str,
    /// Absolute byte offset (64-byte aligned).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC32 over the payload.
    pub crc: u32,
}

/// A validated summary of an artifact — what `mlp inspect` prints.
#[derive(Debug, Clone)]
pub struct ArtifactInfo {
    /// Format version (2–5).
    pub version: u16,
    /// Model variant tag.
    pub variant: Variant,
    /// Training users in the base arenas.
    pub num_users: u32,
    /// Gazetteer shape.
    pub num_cities: u32,
    /// Venue vocabulary size.
    pub num_venues: u32,
    /// Candidate-slab entries.
    pub user_nnz: u32,
    /// Venue count-slab entries.
    pub venue_nnz: u32,
    /// Training-gazetteer fingerprint.
    pub gaz_fingerprint: u64,
    /// Delta records in the artifact's trailing section (v5; legacy
    /// artifacts replay records into the base during decode and report 0).
    pub delta_records: u32,
    /// Whole-artifact size in bytes.
    pub total_bytes: u64,
    /// The v5 section table; empty for legacy artifacts.
    pub sections: Vec<SectionInfo>,
}

/// The format version this build writes ([`PosteriorSnapshot::try_encode`]).
pub const CURRENT_ARTIFACT_VERSION: u16 = VERSION;

/// The artifact's declared format version, when `bytes` starts with the
/// snapshot magic (needs at least 6 bytes); `None` otherwise.
pub fn artifact_version(bytes: &[u8]) -> Option<u16> {
    if bytes.len() < 6 || u32_at(bytes, 0) != MAGIC {
        return None;
    }
    Some(u16::from_le_bytes([bytes[4], bytes[5]]))
}

/// Summarises an artifact header without materializing the model. v5
/// artifacts are read from the section table alone (O(header) plus the
/// CRC pass); legacy artifacts have no table and are fully decoded to
/// recover the same counts.
pub fn inspect_artifact(s: &[u8]) -> Result<ArtifactInfo, SnapshotError> {
    if s.len() < 6 {
        return Err(SnapshotError::Truncated);
    }
    let magic = u32_at(s, 0);
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([s[4], s[5]]);
    if version != VERSION {
        let snap = PosteriorSnapshot::decode(Bytes::from(s.to_vec()))?;
        return Ok(ArtifactInfo {
            version,
            variant: snap.variant,
            num_users: snap.users.num_users() as u32,
            num_cities: snap.num_cities,
            num_venues: snap.num_venues,
            user_nnz: snap.users.num_entries() as u32,
            venue_nnz: snap.venues.num_entries() as u32,
            gaz_fingerprint: snap.gaz_fingerprint,
            delta_records: 0,
            total_bytes: s.len() as u64,
            sections: Vec::new(),
        });
    }
    let h = parse_v5(s, Integrity::Full)?;
    let (d_off, _, _) = h.sections[V5_NUM_SECTIONS - 1];
    Ok(ArtifactInfo {
        version,
        variant: h.variant,
        num_users: h.n_users,
        num_cities: h.num_cities,
        num_venues: h.num_venues,
        user_nnz: h.user_nnz,
        venue_nnz: h.venue_nnz,
        gaz_fingerprint: h.gaz_fingerprint,
        delta_records: u32_at(s, d_off as usize),
        total_bytes: s.len() as u64,
        sections: h
            .sections
            .iter()
            .zip(V5_SECTION_NAMES)
            .map(|(&(offset, len, crc), name)| SectionInfo { name, offset, len, crc })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidacy::Candidacy;
    use crate::config::MlpConfig;
    use crate::random_models::RandomModels;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    fn trained_snapshot(users: usize, seed: u64) -> PosteriorSnapshot {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
                .generate();
        let config = MlpConfig { seed, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for _ in 0..6 {
            sampler.sweep();
            sampler.state.accumulate();
        }
        PosteriorSnapshot::freeze(&sampler)
    }

    #[test]
    fn freeze_captures_the_trained_state() {
        let snap = trained_snapshot(120, 41);
        assert_eq!(snap.num_users(), 120);
        assert_eq!(snap.num_cities as usize, Gazetteer::us_cities().num_cities());
        for u in 0..snap.num_users() {
            let view = snap.users.user(UserId(u as u32));
            assert_eq!(view.candidates.len(), view.gammas.len());
            assert_eq!(view.candidates.len(), view.mean_counts.len());
            assert!((view.mean_total - view.mean_counts.iter().sum::<f64>()).abs() < 1e-9);
            assert!(view.candidates.contains(&view.home));
        }
        // φ totals match their rows.
        for l in 0..snap.venues.num_cities() {
            let city = CityId(l as u32);
            let sum: f64 = snap.venues.row(city).map(|(_, c)| c).sum();
            assert_eq!(sum, snap.venues.city_total(city));
        }
        // Venue noise sums to one (it is T_R, a distribution).
        let total: f64 = snap.venue_probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let snap = trained_snapshot(100, 43);
        let decoded = PosteriorSnapshot::decode(snap.try_encode().unwrap()).unwrap();
        assert_eq!(snap, decoded);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let snap = trained_snapshot(20, 47);
        let mut raw = snap.try_encode().unwrap().to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::BadMagic(_)
        ));
        let mut raw = snap.try_encode().unwrap().to_vec();
        raw[4] = 0xFE;
        assert!(matches!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::UnsupportedVersion(_)
        ));
    }

    /// A v2 artifact — the pre-refresh format, byte-identical to a v4
    /// base minus the trailing delta record section — must still thaw.
    /// Synthesised from a v4 encode by rewriting the version and dropping
    /// the empty record count, which is exactly what a v2 writer
    /// produced.
    #[test]
    fn v2_snapshot_still_decodes() {
        let snap = trained_snapshot(40, 48);
        let v4 = snap.encode_with_deltas_v4(&[]).unwrap();
        let mut v2 = v4.to_vec();
        v2[4..6].copy_from_slice(&2u16.to_le_bytes());
        v2.truncate(v2.len() - 4);
        let decoded = PosteriorSnapshot::decode(Bytes::from(v2)).unwrap();
        assert_eq!(snap, decoded, "v2 payload must thaw identically");
    }

    /// A v3 artifact — un-checksummed delta records — must still thaw,
    /// records included. Synthesised from the v4 base payload with the
    /// version rewritten and the record section re-framed the way a v3
    /// writer laid it out: `u32` count, then per record a `u64` length
    /// prefix and the bare payload (no CRC).
    #[test]
    fn v3_snapshot_with_records_still_decodes() {
        let base = trained_snapshot(25, 54);
        let mut delta = SnapshotDelta::new(base.num_users() as u32);
        delta.push_user(UserPosterior {
            candidates: vec![CityId(2), CityId(7)],
            gammas: vec![0.3, 0.1],
            mean_counts: vec![2.0, 1.0],
            mean_total: 3.0,
            gamma_total: 0.4,
            home: CityId(7),
        });
        delta.add_venue_weights(&[(CityId(2), VenueId(1), 1.0)]);

        let mut v3 = base.encode_payload().unwrap();
        let payload = delta.encode_record_payload().unwrap();
        v3.put_u32_le(1);
        v3.put_u64_le(payload.len() as u64);
        v3.extend_from_slice(payload.as_slice());
        let mut raw = v3.freeze().to_vec();
        raw[4..6].copy_from_slice(&3u16.to_le_bytes());

        let thawed = PosteriorSnapshot::decode(Bytes::from(raw.clone())).unwrap();
        let mut applied = base.clone();
        applied.apply_delta(&delta).unwrap();
        assert_eq!(thawed, applied, "v3 records must replay identically");

        // The v3 path still catches a record that lies about its length:
        // inflate the prefix and pad so it under-consumes.
        let prefix_at = raw.len() - payload.len() - 8;
        raw[prefix_at..prefix_at + 8].copy_from_slice(&(payload.len() as u64 + 8).to_le_bytes());
        raw.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::Corrupt("delta record longer than its payload")
        );
    }

    /// Future versions stay rejected with the typed error.
    #[test]
    fn v6_snapshot_rejected() {
        let snap = trained_snapshot(15, 49);
        let mut raw = snap.try_encode().unwrap().to_vec();
        raw[4..6].copy_from_slice(&6u16.to_le_bytes());
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(raw)).unwrap_err(),
            SnapshotError::UnsupportedVersion(6)
        );
    }

    /// v3 artifacts with delta records thaw to the refreshed posterior,
    /// and structurally invalid records fail with typed errors — home
    /// outside candidates, negative venue weights, and record
    /// length-prefix mismatches all caught before the state mutates.
    #[test]
    fn delta_records_round_trip_and_validate() {
        let base = trained_snapshot(30, 50);
        let mut delta = SnapshotDelta::new(base.num_users() as u32);
        delta.push_user(UserPosterior {
            candidates: vec![CityId(1), CityId(5)],
            gammas: vec![0.2, 0.2],
            mean_counts: vec![3.0, 1.0],
            mean_total: 4.0,
            gamma_total: 0.4,
            home: CityId(1),
        });
        delta.add_venue_weights(&[(CityId(1), VenueId(0), 1.5), (CityId(5), VenueId(2), 0.5)]);

        let artifact = base.encode_with_deltas(std::slice::from_ref(&delta)).unwrap();
        let thawed = PosteriorSnapshot::decode(artifact).unwrap();
        assert_eq!(thawed.num_users(), base.num_users() + 1);
        let added = thawed.users.user(UserId(base.num_users() as u32));
        assert_eq!(added.home, CityId(1));
        assert_eq!(added.mean_counts, &[3.0, 1.0]);
        assert_eq!(
            thawed.venue_count(CityId(1), VenueId(0)),
            base.venue_count(CityId(1), VenueId(0)) + 1.5
        );
        assert_eq!(thawed.venues.city_total(CityId(5)), base.venues.city_total(CityId(5)) + 0.5);

        // Same delta applied in memory matches the decoded artifact.
        let mut applied = base.clone();
        applied.apply_delta(&delta).unwrap();
        assert_eq!(applied, thawed);

        // Home outside candidates: typed, pre-mutation.
        let mut bad = SnapshotDelta::new(base.num_users() as u32);
        bad.push_user(UserPosterior {
            candidates: vec![CityId(2)],
            gammas: vec![0.2],
            mean_counts: vec![1.0],
            mean_total: 1.0,
            gamma_total: 0.2,
            home: CityId(3),
        });
        let mut target = base.clone();
        assert_eq!(
            target.apply_delta(&bad).unwrap_err(),
            SnapshotError::Corrupt("delta home city is not a candidate")
        );
        assert_eq!(target, base, "failed apply must not mutate");

        // Negative venue weight: rejected wherever it arrives from.
        let mut negative = SnapshotDelta::new(base.num_users() as u32);
        negative.add_venue_weights(&[(CityId(0), VenueId(0), -1.0)]);
        assert_eq!(
            target.apply_delta(&negative).unwrap_err(),
            SnapshotError::Corrupt("delta venue weight not finite-nonnegative")
        );
        let encoded = base.encode_with_deltas(std::slice::from_ref(&negative)).unwrap();
        assert_eq!(
            PosteriorSnapshot::decode(encoded).unwrap_err(),
            SnapshotError::Corrupt("delta venue weight not finite-nonnegative")
        );

        // A record that lies about its length is rejected: the stored CRC
        // covers the true payload, so the inflated slice fails the
        // checksum before a single slab is parsed. Poked through the v4
        // framing, where the record CRC is the only integrity layer —
        // the v5 path would trip its section checksum first.
        let mut lying = base.encode_with_deltas_v4(std::slice::from_ref(&delta)).unwrap().to_vec();
        let prefix_at = lying.len() - (delta.record_len() as usize) - 4 - 8;
        lying[prefix_at..prefix_at + 8].copy_from_slice(&(delta.record_len() + 8).to_le_bytes());
        // Extend so the inflated length is available, making the record
        // under-consume instead of truncate.
        lying.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(lying)).unwrap_err(),
            SnapshotError::Corrupt("delta record checksum mismatch")
        );

        // Any bit flip inside the record payload trips the CRC too.
        let mut flipped =
            base.encode_with_deltas_v4(std::slice::from_ref(&delta)).unwrap().to_vec();
        let payload_at = flipped.len() - (delta.record_len() as usize);
        flipped[payload_at + 5] ^= 0x10;
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(flipped)).unwrap_err(),
            SnapshotError::Corrupt("delta record checksum mismatch")
        );
    }

    /// Bytes past the end of a well-formed artifact mean a stale
    /// in-place overwrite or mangled concatenation — rejected, not
    /// silently ignored, on both the v4 and v2 read paths.
    #[test]
    fn trailing_bytes_are_rejected() {
        let snap = trained_snapshot(10, 52);
        let mut v4 = snap.try_encode().unwrap().to_vec();
        v4.push(0);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(v4)).unwrap_err(),
            SnapshotError::Corrupt("trailing bytes after snapshot")
        );
        let mut legacy = snap.encode_with_deltas_v4(&[]).unwrap().to_vec();
        legacy.push(0);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(legacy.clone())).unwrap_err(),
            SnapshotError::Corrupt("trailing bytes after snapshot")
        );
        let mut v2 = legacy;
        v2.pop();
        v2[4..6].copy_from_slice(&2u16.to_le_bytes());
        v2.truncate(v2.len() - 4);
        v2.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(v2)).unwrap_err(),
            SnapshotError::Corrupt("trailing bytes after snapshot")
        );
    }

    /// Delta sequence gaps are rejected at merge and apply time.
    #[test]
    fn delta_sequencing_is_enforced() {
        let base = trained_snapshot(20, 51);
        let wrong_base = SnapshotDelta::new(base.num_users() as u32 + 7);
        let mut with_user = wrong_base.clone();
        with_user.push_user(UserPosterior {
            candidates: vec![CityId(0)],
            gammas: vec![0.2],
            mean_counts: vec![0.0],
            mean_total: 0.0,
            gamma_total: 0.2,
            home: CityId(0),
        });
        let mut target = base.clone();
        assert_eq!(
            target.apply_delta(&with_user).unwrap_err(),
            SnapshotError::Corrupt("delta base user count mismatch")
        );
        let mut first = SnapshotDelta::new(base.num_users() as u32);
        assert_eq!(
            first.merge(&with_user).unwrap_err(),
            SnapshotError::Corrupt("delta sequence gap: base user count mismatch")
        );
    }

    /// A stored v1 artifact prefix (magic "MLPS" + version 1, as every v1
    /// snapshot began) must fail with the typed version error — not panic,
    /// and never decode as garbage v2 slabs.
    #[test]
    fn v1_snapshot_prefix_fails_with_unsupported_version() {
        // First 6 bytes of any v1 artifact: 4D4C5053 LE + 0001 LE.
        let mut v1 = vec![0x53, 0x50, 0x4C, 0x4D, 0x01, 0x00];
        // Arbitrary v1 payload tail — must never be interpreted.
        v1.extend_from_slice(&[0x02, 0x01, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF]);
        assert_eq!(
            PosteriorSnapshot::decode(Bytes::from(v1)).unwrap_err(),
            SnapshotError::UnsupportedVersion(1)
        );
    }

    #[test]
    fn truncation_fails_loudly_at_every_cut() {
        let snap = trained_snapshot(15, 53);
        let bytes = snap.try_encode().unwrap();
        for cut in [0usize, 3, 8, 40, bytes.len() / 3, bytes.len() - 1] {
            let err = PosteriorSnapshot::decode(bytes.slice(..cut)).unwrap_err();
            assert_eq!(err, SnapshotError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The CRC-32/ISO-HDLC check value, e.g. RFC 3720 appendix B.4.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn v5_sections_are_aligned_contiguous_and_checksummed() {
        let snap = trained_snapshot(20, 56);
        let raw = snap.try_encode().unwrap();
        let info = inspect_artifact(raw.as_slice()).unwrap();
        assert_eq!(info.version, VERSION);
        assert_eq!(info.num_users as usize, snap.num_users());
        assert_eq!(info.delta_records, 0);
        assert_eq!(info.total_bytes as usize, raw.len());
        assert_eq!(info.sections.len(), V5_NUM_SECTIONS);
        let mut cursor = V5_DATA_START as u64;
        for (s, name) in info.sections.iter().zip(V5_SECTION_NAMES) {
            assert_eq!(s.name, name);
            assert_eq!(s.offset % V5_ALIGN, 0, "{name} misaligned");
            assert_eq!(s.offset, cursor, "{name} not contiguous");
            let body = &raw.as_slice()[s.offset as usize..(s.offset + s.len) as usize];
            assert_eq!(crc32(body), s.crc, "{name} checksum");
            cursor = v5_align(s.offset + s.len);
        }
        let last = info.sections.last().unwrap();
        assert_eq!((last.offset + last.len) as usize, raw.len(), "deltas end at file end");
    }

    #[test]
    fn mapped_open_is_zero_copy_and_identical() {
        let dir = std::env::temp_dir().join(format!("mlp_snap_map_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = trained_snapshot(30, 57);

        let v5_path = dir.join("model.mlps");
        std::fs::write(&v5_path, snap.try_encode().unwrap()).unwrap();
        let map = Arc::new(mmap_lite::Mmap::open(&v5_path).unwrap());
        let mapped = PosteriorSnapshot::open_mapped(&map).unwrap();
        assert_eq!(mapped, snap, "mapped thaw must be value-identical");
        assert_eq!(mapped.is_zero_copy(), map.is_mapped(), "v5 slabs borrow the map");
        assert_eq!(
            mapped.try_encode().unwrap().as_slice(),
            snap.try_encode().unwrap().as_slice(),
            "re-encode from mapped slabs is byte-identical"
        );

        // A legacy artifact routes through the copying decode unchanged.
        let v4_path = dir.join("model_v4.mlps");
        std::fs::write(&v4_path, snap.encode_with_deltas_v4(&[]).unwrap()).unwrap();
        let legacy_map = Arc::new(mmap_lite::Mmap::open(&v4_path).unwrap());
        let legacy = PosteriorSnapshot::open_mapped(&legacy_map).unwrap();
        assert_eq!(legacy, snap);
        assert!(!legacy.is_zero_copy(), "legacy open owns its slabs");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn v5_delta_patching_matches_a_fresh_encode() {
        let base = trained_snapshot(25, 58);
        let mut delta = SnapshotDelta::new(base.num_users() as u32);
        delta.push_user(UserPosterior {
            candidates: vec![CityId(0), CityId(4)],
            gammas: vec![0.3, 0.1],
            mean_counts: vec![2.0, 1.0],
            mean_total: 3.0,
            gamma_total: 0.4,
            home: CityId(4),
        });
        delta.add_venue_weights(&[(CityId(0), VenueId(3), 2.0)]);

        let fresh = base.encode_with_deltas(std::slice::from_ref(&delta)).unwrap();
        let patched = v5_set_delta_section(
            base.try_encode().unwrap().as_slice(),
            std::slice::from_ref(&delta),
        )
        .unwrap();
        assert_eq!(fresh.as_slice(), patched.as_slice(), "patching == fresh encode");
        assert_eq!(inspect_artifact(patched.as_slice()).unwrap().delta_records, 1);

        let mut applied = base.clone();
        applied.apply_delta(&delta).unwrap();
        assert_eq!(PosteriorSnapshot::decode(patched).unwrap(), applied);
    }

    #[test]
    fn frozen_noise_matches_training_bit_for_bit() {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: 80, seed: 59, ..Default::default() })
                .generate();
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let probs: Vec<f64> =
            (0..gaz.num_venues()).map(|v| random.venue_prob(VenueId(v as u32))).collect();
        let frozen = RandomModels::from_frozen(random.follow_prob(), probs);
        assert_eq!(frozen.follow_prob().to_bits(), random.follow_prob().to_bits());
        for v in 0..gaz.num_venues() as u32 {
            assert_eq!(
                frozen.venue_prob(VenueId(v)).to_bits(),
                random.venue_prob(VenueId(v)).to_bits(),
                "venue {v}"
            );
        }
    }
}
