//! Learning the location-based following model from labeled data
//! (paper Sec. 4.1, Fig. 3(a)).
//!
//! "We first compute the distance between any pair of labeled users […] and
//! measure the probability of generating a following relationship at d miles
//! as the ratio of the number of pairs that have following relationships to
//! the total number of pairs in the d-th bucket", then fit `β·d^α` on the
//! log–log line. The paper obtains α = −0.55, β = 0.0045 on its crawl.
//!
//! This initial fit is what keeps the location-based likelihood *calibrated
//! against the random model* `F_R = S/N²`: both are estimated from the same
//! dataset, so the mixture selector μ compares meaningfully. The Gibbs-EM
//! M-step ([`crate::em`]) reuses the same construction with inferred
//! locations in place of labels.

use mlp_gazetteer::Gazetteer;
use mlp_geo::{fit_log_log_weighted, DistanceHistogram, PowerLaw};
use mlp_social::Dataset;

/// Bucket width, miles. Coarser than the paper's 1-mile buckets because a
/// synthetic dataset has ~10^5–10^9 pairs, not 2.5·10^10.
pub(crate) const BUCKET_MILES: f64 = 25.0;
/// Histogram range, miles.
pub(crate) const MAX_MILES: f64 = 3_200.0;
/// Sanity range for a fitted exponent.
pub(crate) const ALPHA_RANGE: std::ops::RangeInclusive<f64> = -3.0..=-0.05;

/// Builds the Fig. 3(a) histogram from per-city user counts and a stream of
/// edge distances, then fits the power law.
///
/// `city_counts[l]` is how many (relevant) users live at city `l`; pair
/// totals are aggregated per city pair, which turns the N² pair loop into a
/// |L|² loop. Returns `None` when there is too little signal for a stable
/// line (fewer than `min_edges` successes or fewer than 3 usable buckets).
pub(crate) fn fit_from_histogram(
    gaz: &Gazetteer,
    city_counts: &[u64],
    edge_distances: impl Iterator<Item = f64>,
    min_edges: u64,
) -> Option<PowerLaw> {
    let mut hist = DistanceHistogram::new(BUCKET_MILES, MAX_MILES);
    for a in 0..gaz.num_cities() {
        if city_counts[a] == 0 {
            continue;
        }
        for b in 0..gaz.num_cities() {
            if city_counts[b] == 0 {
                continue;
            }
            let pairs = if a == b {
                city_counts[a] * (city_counts[a].saturating_sub(1))
            } else {
                city_counts[a] * city_counts[b]
            };
            if pairs > 0 {
                hist.record_bulk(gaz.distances().get(a, b), pairs, 0);
            }
        }
    }
    let mut successes = 0u64;
    for d in edge_distances {
        hist.record_bulk(d, 0, 1);
        successes += 1;
    }
    if successes < min_edges {
        return None;
    }
    let curve: Vec<(f64, f64, f64)> =
        hist.weighted_curve(10).into_iter().filter(|&(_, p, _)| p <= 1.0).collect();
    if curve.len() < 3 {
        return None;
    }
    let fit = fit_log_log_weighted(&curve)?;
    if !ALPHA_RANGE.contains(&fit.alpha) || !(fit.beta > 0.0) || !fit.beta.is_finite() {
        return None;
    }
    Some(fit)
}

/// The paper's initial learning step: fit `(α, β)` from the labeled users'
/// registered locations and the edges between them.
///
/// Returns `None` when the labeled subgraph is too sparse; callers should
/// then keep their configured prior (e.g. [`PowerLaw::PAPER_TWITTER`]).
pub fn fit_power_law_from_labels(gaz: &Gazetteer, dataset: &Dataset) -> Option<PowerLaw> {
    let mut city_counts = vec![0u64; gaz.num_cities()];
    for r in dataset.registered.iter().flatten() {
        city_counts[r.index()] += 1;
    }
    let edge_distances = dataset.edges.iter().filter_map(|e| {
        let a = dataset.registered[e.follower.index()]?;
        let b = dataset.registered[e.friend.index()]?;
        Some(gaz.distance(a, b))
    });
    fit_from_histogram(gaz, &city_counts, edge_distances, 50)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{Generator, GeneratorConfig};

    #[test]
    fn labeled_fit_produces_decaying_law() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 1_000, seed: 3, ..Default::default() },
        )
        .generate();
        let fit = fit_power_law_from_labels(&gaz, &data.dataset).expect("enough signal");
        assert!(fit.alpha < -0.1, "alpha {} should decay", fit.alpha);
        assert!(fit.beta > 0.0);
        // The fitted law must be calibrated to this dataset: the probability
        // at short range should dominate the uniform edge density S/N².
        let n = data.dataset.num_users() as f64;
        let density = data.dataset.num_edges() as f64 / (n * n);
        assert!(
            fit.eval(20.0) > 3.0 * density,
            "short-range p {} should exceed edge density {}",
            fit.eval(20.0),
            density
        );
    }

    #[test]
    fn unlabeled_dataset_yields_none() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig {
                num_users: 300,
                seed: 5,
                registered_fraction: 0.0,
                ..Default::default()
            },
        )
        .generate();
        assert!(fit_power_law_from_labels(&gaz, &data.dataset).is_none());
    }

    #[test]
    fn tiny_dataset_yields_none() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 5, seed: 7, mean_friends: 2.0, ..Default::default() },
        )
        .generate();
        assert!(fit_power_law_from_labels(&gaz, &data.dataset).is_none());
    }
}
