//! Approximate parallel Gibbs sweep (AD-LDA style), as a thin driver over
//! [`crate::kernel`].
//!
//! The paper's dataset has ~160K users and millions of relationships; a
//! sequential sweep is the bottleneck at that scale. Following the standard
//! approximate-distributed-LDA recipe, a parallel sweep:
//!
//! 1. partitions relationships into `threads` contiguous chunks;
//! 2. resamples every chunk concurrently against the sweep-start counts
//!    (each relationship still excludes its *own* current contribution —
//!    [`EdgeExcluded`]/[`MentionExcluded`] apply that arithmetically — but
//!    sees stale counts for relationships resampled in other chunks),
//!    while accumulating its count changes into flat per-thread *delta
//!    slabs* indexed by the state's stable slot space;
//! 3. writes the new assignments back and merges each thread's deltas with
//!    one index-wise vectorizable add per slab — no per-relationship
//!    hash/search work on the merge path, and no count rebuild.
//!
//! Two things are deliberately *absent*:
//!
//! * **No state clone.** `std::thread::scope` lets every worker share a
//!   plain `&SamplerState`: the counts are frozen for the duration of the
//!   fork-join because nothing writes until all chunks are joined. The seed
//!   implementation cloned the full `SamplerState` (assignments and
//!   accumulators included) every sweep.
//! * **No full count rebuild.** Integer count deltas commute, so applying
//!   the per-thread slabs in any order lands on exactly the counts the
//!   sequential remove/add bookkeeping would produce; `check_consistency`
//!   in the tests pins the equivalence.
//!
//! The stale reads make this an approximation of the exact chain, but the
//! stationary behaviour is empirically indistinguishable at our scales —
//! the `parallel_matches_sequential_quality` test and the ablation bench
//! quantify it. With `threads == 1` the driver falls back to the exact
//! sequential sweep, so single-threaded results are byte-identical to
//! [`GibbsSampler::sweep`].

use crate::kernel::{self, EdgeExcluded, Endpoint, MentionExcluded, SamplerView};
use crate::sampler::{GibbsSampler, SweepChanges};
use crate::state::SamplerState;
use mlp_sampling::{sample_categorical, Pcg64, SplitMix64};
use mlp_social::Dataset;
use std::ops::Range;

/// Flat ϕ count deltas accumulated by one worker: per-slot changes plus
/// per-user total changes, merged into the state by index.
///
/// The slabs are full-arena-sized per worker. That is the right trade:
/// the slot spaces grow with users × candidates and cities × support —
/// always far smaller than the relationship count a sweep walks anyway —
/// so zeroing is one memset and the merge is a branch-free streaming add,
/// where the seed's merge paid a hash lookup per relationship *endpoint*.
struct UserDelta {
    slots: Vec<i32>,
    totals: Vec<i32>,
}

impl UserDelta {
    fn new(state: &SamplerState, num_users: usize) -> Self {
        Self { slots: vec![0; state.num_user_slots()], totals: vec![0; num_users] }
    }
}

/// One chunk's newly sampled edge assignments plus its count deltas.
struct EdgeOut {
    start: usize,
    mu: Vec<bool>,
    x: Vec<u16>,
    y: Vec<u16>,
    delta: UserDelta,
    changed: usize,
}

/// One chunk's newly sampled mention assignments plus its count deltas
/// (mentions touch both ϕ and φ).
struct MentionOut {
    start: usize,
    nu: Vec<bool>,
    z: Vec<u16>,
    delta: UserDelta,
    venue_slots: Vec<i32>,
    city_totals: Vec<i32>,
    changed: usize,
}

/// Runs one approximate parallel sweep; returns change counts.
///
/// `sweep_index` feeds the per-chunk RNG streams so repeated sweeps do not
/// reuse randomness. Falls back to the exact sequential sweep when
/// `threads == 1`.
pub fn parallel_sweep(sampler: &mut GibbsSampler<'_>, sweep_index: u64) -> SweepChanges {
    let threads = sampler.config().threads;
    if threads <= 1 {
        return sampler.sweep();
    }
    let view = sampler.view();
    let config = sampler.config();
    let dataset = sampler.dataset();
    let seed = config.seed;

    let num_edges = if config.variant.uses_following() { dataset.num_edges() } else { 0 };
    let num_mentions = if config.variant.uses_tweeting() { dataset.num_mentions() } else { 0 };

    let edge_chunks = chunk_ranges(num_edges, threads);
    let mention_chunks = chunk_ranges(num_mentions, threads);

    let (edge_outs, mention_outs) = {
        // Shared read-only borrow: frozen until every worker is joined.
        let state = &sampler.state;
        std::thread::scope(|scope| {
            let edge_handles: Vec<_> = edge_chunks
                .into_iter()
                .enumerate()
                .map(|(t, range)| {
                    // Sweep index in the high half, chunk index in the low:
                    // no (sweep, chunk) pair can alias another even at
                    // absurd thread counts.
                    let rng_seed = SplitMix64::derive(
                        seed,
                        0xE000_0000_0000_0000 ^ (sweep_index << 32) ^ t as u64,
                    );
                    scope.spawn(move || resample_edge_chunk(view, state, dataset, range, rng_seed))
                })
                .collect();
            let mention_handles: Vec<_> = mention_chunks
                .into_iter()
                .enumerate()
                .map(|(t, range)| {
                    let rng_seed = SplitMix64::derive(
                        seed,
                        0x4000_0000_0000_0000 ^ (sweep_index << 32) ^ t as u64,
                    );
                    scope.spawn(move || {
                        resample_mention_chunk(view, state, dataset, range, rng_seed)
                    })
                })
                .collect();
            let edge_outs: Vec<EdgeOut> =
                edge_handles.into_iter().map(|h| h.join().expect("edge worker")).collect();
            let mention_outs: Vec<MentionOut> =
                mention_handles.into_iter().map(|h| h.join().expect("mention worker")).collect();
            (edge_outs, mention_outs)
        })
    };

    merge(sampler, edge_outs, mention_outs)
}

/// Resamples one contiguous range of edges against frozen counts,
/// accumulating ϕ deltas into a flat slab.
fn resample_edge_chunk(
    view: SamplerView<'_>,
    state: &SamplerState,
    dataset: &Dataset,
    range: Range<usize>,
    rng_seed: u64,
) -> EdgeOut {
    let mut rng = Pcg64::new(rng_seed);
    let mut out = EdgeOut {
        start: range.start,
        mu: Vec::with_capacity(range.len()),
        x: Vec::with_capacity(range.len()),
        y: Vec::with_capacity(range.len()),
        delta: UserDelta::new(state, dataset.num_users()),
        changed: 0,
    };
    let count_noisy = view.config.count_noisy_assignments;
    // One weight buffer per chunk, reused across its whole range.
    let mut buf = Vec::new();
    for s in range {
        let e = dataset.edges[s];
        let (i, j) = (e.follower, e.friend);
        let ci = view.candidacy.candidates(i);
        let cj = view.candidacy.candidates(j);
        let (old_mu, old_x, old_y) = (state.mu[s], state.x[s] as usize, state.y[s] as usize);
        let counted = !old_mu || count_noisy;
        let counts = EdgeExcluded::new(state, counted, i, old_x, j, old_y);

        let x_city = ci[old_x];
        let y_city = cj[old_y];

        // --- μ_s | rest (Eq. 5) ---
        let (w_based, w_noisy) = kernel::edge_selector_weights(
            &view,
            &counts,
            Endpoint { user: i, pos: old_x, city: x_city },
            Endpoint { user: j, pos: old_y, city: y_city },
        );
        let new_mu = rng.next_f64() * (w_based + w_noisy) < w_noisy;

        // --- x_s | rest (Eq. 7) ---
        kernel::edge_position_weights(&view, &counts, i, (!new_mu).then_some(y_city), &mut buf);
        let new_x = sample_categorical(&mut rng, &buf).expect("x weights are positive (γ > 0)");
        let x_city = ci[new_x];

        // --- y_s | rest (Eq. 8) ---
        kernel::edge_position_weights(&view, &counts, j, (!new_mu).then_some(x_city), &mut buf);
        let new_y = sample_categorical(&mut rng, &buf).expect("y weights are positive (γ > 0)");

        if counted {
            out.delta.slots[state.user_slot(i, old_x)] -= 1;
            out.delta.slots[state.user_slot(j, old_y)] -= 1;
            out.delta.totals[i.index()] -= 1;
            out.delta.totals[j.index()] -= 1;
        }
        if !new_mu || count_noisy {
            out.delta.slots[state.user_slot(i, new_x)] += 1;
            out.delta.slots[state.user_slot(j, new_y)] += 1;
            out.delta.totals[i.index()] += 1;
            out.delta.totals[j.index()] += 1;
        }
        out.changed += (new_mu != old_mu || new_x != old_x || new_y != old_y) as usize;

        out.mu.push(new_mu);
        out.x.push(new_x as u16);
        out.y.push(new_y as u16);
    }
    out
}

/// Resamples one contiguous range of mentions against frozen counts,
/// accumulating ϕ and φ deltas into flat slabs.
fn resample_mention_chunk(
    view: SamplerView<'_>,
    state: &SamplerState,
    dataset: &Dataset,
    range: Range<usize>,
    rng_seed: u64,
) -> MentionOut {
    let mut rng = Pcg64::new(rng_seed);
    let mut out = MentionOut {
        start: range.start,
        nu: Vec::with_capacity(range.len()),
        z: Vec::with_capacity(range.len()),
        delta: UserDelta::new(state, dataset.num_users()),
        venue_slots: vec![0; state.num_venue_slots()],
        city_totals: vec![0; view.gaz.num_cities()],
        changed: 0,
    };
    let count_noisy = view.config.count_noisy_assignments;
    let mut buf = Vec::new();
    for k in range {
        let m = dataset.mentions[k];
        let (i, v) = (m.user, m.venue);
        let ci = view.candidacy.candidates(i);
        let (old_nu, old_z) = (state.nu[k], state.z[k] as usize);
        let counted = !old_nu || count_noisy;
        let old_city = ci[old_z];
        let counts = MentionExcluded::new(state, counted, !old_nu, i, old_z, old_city, v);

        // --- ν_k | rest (Eq. 6) ---
        let (w_based, w_noisy) =
            kernel::mention_selector_weights(&view, &counts, i, old_z, old_city, v);
        let new_nu = rng.next_f64() * (w_based + w_noisy) < w_noisy;

        // --- z_k | rest (Eq. 9) ---
        kernel::mention_position_weights(&view, &counts, i, (!new_nu).then_some(v), &mut buf);
        let new_z = sample_categorical(&mut rng, &buf).expect("z weights are positive (γ > 0)");

        if counted {
            out.delta.slots[state.user_slot(i, old_z)] -= 1;
            out.delta.totals[i.index()] -= 1;
        }
        if !new_nu || count_noisy {
            out.delta.slots[state.user_slot(i, new_z)] += 1;
            out.delta.totals[i.index()] += 1;
        }
        if !old_nu {
            out.venue_slots[state.venue_slot(old_city, v)] -= 1;
            out.city_totals[old_city.index()] -= 1;
        }
        if !new_nu {
            let new_city = ci[new_z];
            out.venue_slots[state.venue_slot(new_city, v)] += 1;
            out.city_totals[new_city.index()] += 1;
        }
        out.changed += (new_nu != old_nu || new_z != old_z) as usize;

        out.nu.push(new_nu);
        out.z.push(new_z as u16);
    }
    out
}

/// Writes the chunk outputs back and merges every thread's flat count
/// deltas by index (one add per slab element — no per-relationship
/// hash/search work, no rebuild).
fn merge(
    sampler: &mut GibbsSampler<'_>,
    edge_outs: Vec<EdgeOut>,
    mention_outs: Vec<MentionOut>,
) -> SweepChanges {
    let state = &mut sampler.state;
    let mut changes = SweepChanges::default();

    for out in edge_outs {
        state.mu[out.start..out.start + out.mu.len()].copy_from_slice(&out.mu);
        state.x[out.start..out.start + out.x.len()].copy_from_slice(&out.x);
        state.y[out.start..out.start + out.y.len()].copy_from_slice(&out.y);
        state.apply_user_delta(&out.delta.slots, &out.delta.totals);
        changes.edges += out.changed;
    }

    for out in mention_outs {
        state.nu[out.start..out.start + out.nu.len()].copy_from_slice(&out.nu);
        state.z[out.start..out.start + out.z.len()].copy_from_slice(&out.z);
        state.apply_user_delta(&out.delta.slots, &out.delta.totals);
        state.apply_venue_delta(&out.venue_slots, &out.city_totals);
        changes.mentions += out.changed;
    }

    changes
}

/// Splits `0..n` into `k` contiguous near-equal ranges (empty ranges for
/// `n < k` workers are fine — those workers no-op). Shared with the
/// fold-in batch scheduler in [`crate::infer`].
pub(crate) fn chunk_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    let k = k.max(1);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for t in 0..k {
        let len = base + (t < rem) as usize;
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidacy::Candidacy;
    use crate::config::MlpConfig;
    use crate::random_models::RandomModels;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    #[test]
    fn chunks_cover_everything() {
        for (n, k) in [(10, 3), (0, 4), (5, 8), (100, 1)] {
            let ranges = chunk_ranges(n, k);
            assert_eq!(ranges.len(), k.max(1));
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n, "n={n} k={k}");
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect);
                expect = r.end;
            }
        }
    }

    #[test]
    fn parallel_sweep_keeps_counts_exact() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 200, seed: 51, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { threads: 4, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for sweep in 0..3 {
            parallel_sweep(&mut sampler, sweep);
            sampler
                .state
                .check_consistency(&data.dataset, &cand, false, true, true)
                .expect("flat delta merge must equal a rebuild");
        }
    }

    #[test]
    fn incremental_merge_exact_with_count_noisy() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 150, seed: 59, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { threads: 3, count_noisy_assignments: true, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for sweep in 0..3 {
            parallel_sweep(&mut sampler, sweep);
            sampler
                .state
                .check_consistency(&data.dataset, &cand, true, true, true)
                .expect("count-noisy delta merge must also be exact");
        }
    }

    #[test]
    fn parallel_matches_sequential_quality() {
        // Both samplers should recover labeled users' registered cities at
        // comparable rates — the approximation must not break inference.
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 400, seed: 53, ..Default::default() },
        )
        .generate();
        let accuracy = |threads: usize| {
            let config = MlpConfig { threads, ..Default::default() };
            let adj = Adjacency::build(&data.dataset);
            let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
            let random = RandomModels::learn(&data.dataset, gaz.num_venues());
            let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
            for sweep in 0..10 {
                parallel_sweep(&mut sampler, sweep);
                if sweep >= 5 {
                    sampler.state.accumulate();
                }
            }
            let mut hits = 0usize;
            for u in 0..data.dataset.num_users() {
                let user = mlp_social::UserId(u as u32);
                if let Some(home) = data.dataset.registered[u] {
                    if sampler.estimate_theta(user)[0].0 == home {
                        hits += 1;
                    }
                }
            }
            hits as f64 / data.dataset.num_labeled() as f64
        };
        let seq = accuracy(1);
        let par = accuracy(4);
        assert!(seq > 0.8, "sequential accuracy {seq}");
        assert!(par > seq - 0.1, "parallel degraded too far: {par} vs {seq}");
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: 50, seed: 57, ..Default::default() })
                .generate();
        let config = MlpConfig { threads: 1, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        let changes = parallel_sweep(&mut sampler, 0);
        assert!(changes.edges + changes.mentions > 0);
    }

    /// With `threads == 1` the parallel entry point must be *byte-identical*
    /// to the sequential sweep: same assignments, same RNG stream.
    #[test]
    fn single_thread_is_byte_identical_to_sequential() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 120, seed: 61, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { threads: 1, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());

        let mut seq = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        let mut par = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for sweep in 0..4 {
            let a = seq.sweep();
            let b = parallel_sweep(&mut par, sweep);
            assert_eq!(a, b, "sweep {sweep} change counts differ");
        }
        assert_eq!(seq.state.mu, par.state.mu);
        assert_eq!(seq.state.x, par.state.x);
        assert_eq!(seq.state.y, par.state.y);
        assert_eq!(seq.state.nu, par.state.nu);
        assert_eq!(seq.state.z, par.state.z);
    }

    /// Multi-threaded sweeps must be reproducible *for a given thread
    /// count*: the chunk RNG streams depend only on (sweep, chunk), and
    /// integer delta merges commute, so repeating a run can differ only
    /// if the flat-slab merge were racy or order-sensitive. (Different
    /// thread counts legitimately differ — chunk boundaries move.)
    #[test]
    fn thread_count_does_not_change_chunked_results() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 150, seed: 67, ..Default::default() },
        )
        .generate();
        let run = |threads: usize| {
            let config = MlpConfig { threads, ..Default::default() };
            let adj = Adjacency::build(&data.dataset);
            let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
            let random = RandomModels::learn(&data.dataset, gaz.num_venues());
            let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
            for sweep in 0..3 {
                parallel_sweep(&mut sampler, sweep);
            }
            (sampler.state.mu.clone(), sampler.state.x.clone(), sampler.state.z.clone())
        };
        // Chunk boundaries shift with the thread count, so streams differ
        // between 2 and 4 threads — but each must be self-consistent and
        // reproducible.
        assert_eq!(run(2), run(2));
        assert_eq!(run(4), run(4));
    }
}
