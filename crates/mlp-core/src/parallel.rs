//! Approximate parallel Gibbs sweep (AD-LDA style).
//!
//! The paper's dataset has ~160K users and millions of relationships; a
//! sequential sweep is the bottleneck at that scale. Following the standard
//! approximate-distributed-LDA recipe, a parallel sweep:
//!
//! 1. freezes the current count state as a read-only snapshot;
//! 2. partitions relationships into `threads` contiguous chunks, each
//!    resampled against the snapshot (each relationship still excludes its
//!    *own* current contribution, but sees slightly stale counts for
//!    relationships resampled concurrently in other chunks);
//! 3. rebuilds the exact counts from the merged new assignments.
//!
//! The stale reads make this an approximation of the exact chain, but the
//! stationary behaviour is empirically indistinguishable at our scales —
//! the `parallel_matches_sequential_quality` test and the ablation bench
//! quantify it.

use crate::sampler::{GibbsSampler, SweepChanges};
use mlp_sampling::{sample_categorical, Pcg64, SplitMix64};
use mlp_social::UserId;

/// One chunk's newly sampled edge assignments.
struct EdgeOut {
    start: usize,
    mu: Vec<bool>,
    x: Vec<u16>,
    y: Vec<u16>,
}

/// One chunk's newly sampled mention assignments.
struct MentionOut {
    start: usize,
    nu: Vec<bool>,
    z: Vec<u16>,
}

/// Runs one approximate parallel sweep; returns change counts.
///
/// `sweep_index` feeds the per-chunk RNG streams so repeated sweeps do not
/// reuse randomness. Falls back to the exact sequential sweep when
/// `threads == 1`.
pub fn parallel_sweep(sampler: &mut GibbsSampler<'_>, sweep_index: u64) -> SweepChanges {
    let threads = sampler.config().threads;
    if threads <= 1 {
        return sampler.sweep();
    }
    let snapshot = sampler.state.clone();
    let config = sampler.config();
    let gaz = sampler.gazetteer();
    let candidacy = sampler.candidacy();
    let dataset = sampler.dataset();
    let random = sampler.random_models();
    let power_law = sampler.power_law;
    let seed = config.seed;

    let num_edges = if config.variant.uses_following() { dataset.num_edges() } else { 0 };
    let num_mentions = if config.variant.uses_tweeting() { dataset.num_mentions() } else { 0 };

    let edge_chunks = chunk_ranges(num_edges, threads);
    let mention_chunks = chunk_ranges(num_mentions, threads);

    let (edge_outs, mention_outs) = crossbeam::thread::scope(|scope| {
        let snapshot = &snapshot;
        let mut edge_handles = Vec::new();
        for (t, range) in edge_chunks.iter().cloned().enumerate() {
            edge_handles.push(scope.spawn(move |_| {
                let mut rng = Pcg64::new(SplitMix64::derive(
                    seed,
                    0xE000_0000 ^ (sweep_index << 8) ^ t as u64,
                ));
                let mut out = EdgeOut {
                    start: range.start,
                    mu: Vec::with_capacity(range.len()),
                    x: Vec::with_capacity(range.len()),
                    y: Vec::with_capacity(range.len()),
                };
                let mut buf = Vec::new();
                for s in range {
                    let e = dataset.edges[s];
                    let (i, j) = (e.follower, e.friend);
                    let ci = candidacy.candidates(i);
                    let cj = candidacy.candidates(j);
                    let (old_mu, old_x, old_y) =
                        (snapshot.mu[s], snapshot.x[s] as usize, snapshot.y[s] as usize);
                    let counted = !old_mu || config.count_noisy_assignments;

                    // Exclude-current counts, computed arithmetically
                    // against the frozen snapshot.
                    let cnt = |u: UserId, c: usize, own: usize| -> f64 {
                        let base = snapshot.user_count(u, c);
                        (base - (counted && c == own) as u32) as f64
                    };
                    let tot = |u: UserId| -> f64 {
                        (snapshot.user_total(u) - counted as u32) as f64
                    };

                    let x_city0 = ci[old_x];
                    let y_city0 = cj[old_y];
                    let gi = candidacy.gammas(i);
                    let gj = candidacy.gammas(j);

                    let pi = (cnt(i, old_x, old_x) + gi[old_x])
                        / (tot(i) + candidacy.gamma_total(i));
                    let pj = (cnt(j, old_y, old_y) + gj[old_y])
                        / (tot(j) + candidacy.gamma_total(j));
                    let d = gaz.distance(x_city0, y_city0);
                    let w_based = (1.0 - config.rho_f) * pi * pj * power_law.eval(d);
                    let w_noisy = config.rho_f * random.follow_prob();
                    let new_mu = rng.next_f64() * (w_based + w_noisy) < w_noisy;

                    buf.clear();
                    for (c, &city) in ci.iter().enumerate() {
                        let mut w = cnt(i, c, old_x) + gi[c];
                        if !new_mu {
                            w *= power_law.kernel(gaz.distance(city, y_city0));
                        }
                        buf.push(w);
                    }
                    let new_x = sample_categorical(&mut rng, &buf).expect("positive") as u16;
                    let x_city = ci[new_x as usize];

                    buf.clear();
                    for (c, &city) in cj.iter().enumerate() {
                        let mut w = cnt(j, c, old_y) + gj[c];
                        if !new_mu {
                            w *= power_law.kernel(gaz.distance(x_city, city));
                        }
                        buf.push(w);
                    }
                    let new_y = sample_categorical(&mut rng, &buf).expect("positive") as u16;

                    out.mu.push(new_mu);
                    out.x.push(new_x);
                    out.y.push(new_y);
                }
                out
            }));
        }

        let mut mention_handles = Vec::new();
        for (t, range) in mention_chunks.iter().cloned().enumerate() {
            mention_handles.push(scope.spawn(move |_| {
                let mut rng = Pcg64::new(SplitMix64::derive(
                    seed,
                    0x4000_0000 ^ (sweep_index << 8) ^ t as u64,
                ));
                let mut out = MentionOut {
                    start: range.start,
                    nu: Vec::with_capacity(range.len()),
                    z: Vec::with_capacity(range.len()),
                };
                let mut buf = Vec::new();
                let v_total = gaz.num_venues() as f64;
                for k in range {
                    let m = dataset.mentions[k];
                    let (i, v) = (m.user, m.venue);
                    let ci = candidacy.candidates(i);
                    let (old_nu, old_z) = (snapshot.nu[k], snapshot.z[k] as usize);
                    let counted = !old_nu || config.count_noisy_assignments;
                    let old_city = ci[old_z];

                    let cnt = |c: usize| -> f64 {
                        let base = snapshot.user_count(i, c);
                        (base - (counted && c == old_z) as u32) as f64
                    };
                    let tot =
                        (snapshot.user_total(i) - counted as u32) as f64;
                    let venue_term = |l: mlp_gazetteer::CityId| -> f64 {
                        let mut num = snapshot.venue_count(l, v) as f64;
                        let mut den = snapshot.city_total(l) as f64;
                        if !old_nu && l == old_city {
                            num -= 1.0;
                            den -= 1.0;
                        }
                        (num + config.delta) / (den + config.delta * v_total)
                    };

                    let gi = candidacy.gammas(i);
                    let pz = (cnt(old_z) + gi[old_z]) / (tot + candidacy.gamma_total(i));
                    let w_based = (1.0 - config.rho_t) * pz * venue_term(old_city);
                    let w_noisy = config.rho_t * random.venue_prob(v);
                    let new_nu = rng.next_f64() * (w_based + w_noisy) < w_noisy;

                    buf.clear();
                    for (c, &city) in ci.iter().enumerate() {
                        let mut w = cnt(c) + gi[c];
                        if !new_nu {
                            w *= venue_term(city);
                        }
                        buf.push(w);
                    }
                    let new_z = sample_categorical(&mut rng, &buf).expect("positive") as u16;
                    out.nu.push(new_nu);
                    out.z.push(new_z);
                }
                out
            }));
        }

        let edge_outs: Vec<EdgeOut> =
            edge_handles.into_iter().map(|h| h.join().expect("edge worker")).collect();
        let mention_outs: Vec<MentionOut> =
            mention_handles.into_iter().map(|h| h.join().expect("mention worker")).collect();
        (edge_outs, mention_outs)
    })
    .expect("crossbeam scope");

    // Merge and count changes.
    let mut changes = SweepChanges::default();
    for out in edge_outs {
        for (off, ((mu, x), y)) in
            out.mu.iter().zip(&out.x).zip(&out.y).enumerate()
        {
            let s = out.start + off;
            if sampler.state.mu[s] != *mu || sampler.state.x[s] != *x || sampler.state.y[s] != *y
            {
                changes.edges += 1;
            }
            sampler.state.mu[s] = *mu;
            sampler.state.x[s] = *x;
            sampler.state.y[s] = *y;
        }
    }
    for out in mention_outs {
        for (off, (nu, z)) in out.nu.iter().zip(&out.z).enumerate() {
            let k = out.start + off;
            if sampler.state.nu[k] != *nu || sampler.state.z[k] != *z {
                changes.mentions += 1;
            }
            sampler.state.nu[k] = *nu;
            sampler.state.z[k] = *z;
        }
    }

    rebuild(sampler);
    changes
}

fn rebuild(sampler: &mut GibbsSampler<'_>) {
    let count_noisy = sampler.config().count_noisy_assignments;
    let uses_f = sampler.config().variant.uses_following();
    let uses_t = sampler.config().variant.uses_tweeting();
    // The getters hand back borrows tied to the sampler's *input* lifetime,
    // not to `sampler` itself, so mutating the state afterwards is fine.
    let dataset = sampler.dataset();
    let candidacy = sampler.candidacy();
    sampler.state.rebuild_counts(dataset, candidacy, count_noisy, uses_f, uses_t);
}

/// Splits `0..n` into `k` contiguous near-equal ranges (empty ranges for
/// `n < k` workers are fine — those workers no-op).
fn chunk_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let k = k.max(1);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for t in 0..k {
        let len = base + (t < rem) as usize;
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidacy::Candidacy;
    use crate::config::MlpConfig;
    use crate::random_models::RandomModels;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    #[test]
    fn chunks_cover_everything() {
        for (n, k) in [(10, 3), (0, 4), (5, 8), (100, 1)] {
            let ranges = chunk_ranges(n, k);
            assert_eq!(ranges.len(), k.max(1));
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n, "n={n} k={k}");
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect);
                expect = r.end;
            }
        }
    }

    #[test]
    fn parallel_sweep_keeps_counts_exact() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 200, seed: 51, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { threads: 4, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for sweep in 0..3 {
            parallel_sweep(&mut sampler, sweep);
            sampler
                .state
                .check_consistency(&data.dataset, &cand, false, true, true)
                .expect("post-merge rebuild must be exact");
        }
    }

    #[test]
    fn parallel_matches_sequential_quality() {
        // Both samplers should recover labeled users' registered cities at
        // comparable rates — the approximation must not break inference.
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 400, seed: 53, ..Default::default() },
        )
        .generate();
        let accuracy = |threads: usize| {
            let config = MlpConfig { threads, ..Default::default() };
            let adj = Adjacency::build(&data.dataset);
            let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
            let random = RandomModels::learn(&data.dataset, gaz.num_venues());
            let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
            for sweep in 0..10 {
                parallel_sweep(&mut sampler, sweep);
                if sweep >= 5 {
                    sampler.state.accumulate();
                }
            }
            let mut hits = 0usize;
            for u in 0..data.dataset.num_users() {
                let user = mlp_social::UserId(u as u32);
                if let Some(home) = data.dataset.registered[u] {
                    if sampler.estimate_theta(user)[0].0 == home {
                        hits += 1;
                    }
                }
            }
            hits as f64 / data.dataset.num_labeled() as f64
        };
        let seq = accuracy(1);
        let par = accuracy(4);
        assert!(seq > 0.8, "sequential accuracy {seq}");
        assert!(par > seq - 0.1, "parallel degraded too far: {par} vs {seq}");
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 50, seed: 57, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { threads: 1, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        let changes = parallel_sweep(&mut sampler, 0);
        assert!(changes.edges + changes.mentions > 0);
    }
}
