//! Approximate parallel Gibbs sweep (AD-LDA style), as a thin driver over
//! [`crate::kernel`].
//!
//! The paper's dataset has ~160K users and millions of relationships; a
//! sequential sweep is the bottleneck at that scale. Following the standard
//! approximate-distributed-LDA recipe, a parallel sweep:
//!
//! 1. partitions relationships into `threads` contiguous chunks;
//! 2. resamples every chunk concurrently against the sweep-start counts
//!    (each relationship still excludes its *own* current contribution —
//!    [`EdgeExcluded`]/[`MentionExcluded`] apply that arithmetically — but
//!    sees stale counts for relationships resampled in other chunks);
//! 3. merges the new assignments and applies each one's count delta
//!    incrementally.
//!
//! Two things are deliberately *absent*:
//!
//! * **No state clone.** `std::thread::scope` lets every worker share a
//!   plain `&SamplerState`: the counts are frozen for the duration of the
//!   fork-join because nothing writes until all chunks are joined. The seed
//!   implementation cloned the full `SamplerState` (assignments and
//!   accumulators included) every sweep.
//! * **No full count rebuild.** The merge applies remove/add deltas per
//!   changed relationship instead of zeroing and recounting `ϕ`/`φ` from
//!   scratch; `check_consistency` in the tests pins the equivalence.
//!
//! The stale reads make this an approximation of the exact chain, but the
//! stationary behaviour is empirically indistinguishable at our scales —
//! the `parallel_matches_sequential_quality` test and the ablation bench
//! quantify it. With `threads == 1` the driver falls back to the exact
//! sequential sweep, so single-threaded results are byte-identical to
//! [`GibbsSampler::sweep`].

use crate::kernel::{self, EdgeExcluded, Endpoint, MentionExcluded, SamplerView};
use crate::sampler::{GibbsSampler, SweepChanges};
use crate::state::SamplerState;
use mlp_sampling::{sample_categorical, Pcg64, SplitMix64};
use mlp_social::Dataset;
use std::ops::Range;

/// One chunk's newly sampled edge assignments.
struct EdgeOut {
    start: usize,
    mu: Vec<bool>,
    x: Vec<u16>,
    y: Vec<u16>,
}

/// One chunk's newly sampled mention assignments.
struct MentionOut {
    start: usize,
    nu: Vec<bool>,
    z: Vec<u16>,
}

/// Runs one approximate parallel sweep; returns change counts.
///
/// `sweep_index` feeds the per-chunk RNG streams so repeated sweeps do not
/// reuse randomness. Falls back to the exact sequential sweep when
/// `threads == 1`.
pub fn parallel_sweep(sampler: &mut GibbsSampler<'_>, sweep_index: u64) -> SweepChanges {
    let threads = sampler.config().threads;
    if threads <= 1 {
        return sampler.sweep();
    }
    let view = sampler.view();
    let config = sampler.config();
    let dataset = sampler.dataset();
    let seed = config.seed;

    let num_edges = if config.variant.uses_following() { dataset.num_edges() } else { 0 };
    let num_mentions = if config.variant.uses_tweeting() { dataset.num_mentions() } else { 0 };

    let edge_chunks = chunk_ranges(num_edges, threads);
    let mention_chunks = chunk_ranges(num_mentions, threads);

    let (edge_outs, mention_outs) = {
        // Shared read-only borrow: frozen until every worker is joined.
        let state = &sampler.state;
        std::thread::scope(|scope| {
            let edge_handles: Vec<_> = edge_chunks
                .into_iter()
                .enumerate()
                .map(|(t, range)| {
                    // Sweep index in the high half, chunk index in the low:
                    // no (sweep, chunk) pair can alias another even at
                    // absurd thread counts.
                    let rng_seed = SplitMix64::derive(
                        seed,
                        0xE000_0000_0000_0000 ^ (sweep_index << 32) ^ t as u64,
                    );
                    scope.spawn(move || resample_edge_chunk(view, state, dataset, range, rng_seed))
                })
                .collect();
            let mention_handles: Vec<_> = mention_chunks
                .into_iter()
                .enumerate()
                .map(|(t, range)| {
                    let rng_seed = SplitMix64::derive(
                        seed,
                        0x4000_0000_0000_0000 ^ (sweep_index << 32) ^ t as u64,
                    );
                    scope.spawn(move || {
                        resample_mention_chunk(view, state, dataset, range, rng_seed)
                    })
                })
                .collect();
            let edge_outs: Vec<EdgeOut> =
                edge_handles.into_iter().map(|h| h.join().expect("edge worker")).collect();
            let mention_outs: Vec<MentionOut> =
                mention_handles.into_iter().map(|h| h.join().expect("mention worker")).collect();
            (edge_outs, mention_outs)
        })
    };

    merge(sampler, edge_outs, mention_outs)
}

/// Resamples one contiguous range of edges against frozen counts.
fn resample_edge_chunk(
    view: SamplerView<'_>,
    state: &SamplerState,
    dataset: &Dataset,
    range: Range<usize>,
    rng_seed: u64,
) -> EdgeOut {
    let mut rng = Pcg64::new(rng_seed);
    let mut out = EdgeOut {
        start: range.start,
        mu: Vec::with_capacity(range.len()),
        x: Vec::with_capacity(range.len()),
        y: Vec::with_capacity(range.len()),
    };
    // One weight buffer per chunk, reused across its whole range.
    let mut buf = Vec::new();
    for s in range {
        let e = dataset.edges[s];
        let (i, j) = (e.follower, e.friend);
        let ci = view.candidacy.candidates(i);
        let cj = view.candidacy.candidates(j);
        let (old_mu, old_x, old_y) = (state.mu[s], state.x[s] as usize, state.y[s] as usize);
        let counted = !old_mu || view.config.count_noisy_assignments;
        let counts = EdgeExcluded::new(state, counted, i, old_x, j, old_y);

        let x_city = ci[old_x];
        let y_city = cj[old_y];

        // --- μ_s | rest (Eq. 5) ---
        let (w_based, w_noisy) = kernel::edge_selector_weights(
            &view,
            &counts,
            Endpoint { user: i, pos: old_x, city: x_city },
            Endpoint { user: j, pos: old_y, city: y_city },
        );
        let new_mu = rng.next_f64() * (w_based + w_noisy) < w_noisy;

        // --- x_s | rest (Eq. 7) ---
        kernel::edge_position_weights(&view, &counts, i, (!new_mu).then_some(y_city), &mut buf);
        let new_x = sample_categorical(&mut rng, &buf).expect("x weights are positive (γ > 0)");
        let x_city = ci[new_x];

        // --- y_s | rest (Eq. 8) ---
        kernel::edge_position_weights(&view, &counts, j, (!new_mu).then_some(x_city), &mut buf);
        let new_y = sample_categorical(&mut rng, &buf).expect("y weights are positive (γ > 0)");

        out.mu.push(new_mu);
        out.x.push(new_x as u16);
        out.y.push(new_y as u16);
    }
    out
}

/// Resamples one contiguous range of mentions against frozen counts.
fn resample_mention_chunk(
    view: SamplerView<'_>,
    state: &SamplerState,
    dataset: &Dataset,
    range: Range<usize>,
    rng_seed: u64,
) -> MentionOut {
    let mut rng = Pcg64::new(rng_seed);
    let mut out = MentionOut {
        start: range.start,
        nu: Vec::with_capacity(range.len()),
        z: Vec::with_capacity(range.len()),
    };
    let mut buf = Vec::new();
    for k in range {
        let m = dataset.mentions[k];
        let (i, v) = (m.user, m.venue);
        let ci = view.candidacy.candidates(i);
        let (old_nu, old_z) = (state.nu[k], state.z[k] as usize);
        let counted = !old_nu || view.config.count_noisy_assignments;
        let old_city = ci[old_z];
        let counts = MentionExcluded::new(state, counted, !old_nu, i, old_z, old_city, v);

        // --- ν_k | rest (Eq. 6) ---
        let (w_based, w_noisy) =
            kernel::mention_selector_weights(&view, &counts, i, old_z, old_city, v);
        let new_nu = rng.next_f64() * (w_based + w_noisy) < w_noisy;

        // --- z_k | rest (Eq. 9) ---
        kernel::mention_position_weights(&view, &counts, i, (!new_nu).then_some(v), &mut buf);
        let new_z = sample_categorical(&mut rng, &buf).expect("z weights are positive (γ > 0)");

        out.nu.push(new_nu);
        out.z.push(new_z as u16);
    }
    out
}

/// Writes the chunk outputs back and applies each relationship's count
/// delta incrementally (no full rebuild).
fn merge(
    sampler: &mut GibbsSampler<'_>,
    edge_outs: Vec<EdgeOut>,
    mention_outs: Vec<MentionOut>,
) -> SweepChanges {
    let count_noisy = sampler.config().count_noisy_assignments;
    let dataset = sampler.dataset();
    let candidacy = sampler.candidacy();
    let state = &mut sampler.state;
    let mut changes = SweepChanges::default();

    for out in edge_outs {
        for (off, ((&new_mu, &new_x), &new_y)) in out.mu.iter().zip(&out.x).zip(&out.y).enumerate()
        {
            let s = out.start + off;
            let e = dataset.edges[s];
            let (old_mu, old_x, old_y) = (state.mu[s], state.x[s], state.y[s]);
            if old_mu != new_mu || old_x != new_x || old_y != new_y {
                changes.edges += 1;
            }
            if !old_mu || count_noisy {
                state.remove_user(e.follower, old_x as usize);
                state.remove_user(e.friend, old_y as usize);
            }
            if !new_mu || count_noisy {
                state.add_user(e.follower, new_x as usize);
                state.add_user(e.friend, new_y as usize);
            }
            state.mu[s] = new_mu;
            state.x[s] = new_x;
            state.y[s] = new_y;
        }
    }

    for out in mention_outs {
        for (off, (&new_nu, &new_z)) in out.nu.iter().zip(&out.z).enumerate() {
            let k = out.start + off;
            let m = dataset.mentions[k];
            let cands = candidacy.candidates(m.user);
            let (old_nu, old_z) = (state.nu[k], state.z[k]);
            if old_nu != new_nu || old_z != new_z {
                changes.mentions += 1;
            }
            if !old_nu || count_noisy {
                state.remove_user(m.user, old_z as usize);
            }
            if !new_nu || count_noisy {
                state.add_user(m.user, new_z as usize);
            }
            if !old_nu {
                state.remove_venue(cands[old_z as usize], m.venue);
            }
            if !new_nu {
                state.add_venue(cands[new_z as usize], m.venue);
            }
            state.nu[k] = new_nu;
            state.z[k] = new_z;
        }
    }

    changes
}

/// Splits `0..n` into `k` contiguous near-equal ranges (empty ranges for
/// `n < k` workers are fine — those workers no-op). Shared with the
/// fold-in batch scheduler in [`crate::infer`].
pub(crate) fn chunk_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    let k = k.max(1);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for t in 0..k {
        let len = base + (t < rem) as usize;
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidacy::Candidacy;
    use crate::config::MlpConfig;
    use crate::random_models::RandomModels;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    #[test]
    fn chunks_cover_everything() {
        for (n, k) in [(10, 3), (0, 4), (5, 8), (100, 1)] {
            let ranges = chunk_ranges(n, k);
            assert_eq!(ranges.len(), k.max(1));
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n, "n={n} k={k}");
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect);
                expect = r.end;
            }
        }
    }

    #[test]
    fn parallel_sweep_keeps_counts_exact() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 200, seed: 51, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { threads: 4, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for sweep in 0..3 {
            parallel_sweep(&mut sampler, sweep);
            sampler
                .state
                .check_consistency(&data.dataset, &cand, false, true, true)
                .expect("incremental merge must equal a rebuild");
        }
    }

    #[test]
    fn incremental_merge_exact_with_count_noisy() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 150, seed: 59, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { threads: 3, count_noisy_assignments: true, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for sweep in 0..3 {
            parallel_sweep(&mut sampler, sweep);
            sampler
                .state
                .check_consistency(&data.dataset, &cand, true, true, true)
                .expect("count-noisy incremental merge must also be exact");
        }
    }

    #[test]
    fn parallel_matches_sequential_quality() {
        // Both samplers should recover labeled users' registered cities at
        // comparable rates — the approximation must not break inference.
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 400, seed: 53, ..Default::default() },
        )
        .generate();
        let accuracy = |threads: usize| {
            let config = MlpConfig { threads, ..Default::default() };
            let adj = Adjacency::build(&data.dataset);
            let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
            let random = RandomModels::learn(&data.dataset, gaz.num_venues());
            let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
            for sweep in 0..10 {
                parallel_sweep(&mut sampler, sweep);
                if sweep >= 5 {
                    sampler.state.accumulate();
                }
            }
            let mut hits = 0usize;
            for u in 0..data.dataset.num_users() {
                let user = mlp_social::UserId(u as u32);
                if let Some(home) = data.dataset.registered[u] {
                    if sampler.estimate_theta(user)[0].0 == home {
                        hits += 1;
                    }
                }
            }
            hits as f64 / data.dataset.num_labeled() as f64
        };
        let seq = accuracy(1);
        let par = accuracy(4);
        assert!(seq > 0.8, "sequential accuracy {seq}");
        assert!(par > seq - 0.1, "parallel degraded too far: {par} vs {seq}");
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: 50, seed: 57, ..Default::default() })
                .generate();
        let config = MlpConfig { threads: 1, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        let changes = parallel_sweep(&mut sampler, 0);
        assert!(changes.edges + changes.mentions > 0);
    }

    /// With `threads == 1` the parallel entry point must be *byte-identical*
    /// to the sequential sweep: same assignments, same RNG stream.
    #[test]
    fn single_thread_is_byte_identical_to_sequential() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 120, seed: 61, ..Default::default() },
        )
        .generate();
        let config = MlpConfig { threads: 1, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());

        let mut seq = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        let mut par = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for sweep in 0..4 {
            let a = seq.sweep();
            let b = parallel_sweep(&mut par, sweep);
            assert_eq!(a, b, "sweep {sweep} change counts differ");
        }
        assert_eq!(seq.state.mu, par.state.mu);
        assert_eq!(seq.state.x, par.state.x);
        assert_eq!(seq.state.y, par.state.y);
        assert_eq!(seq.state.nu, par.state.nu);
        assert_eq!(seq.state.z, par.state.z);
    }
}
