//! Candidacy vectors `λ_i` and supervised priors `γ_i` (paper Sec. 4.3).
//!
//! "We utilize location\[s\] observed from a user's neighbors to set his
//! candidacy vector. Specifically, we assume that λ_{i,j} is 1 if and only
//! if the j-th candidate location is observed from u_i's following and
//! tweeting relationships." Registered locations resolve directly; tweeted
//! venues resolve through the gazetteer to every city sharing the name.
//!
//! The candidacy vector serves two roles: it prunes the Gibbs sampling
//! domain from |L| to a handful of cities per user (the paper credits it
//! with the fast ~14-iteration convergence), and it carries the sparse
//! prior mass `τ·λ_i`. The supervision term `η_i·Λ·γ` adds a large
//! pseudo-count on a labeled user's registered city.

use crate::config::MlpConfig;
use mlp_gazetteer::{CityId, Gazetteer};
use mlp_social::{Adjacency, Dataset, UserId};

/// Per-user candidate city lists with aligned priors.
#[derive(Debug, Clone)]
pub struct Candidacy {
    /// `candidates[i]` — sorted candidate cities of user i.
    candidates: Vec<Vec<CityId>>,
    /// `gammas[i][c]` — prior γ for `candidates[i][c]`.
    gammas: Vec<Vec<f64>>,
    /// `gamma_totals[i]` — Σ_l γ_{i,l}, the denominator constant of Eq. 10.
    gamma_totals: Vec<f64>,
}

impl Candidacy {
    /// Builds candidacy vectors and priors for every user.
    pub fn build(gaz: &Gazetteer, dataset: &Dataset, adj: &Adjacency, config: &MlpConfig) -> Self {
        let n = dataset.num_users();
        let mut candidates: Vec<Vec<CityId>> = Vec::with_capacity(n);

        // Fallback pool: most populous cities, for signal-free users.
        let mut by_pop: Vec<CityId> = (0..gaz.num_cities() as u32).map(CityId).collect();
        by_pop.sort_by_key(|&c| std::cmp::Reverse(gaz.city(c).population));
        by_pop.truncate(config.fallback_popular_k.max(1));

        for u in 0..n {
            let user = UserId(u as u32);
            let mut set: Vec<CityId> = if config.candidacy_pruning {
                let mut set = Vec::new();
                if let Some(c) = dataset.registered[u] {
                    set.push(c);
                }
                if config.variant.uses_following() {
                    for &s in adj.out_edges(user) {
                        let friend = dataset.edges[s as usize].friend;
                        if let Some(c) = dataset.registered[friend.index()] {
                            set.push(c);
                        }
                    }
                    for &s in adj.in_edges(user) {
                        let follower = dataset.edges[s as usize].follower;
                        if let Some(c) = dataset.registered[follower.index()] {
                            set.push(c);
                        }
                    }
                }
                if config.variant.uses_tweeting() {
                    for &k in adj.mentions_of(user) {
                        let venue = dataset.mentions[k as usize].venue;
                        set.extend(gaz.resolve_venue(venue).iter().copied());
                    }
                }
                set
            } else {
                (0..gaz.num_cities() as u32).map(CityId).collect()
            };
            set.sort_unstable();
            set.dedup();
            if set.is_empty() {
                set = by_pop.clone();
            }
            candidates.push(set);
        }

        // Priors: γ_{i,l} = τ·λ_{i,l} + boost·η_{i,l}  (Eq. 3, diagonal Λ).
        let mut gammas = Vec::with_capacity(n);
        let mut gamma_totals = Vec::with_capacity(n);
        for (u, cands) in candidates.iter().enumerate() {
            let mut g: Vec<f64> = vec![config.tau; cands.len()];
            if let Some(home) = dataset.registered[u] {
                if let Ok(pos) = cands.binary_search(&home) {
                    g[pos] += config.supervision_boost;
                }
            }
            gamma_totals.push(g.iter().sum());
            gammas.push(g);
        }

        Self { candidates, gammas, gamma_totals }
    }

    /// Number of users covered.
    pub fn num_users(&self) -> usize {
        self.candidates.len()
    }

    /// Candidate cities of user `u`, sorted ascending.
    #[inline]
    pub fn candidates(&self, u: UserId) -> &[CityId] {
        &self.candidates[u.index()]
    }

    /// Priors aligned with [`Self::candidates`].
    #[inline]
    pub fn gammas(&self, u: UserId) -> &[f64] {
        &self.gammas[u.index()]
    }

    /// Σ_l γ_{i,l} for user `u`.
    #[inline]
    pub fn gamma_total(&self, u: UserId) -> f64 {
        self.gamma_totals[u.index()]
    }

    /// Index of `city` inside user `u`'s candidate list, if present.
    #[inline]
    pub fn position(&self, u: UserId, city: CityId) -> Option<usize> {
        self.candidates[u.index()].binary_search(&city).ok()
    }

    /// Mean candidate-list length — the pruning factor vs. |L|.
    pub fn mean_candidates(&self) -> f64 {
        if self.candidates.is_empty() {
            return 0.0;
        }
        self.candidates.iter().map(Vec::len).sum::<usize>() as f64 / self.candidates.len() as f64
    }

    /// Fraction of users whose list contains `truth(u)` — the coverage
    /// statistic of Sec. 4.3 (the paper reports 92%).
    pub fn coverage(&self, truth: impl Fn(UserId) -> CityId) -> f64 {
        if self.candidates.is_empty() {
            return 0.0;
        }
        let hits = (0..self.candidates.len())
            .filter(|&u| {
                let user = UserId(u as u32);
                self.position(user, truth(user)).is_some()
            })
            .count();
        hits as f64 / self.candidates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{FollowEdge, TweetMention};

    fn gaz() -> Gazetteer {
        Gazetteer::us_cities()
    }

    /// Four users: 0 labeled Austin follows 1 (labeled LA); 2 tweets
    /// "princeton"; 3 has no signal at all.
    fn fixture(g: &Gazetteer) -> Dataset {
        let austin = g.city_by_name_state("austin", "TX").unwrap();
        let la = g.city_by_name_state("los angeles", "CA").unwrap();
        let mut d = Dataset::new(4);
        d.registered[0] = Some(austin);
        d.registered[1] = Some(la);
        d.edges.push(FollowEdge { follower: UserId(0), friend: UserId(1) });
        let princeton = g.venue_by_name("princeton").unwrap();
        d.mentions.push(TweetMention { user: UserId(2), venue: princeton });
        d
    }

    #[test]
    fn candidates_come_from_own_label_neighbors_and_venues() {
        let g = gaz();
        let d = fixture(&g);
        let adj = Adjacency::build(&d);
        let cand = Candidacy::build(&g, &d, &adj, &MlpConfig::default());

        let austin = g.city_by_name_state("austin", "TX").unwrap();
        let la = g.city_by_name_state("los angeles", "CA").unwrap();
        // User 0: own label + friend's label.
        assert!(cand.position(UserId(0), austin).is_some());
        assert!(cand.position(UserId(0), la).is_some());
        // User 1: own label + follower's label.
        assert!(cand.position(UserId(1), austin).is_some());
        assert!(cand.position(UserId(1), la).is_some());
        // User 2: every Princeton.
        let princetons = g.cities_named("princeton");
        assert_eq!(cand.candidates(UserId(2)).len(), princetons.len());
        for p in princetons {
            assert!(cand.position(UserId(2), *p).is_some());
        }
    }

    #[test]
    fn signal_free_user_gets_popular_fallback() {
        let g = gaz();
        let d = fixture(&g);
        let adj = Adjacency::build(&d);
        let config = MlpConfig { fallback_popular_k: 5, ..Default::default() };
        let cand = Candidacy::build(&g, &d, &adj, &config);
        assert_eq!(cand.candidates(UserId(3)).len(), 5);
        let nyc = g.city_by_name_state("new york", "NY").unwrap();
        assert!(cand.position(UserId(3), nyc).is_some(), "NYC is in the top-5 pool");
    }

    #[test]
    fn supervision_boost_lands_on_registered_city() {
        let g = gaz();
        let d = fixture(&g);
        let adj = Adjacency::build(&d);
        let config = MlpConfig { tau: 0.1, supervision_boost: 20.0, ..Default::default() };
        let cand = Candidacy::build(&g, &d, &adj, &config);
        let austin = g.city_by_name_state("austin", "TX").unwrap();
        let pos = cand.position(UserId(0), austin).unwrap();
        let gammas = cand.gammas(UserId(0));
        assert!((gammas[pos] - 20.1).abs() < 1e-12);
        for (i, &gv) in gammas.iter().enumerate() {
            if i != pos {
                assert!((gv - 0.1).abs() < 1e-12);
            }
        }
        let total: f64 = gammas.iter().sum();
        assert!((cand.gamma_total(UserId(0)) - total).abs() < 1e-12);
    }

    #[test]
    fn unlabeled_user_gets_flat_prior() {
        let g = gaz();
        let d = fixture(&g);
        let adj = Adjacency::build(&d);
        let cand = Candidacy::build(&g, &d, &adj, &MlpConfig::default());
        for &gv in cand.gammas(UserId(2)) {
            assert!((gv - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pruning_off_gives_full_domain() {
        let g = gaz();
        let d = fixture(&g);
        let adj = Adjacency::build(&d);
        let config = MlpConfig { candidacy_pruning: false, ..Default::default() };
        let cand = Candidacy::build(&g, &d, &adj, &config);
        assert_eq!(cand.candidates(UserId(0)).len(), g.num_cities());
        assert_eq!(cand.candidates(UserId(3)).len(), g.num_cities());
        assert!(cand.mean_candidates() > 100.0);
    }

    #[test]
    fn variant_restricts_signal_sources() {
        let g = gaz();
        let d = fixture(&g);
        let adj = Adjacency::build(&d);
        // Content-only: user 0's friend label must not appear; but user 0 has
        // no venues, so fallback kicks in... user 2 keeps Princetons.
        let config = MlpConfig::tweeting_only();
        let cand = Candidacy::build(&g, &d, &adj, &config);
        let princetons = g.cities_named("princeton");
        assert_eq!(cand.candidates(UserId(2)).len(), princetons.len());
        // Network-only: user 2 (venue only) falls back to the popular pool.
        let config = MlpConfig::following_only();
        let cand = Candidacy::build(&g, &d, &adj, &config);
        assert_eq!(cand.candidates(UserId(2)).len(), config.fallback_popular_k);
    }

    #[test]
    fn coverage_statistic() {
        let g = gaz();
        let d = fixture(&g);
        let adj = Adjacency::build(&d);
        let cand = Candidacy::build(&g, &d, &adj, &MlpConfig::default());
        let austin = g.city_by_name_state("austin", "TX").unwrap();
        // Truth: everyone lives in Austin. Users 0 and 1 have it (own/friend
        // label); users 2 and 3 do not.
        let cov = cand.coverage(|_| austin);
        assert!((cov - 0.5).abs() < 1e-12, "coverage {cov}");
    }

    #[test]
    fn candidates_are_sorted_and_deduped() {
        let g = gaz();
        let mut d = fixture(&g);
        // Duplicate signals: follow the same labeled user twice via both
        // directions plus own registration.
        d.edges.push(FollowEdge { follower: UserId(1), friend: UserId(0) });
        let adj = Adjacency::build(&d);
        let cand = Candidacy::build(&g, &d, &adj, &MlpConfig::default());
        for u in 0..4 {
            let c = cand.candidates(UserId(u));
            for w in c.windows(2) {
                assert!(w[0] < w[1], "user {u} candidates not strictly sorted");
            }
        }
    }
}
