//! Request coalescing: group-commit batching for concurrent single-user
//! serving.
//!
//! High-QPS serving arrives as many concurrent *single-user*
//! [`ProfileRequest`]s, but the engine's per-call overhead (epoch read,
//! fold-in engine assembly, scheduler pass) amortises across a batch. A
//! [`Coalescer`] closes that gap without changing a single answer:
//! concurrent callers enqueue their request and one of them — the
//! *leader* — drains up to `max_batch` queued requests into one
//! [`ServingEngine::profile_each`] wave, then distributes the answers.
//!
//! * **Determinism is preserved exactly.** Coalesced grouping is timing
//!   dependent, so answers must not depend on which requests share a
//!   wave. They don't: `profile_each` pins every chain to the singleton
//!   RNG stream (batch index 0), making each answer bit-identical to a
//!   standalone [`ServingEngine::profile`] call — under coalescing,
//!   alone, or replayed serially.
//! * **Group-commit leadership.** The first caller to find no active
//!   leader becomes one; callers arriving while a wave is in flight just
//!   enqueue and wait. A finishing leader that sees a non-empty queue
//!   *promotes* one waiter to leader instead of looping, so no caller is
//!   stuck serving other people's requests indefinitely — each leader
//!   serves at most one wave beyond its own.
//! * **Typed errors stay per-request.** A wave that fails falls back to
//!   serving each member individually, so a request-specific failure
//!   (say, an unknown neighbor) reaches exactly the caller who sent it
//!   and never poisons wave-mates.
//!
//! ```
//! use mlp_core::engine::{ProfileRequest, ServingEngine};
//! use mlp_core::MlpConfig;
//! use mlp_gazetteer::Gazetteer;
//! use mlp_social::{Generator, GeneratorConfig, UserId};
//!
//! let gaz = Gazetteer::us_cities();
//! let data = Generator::new(
//!     &gaz,
//!     GeneratorConfig { num_users: 60, seed: 19, ..Default::default() },
//! )
//! .generate();
//! let engine = ServingEngine::builder(&gaz)
//!     .mlp_config(MlpConfig { iterations: 4, burn_in: 2, seed: 19, ..Default::default() })
//!     .train(&data.dataset.prefix(50))
//!     .unwrap();
//!
//! let coalescer = engine.coalescer(8);
//! let mut requests = ProfileRequest::batch_from_dataset(&data.dataset, &[UserId(3), UserId(7)]);
//! for r in &mut requests {
//!     r.observations.neighbors.retain(|p| p.index() < 50);
//! }
//! std::thread::scope(|scope| {
//!     let handles: Vec<_> =
//!         requests.iter().map(|r| scope.spawn(|| coalescer.profile(r).unwrap())).collect();
//!     for (h, r) in handles.into_iter().zip(&requests) {
//!         // Whatever grouping the race produced, each answer equals the
//!         // standalone call.
//!         assert_eq!(h.join().unwrap(), engine.profile(r).unwrap());
//!     }
//! });
//! ```

use crate::engine::{lock, EngineError, ProfileRequest, ProfileResponse, ServingEngine};
use std::sync::{Arc, Condvar, Mutex};

/// A bounded group-commit batcher over one [`ServingEngine`]. Built by
/// [`ServingEngine::coalescer`]; see the [module docs](self) for the
/// protocol and the determinism contract.
pub struct Coalescer<'e, 'a> {
    engine: &'e ServingEngine<'a>,
    max_batch: usize,
    shared: Mutex<Shared>,
}

/// The queue and the leadership flag, guarded together: leadership
/// changes hands only while holding this lock, so an enqueued request
/// always has exactly one live leader responsible for draining it.
#[derive(Default)]
struct Shared {
    queue: Vec<Entry>,
    leader_active: bool,
}

struct Entry {
    request: ProfileRequest,
    waiter: Arc<Waiter>,
}

/// One caller's parked state: completed by the leader that drains its
/// entry, or promoted to leadership by a leader stepping down.
struct Waiter {
    state: Mutex<State>,
    ready: Condvar,
}

enum State {
    Waiting,
    /// Promoted: wake up and drain the queue yourself (your own entry is
    /// still in it).
    Lead,
    Done(Result<ProfileResponse, EngineError>),
}

impl Waiter {
    fn new() -> Self {
        Self { state: Mutex::new(State::Waiting), ready: Condvar::new() }
    }

    fn set(&self, state: State) {
        *lock(&self.state) = state;
        self.ready.notify_one();
    }
}

impl<'e, 'a> Coalescer<'e, 'a> {
    /// A coalescer over `engine` grouping at most `max_batch` requests
    /// per wave (`0` behaves as `1`).
    pub fn new(engine: &'e ServingEngine<'a>, max_batch: usize) -> Self {
        Self { engine, max_batch: max_batch.max(1), shared: Mutex::new(Shared::default()) }
    }

    /// The engine this coalescer serves through.
    pub fn engine(&self) -> &'e ServingEngine<'a> {
        self.engine
    }

    /// The wave-size bound.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Profiles one unseen user through the coalescing queue. Blocks
    /// until a leader (possibly this caller) serves the request; the
    /// answer is bit-identical to [`ServingEngine::profile`] on the same
    /// request, whatever grouping the race produced.
    pub fn profile(&self, request: &ProfileRequest) -> Result<ProfileResponse, EngineError> {
        let waiter = Arc::new(Waiter::new());
        let lead = {
            let mut shared = lock(&self.shared);
            shared.queue.push(Entry { request: request.clone(), waiter: Arc::clone(&waiter) });
            // Claim leadership under the queue lock: either a leader is
            // already active (and is now responsible for this entry) or
            // this caller becomes it — an enqueued request can never be
            // left behind with nobody draining.
            !std::mem::replace(&mut shared.leader_active, true)
        };
        if lead {
            self.run_leader();
        }
        loop {
            let mut state = lock(&waiter.state);
            match std::mem::replace(&mut *state, State::Waiting) {
                State::Done(result) => return result,
                State::Lead => {
                    drop(state);
                    self.run_leader();
                }
                State::Waiting => {
                    let parked =
                        waiter.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
                    drop(parked);
                }
            }
        }
    }

    /// Drains one wave as the leader, then steps down — completing every
    /// drained waiter and either releasing leadership (empty queue) or
    /// promoting the next queued waiter to leader.
    fn run_leader(&self) {
        let batch: Vec<Entry> = {
            let mut shared = lock(&self.shared);
            let take = shared.queue.len().min(self.max_batch);
            shared.queue.drain(..take).collect()
        };
        if !batch.is_empty() {
            let (requests, waiters): (Vec<ProfileRequest>, Vec<Arc<Waiter>>) =
                batch.into_iter().map(|e| (e.request, e.waiter)).unzip();
            match self.engine.profile_each(&requests) {
                Ok(responses) => {
                    for (waiter, response) in waiters.into_iter().zip(responses) {
                        waiter.set(State::Done(Ok(response)));
                    }
                }
                Err(_) => {
                    // A wave error is usually request-specific (e.g. one
                    // unknown neighbor). Re-serve each member alone so
                    // every caller gets its own typed outcome instead of
                    // a shared, unattributable failure.
                    for (waiter, request) in waiters.into_iter().zip(&requests) {
                        waiter.set(State::Done(self.engine.profile(request)));
                    }
                }
            }
        }
        let next = {
            let mut shared = lock(&self.shared);
            match shared.queue.first() {
                Some(entry) => Some(Arc::clone(&entry.waiter)),
                None => {
                    shared.leader_active = false;
                    None
                }
            }
        };
        if let Some(next) = next {
            // Hand leadership to a waiter whose entry is still queued:
            // this leader's own caller already has its answer, and the
            // promoted one drains its own request in its first wave.
            next.set(State::Lead);
        }
    }
}

impl std::fmt::Debug for Coalescer<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shared = lock(&self.shared);
        f.debug_struct("Coalescer")
            .field("max_batch", &self.max_batch)
            .field("queued", &shared.queue.len())
            .field("leader_active", &shared.leader_active)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MlpConfig;
    use crate::infer::NewUserObservations;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{GeneratedData, Generator, GeneratorConfig, UserId};

    fn corpus(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
                .generate();
        (gaz, data)
    }

    fn quick(seed: u64) -> MlpConfig {
        MlpConfig { iterations: 6, burn_in: 3, seed, ..Default::default() }
    }

    #[test]
    fn coalesced_answers_equal_standalone_profiles() {
        let (gaz, data) = corpus(80, 301);
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick(301))
            .train(&data.dataset.prefix(60))
            .unwrap();
        let ids: Vec<UserId> = (60..76).map(UserId).collect();
        let mut requests = ProfileRequest::batch_from_dataset(&data.dataset, &ids);
        for r in &mut requests {
            r.observations.neighbors.retain(|p| p.index() < 60);
        }

        // Expected: each request served alone, serially.
        let expected: Vec<ProfileResponse> =
            requests.iter().map(|r| engine.profile(r).unwrap()).collect();

        // Race all sixteen through a small-wave coalescer.
        let coalescer = engine.coalescer(4);
        let got: Vec<ProfileResponse> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                requests.iter().map(|r| scope.spawn(|| coalescer.profile(r).unwrap())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(expected, got, "coalescing must not change any answer");
    }

    #[test]
    fn wave_errors_stay_per_request() {
        let (gaz, data) = corpus(60, 303);
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick(303))
            .train(&data.dataset.prefix(50))
            .unwrap();
        let mut good =
            ProfileRequest::batch_from_dataset(&data.dataset, &[UserId(3)]).pop().unwrap();
        good.observations.neighbors.retain(|p| p.index() < 50);
        let bad = ProfileRequest::new(NewUserObservations {
            neighbors: vec![UserId(55)], // unknown to the 50-user posterior
            mentions: vec![],
        });

        let coalescer = engine.coalescer(8);
        let (good_out, bad_out) = std::thread::scope(|scope| {
            let g = scope.spawn(|| coalescer.profile(&good));
            let b = scope.spawn(|| coalescer.profile(&bad));
            (g.join().unwrap(), b.join().unwrap())
        });
        assert_eq!(good_out.unwrap(), engine.profile(&good).unwrap());
        assert!(
            matches!(
                bad_out.unwrap_err(),
                EngineError::FoldIn(crate::infer::FoldInError::UnknownUser(UserId(55)))
            ),
            "the failing request's caller gets the typed error"
        );
    }

    #[test]
    fn sequential_use_works_without_contention() {
        let (gaz, data) = corpus(60, 305);
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick(305))
            .train(&data.dataset.prefix(50))
            .unwrap();
        let mut requests =
            ProfileRequest::batch_from_dataset(&data.dataset, &[UserId(1), UserId(2)]);
        for r in &mut requests {
            r.observations.neighbors.retain(|p| p.index() < 50);
        }
        let coalescer = engine.coalescer(32);
        for r in &requests {
            assert_eq!(coalescer.profile(r).unwrap(), engine.profile(r).unwrap());
        }
        // Leadership fully released between calls.
        let dump = format!("{coalescer:?}");
        assert!(dump.contains("leader_active: false"), "{dump}");
        assert!(dump.contains("queued: 0"), "{dump}");
    }
}
