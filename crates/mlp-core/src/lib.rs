//! `mlp-core` — the Multiple Location Profiling model (Li, Wang & Chang,
//! VLDB 2012), the paper's primary contribution.
//!
//! MLP is a generative probabilistic model that profiles *multiple*
//! locations for social-network users and explains every relationship with
//! per-endpoint location assignments:
//!
//! * each user `u_i` has a location profile `θ_i` — a multinomial over
//!   candidate cities — drawn from a supervised Dirichlet prior
//!   `γ_i = η_i·Λ·γ + τ·λ_i` (Sec. 4.3);
//! * each following relationship `f⟨i,j⟩` is either noisy (random model
//!   `F_R`) or location-based: assignments `x ~ θ_i`, `y ~ θ_j` and the edge
//!   is generated with probability `β·d(x,y)^α` (Secs. 4.1–4.2);
//! * each tweeting relationship `t⟨i,j⟩` is either noisy (`T_R`, global
//!   venue popularity) or location-based: `z ~ θ_i`, venue `~ ψ_z`;
//! * inference is collapsed Gibbs sampling over the model selectors and
//!   location assignments (Eqs. 5–9), with an optional Gibbs-EM outer loop
//!   re-fitting the power law `(α, β)` (Sec. 4.5).
//!
//! Module map:
//!
//! * [`config`] — every model hyper-parameter, with the paper's defaults;
//! * [`candidacy`] — candidacy vectors `λ_i` and priors `γ_i`;
//! * [`random_models`] — the empirical noise models `F_R` and `T_R`;
//! * [`count_store`] — columnar CSR count arenas (sparse venue counts
//!   with dense fallback) shared by the sampler state and its drivers;
//! * [`state`] — assignment state and collapsed count bookkeeping;
//! * [`kernel`] — the stateless conditional-weight kernel (Eqs. 5–9),
//!   shared by both sweep drivers;
//! * [`sampler`] — the sequential sweep driver;
//! * [`parallel`] — the AD-LDA-style chunked parallel sweep driver;
//! * [`shard`] — out-of-core training: sampler state sharded by user
//!   partition over a disk-streamed corpus, with periodic count
//!   reconciliation between super-sweeps;
//! * [`em`] — the Gibbs-EM power-law refit;
//! * [`diagnostics`] — per-iteration convergence telemetry (Fig. 5);
//! * [`model`] — the [`Mlp`] façade tying it together, and [`MlpResult`];
//! * [`snapshot`] — frozen posterior artifacts (versioned binary codec,
//!   v5 with a 64-byte-aligned section table for zero-copy mapped opens
//!   and CRC-framed mergeable delta records; v2–v4 still decode) for
//!   warm-start serving;
//! * [`infer`] — the fold-in engine predicting *unseen* users against a
//!   frozen snapshot, sequentially or batched across scoped threads;
//! * [`online`] — incremental posterior refresh: absorbing new users into
//!   mergeable [`snapshot::SnapshotDelta`]s and committing them without a
//!   retrain, under a bounded staleness policy;
//! * [`engine`] — **the serving facade**: [`engine::ServingEngine`] unifies
//!   train / fold-in / refresh behind one typed, concurrency-safe API with
//!   epoch-published snapshots (lock-free readers, single-writer refresh).
//!   [`snapshot`], [`infer`], and [`online`] remain public as the
//!   low-level layer it is built from;
//! * [`coalesce`] — group-commit batching of concurrent single-user
//!   requests over the facade, answer-preserving by construction;
//! * [`wal`] — the durable write-ahead delta log behind file-backed
//!   engines: fsync'd CRC-framed records, recovery-on-open that replays
//!   the committed prefix and truncates torn tails, and atomic artifact
//!   replacement ([`wal::write_atomic`]).

pub mod candidacy;
pub mod coalesce;
pub mod config;
pub mod count_store;
pub mod diagnostics;
pub mod em;
pub mod engine;
pub mod fit;
pub mod geo_groups;
pub mod infer;
pub mod kernel;
pub mod model;
pub mod online;
pub mod parallel;
pub mod random_models;
pub mod sampler;
pub mod shard;
pub mod snapshot;
pub mod state;
pub mod wal;

pub use candidacy::Candidacy;
pub use coalesce::Coalescer;
pub use config::{ConfigError, MlpConfig, Variant};
pub use count_store::{VenueCountStore, VenueRow};
pub use diagnostics::{Diagnostics, IterationStats};
pub use engine::{
    response_determinism_hash, CommitInfo, EngineBuilder, EngineError, OpenMode, ProfileRequest,
    ProfileResponse, RankedCities, RecoveryReport, RefreshReport, RetrainDecision, RetrainReport,
    ServingEngine, SnapshotHandle,
};
pub use fit::fit_power_law_from_labels;
pub use geo_groups::{geo_groups, GeoGroup, GeoGrouping};
pub use infer::{
    determinism_hash, FoldInConfig, FoldInEngine, FoldInError, FoldInProfile, FoldInRecord,
    NewUserObservations,
};
pub use kernel::{CountView, ProfileView, SamplerView};
pub use model::{EdgeAssignment, MentionAssignment, Mlp, MlpResult};
pub use online::{OnlineError, OnlineUpdater, StalenessPolicy};
pub use random_models::RandomModels;
pub use shard::{train_corpus, CandidateProfiles, ShardedTrainConfig, TrainError};
pub use snapshot::{
    artifact_version, gazetteer_fingerprint, inspect_artifact, ArtifactInfo, Integrity,
    PosteriorSnapshot, SectionInfo, SnapshotDelta, SnapshotError, UserArena, UserPosterior,
    UserView, VenueArena, CURRENT_ARTIFACT_VERSION,
};
pub use wal::{
    artifact_fingerprint, inspect_log, write_atomic, DeltaWal, WalError, WalInfo, WalRecovery,
};
