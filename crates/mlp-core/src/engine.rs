//! The serving facade: one typed, concurrency-safe API over the whole
//! train → serve → refresh lifecycle.
//!
//! After the snapshot ([`crate::snapshot`]), fold-in ([`crate::infer`]) and
//! online-refresh ([`crate::online`]) layers landed, callers had to
//! hand-wire them: run [`crate::Mlp`], freeze a [`PosteriorSnapshot`],
//! build a [`crate::FoldInEngine`] per request wave, drive an
//! [`OnlineUpdater`] through absorb/commit, and check the
//! [`StalenessPolicy`] themselves — five APIs, four error enums, and a
//! snapshot lifecycle owned by nobody. [`ServingEngine`] owns all of it:
//!
//! * **[`EngineBuilder`]** — validated configuration (typed
//!   [`ConfigError`]) and the three ways in: cold-train a corpus
//!   ([`EngineBuilder::train`]), adopt a frozen posterior
//!   ([`EngineBuilder::from_snapshot`]), or thaw a published artifact
//!   ([`EngineBuilder::from_artifact`]).
//! * **Epoch-published snapshots** — the engine keeps the authoritative
//!   posterior behind a single-writer path and *publishes* it as an
//!   immutable epoch through a lock-free [`ArcSwap`]: readers grab a
//!   cheap [`SnapshotHandle`] — an `Arc` clone with **no lock anywhere on
//!   the path** — and serve against it; a refresh commit publishes the
//!   next epoch with one atomic pointer swap, never blocking readers
//!   mid-batch. Every reader observes a full pre- or post-commit
//!   posterior, never a torn one, and the monitoring surface
//!   ([`ServingEngine::epoch`], [`commits`](ServingEngine::commits),
//!   [`needs_retrain`](ServingEngine::needs_retrain)) is wait-free.
//! * **Request coalescing** — concurrent single-user requests can opt
//!   into a [`crate::coalesce::Coalescer`] that groups them into one
//!   fold-in wave per epoch read (see [`ServingEngine::coalescer`]),
//!   answering each exactly as a standalone [`ServingEngine::profile`]
//!   call would.
//! * **Typed vocabulary** — [`ProfileRequest`] in,
//!   [`ProfileResponse`]/[`RankedCities`] out, one [`EngineError`] over
//!   config, model, snapshot, fold-in, and IO failures.
//! * **Determinism** — [`ServingEngine::profile_batch`] fans requests
//!   exactly like [`crate::FoldInEngine::fold_in_batch`] (RNG streams
//!   derived from request index), so batched serving stays bit-identical
//!   to sequential, and refresh commits publish byte-identical artifacts
//!   on repeat runs.
//!
//! The building blocks stay public as the low-level layer; this module is
//! the API applications are expected to use.
//!
//! # Example: the three serving flows
//!
//! ```
//! use mlp_core::engine::{ProfileRequest, ServingEngine};
//! use mlp_core::{FoldInConfig, MlpConfig, NewUserObservations};
//! use mlp_gazetteer::Gazetteer;
//! use mlp_social::{Generator, GeneratorConfig, UserId};
//!
//! let gaz = Gazetteer::us_cities();
//! let data = Generator::new(
//!     &gaz,
//!     GeneratorConfig { num_users: 80, seed: 11, ..Default::default() },
//! )
//! .generate();
//!
//! // Cold train on the first 60 users; the rest arrive later.
//! let engine = ServingEngine::builder(&gaz)
//!     .mlp_config(MlpConfig { iterations: 4, burn_in: 2, seed: 11, ..Default::default() })
//!     .fold_in_config(FoldInConfig::default())
//!     .train(&data.dataset.prefix(60))
//!     .unwrap();
//! assert_eq!(engine.epoch(), 0);
//!
//! // Warm fold-in: profile an unseen user without touching the posterior.
//! // Their edges may cite only users the posterior knows (the first 60).
//! let mut obs = NewUserObservations::from_dataset(&data.dataset, UserId(63));
//! obs.neighbors.retain(|p| p.index() < engine.snapshot().num_users());
//! let response = engine.profile(&ProfileRequest::new(obs)).unwrap();
//! assert!(response.ranked.home().index() < gaz.num_cities());
//!
//! // Online refresh: absorb the 20 late arrivals and publish a new epoch.
//! let late: Vec<UserId> = (60..80).map(UserId).collect();
//! let report = engine.refresh_from_dataset(&data.dataset, &late, 10).unwrap();
//! assert_eq!(report.appended(), 20);
//! assert_eq!(engine.epoch(), 2); // one epoch per committed batch
//! assert_eq!(engine.snapshot().num_users(), 80);
//! ```

use crate::coalesce::Coalescer;
use crate::config::{ConfigError, MlpConfig};
use crate::infer::{
    determinism_hash_rankings, DerivedParts, FoldInConfig, FoldInEngine, FoldInError,
    FoldInProfile, NewUserObservations,
};
use crate::model::Mlp;
use crate::online::{OnlineError, OnlineUpdater, StalenessPolicy};
use crate::shard::{ShardedTrainConfig, TrainError};
use crate::snapshot::{Integrity, PosteriorSnapshot, SnapshotError};
use crate::wal::{artifact_fingerprint, write_atomic, DeltaWal, WalError};
use arc_swap::ArcSwap;
use bytes::Bytes;
use mlp_gazetteer::{CityId, Gazetteer};
use mlp_social::{Dataset, UserId};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Everything that can go wrong across the serving lifecycle, in one
/// `#[non_exhaustive]` enum with [`std::error::Error::source`] chaining to
/// the layer that objected.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The builder's configuration cannot drive a well-defined chain.
    Config(ConfigError),
    /// The model rejected its inputs at cold-train time (dataset
    /// validation — ids out of range, inconsistent labels).
    Model(String),
    /// The posterior artifact could not be decoded, encoded, or committed.
    Snapshot(SnapshotError),
    /// A serving request could not be folded in.
    FoldIn(FoldInError),
    /// Reading or writing an artifact file failed.
    Io(std::io::Error),
    /// The durable write-ahead delta log failed (append, fsync,
    /// recovery, or checkpoint reset).
    Wal(WalError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "invalid engine configuration: {e}"),
            EngineError::Model(e) => write!(f, "model rejected inputs: {e}"),
            EngineError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            EngineError::FoldIn(e) => write!(f, "fold-in error: {e}"),
            EngineError::Io(e) => write!(f, "artifact io error: {e}"),
            EngineError::Wal(e) => write!(f, "delta log error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::Model(_) => None,
            EngineError::Snapshot(e) => Some(e),
            EngineError::FoldIn(e) => Some(e),
            EngineError::Io(e) => Some(e),
            EngineError::Wal(e) => Some(e),
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<SnapshotError> for EngineError {
    fn from(e: SnapshotError) -> Self {
        EngineError::Snapshot(e)
    }
}

impl From<FoldInError> for EngineError {
    fn from(e: FoldInError) -> Self {
        EngineError::FoldIn(e)
    }
}

impl From<OnlineError> for EngineError {
    fn from(e: OnlineError) -> Self {
        match e {
            OnlineError::FoldIn(e) => EngineError::FoldIn(e),
            OnlineError::Snapshot(e) => EngineError::Snapshot(e),
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<WalError> for EngineError {
    fn from(e: WalError) -> Self {
        EngineError::Wal(e)
    }
}

/// One serving request: the observations an unseen user arrives with.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileRequest {
    /// Who the user follows / is followed by, and which venues they
    /// mention.
    pub observations: NewUserObservations,
}

impl ProfileRequest {
    /// Wraps raw observations.
    pub fn new(observations: NewUserObservations) -> Self {
        Self { observations }
    }

    /// Collects the observations of every user in `users` out of a
    /// dataset in one corpus pass (the evaluation convenience —
    /// [`NewUserObservations::batch_from_dataset`] behind the typed
    /// request).
    pub fn batch_from_dataset(dataset: &Dataset, users: &[UserId]) -> Vec<Self> {
        NewUserObservations::batch_from_dataset(dataset, users).into_iter().map(Self::new).collect()
    }
}

impl From<NewUserObservations> for ProfileRequest {
    fn from(observations: NewUserObservations) -> Self {
        Self { observations }
    }
}

/// A location profile: `(city, probability)` sorted by descending
/// probability, ties broken by city id — exactly the training-time θ̂
/// ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCities(Vec<(CityId, f64)>);

impl RankedCities {
    /// Predicted home location (argmax of θ̂).
    pub fn home(&self) -> CityId {
        self.0[0].0
    }

    /// The top-`k` locations.
    pub fn top_k(&self, k: usize) -> Vec<CityId> {
        self.0.iter().take(k).map(|&(c, _)| c).collect()
    }

    /// The full ranking as `(city, probability)` pairs.
    pub fn as_slice(&self) -> &[(CityId, f64)] {
        &self.0
    }

    /// Number of ranked candidates.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the ranking is empty (never true for a served response).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates the ranking in descending-probability order.
    pub fn iter(&self) -> impl Iterator<Item = &(CityId, f64)> {
        self.0.iter()
    }
}

impl From<FoldInProfile> for RankedCities {
    fn from(p: FoldInProfile) -> Self {
        Self(p.profile)
    }
}

/// One serving answer, tagged with the posterior epoch it was computed
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileResponse {
    /// θ̂ over the user's candidate cities.
    pub ranked: RankedCities,
    /// The epoch of the published posterior that answered this request.
    pub epoch: u64,
}

/// FNV-1a fingerprint of a response set — identical to
/// [`crate::infer::determinism_hash`] over the same predictions, so epoch
/// tagging does not change the pinned CI hashes.
pub fn response_determinism_hash(responses: &[ProfileResponse]) -> u64 {
    determinism_hash_rankings(responses.iter().map(|r| r.ranked.as_slice()))
}

/// What one [`ServingEngine::refresh`] / [`refresh_from_dataset`] call
/// committed.
///
/// [`refresh_from_dataset`]: ServingEngine::refresh_from_dataset
#[derive(Debug, Clone)]
pub struct RefreshReport {
    /// The absorbed users' serving profiles, in request order —
    /// bit-identical to what [`ServingEngine::profile_batch`] would have
    /// answered against the same pre-commit epoch (each tagged with it).
    pub profiles: Vec<ProfileResponse>,
    /// One entry per commit, in commit order.
    pub commits: Vec<CommitInfo>,
    /// Whether the staleness policy now asks for a cold retrain. The
    /// engine keeps serving and refreshing either way — scheduling the
    /// retrain is the caller's move.
    pub needs_retrain: bool,
}

impl RefreshReport {
    /// Total users appended across this report's commits.
    pub fn appended(&self) -> usize {
        self.commits.iter().map(|c| c.appended).sum()
    }
}

/// One committed batch inside a [`RefreshReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// Users appended by this commit.
    pub appended: usize,
    /// Posterior user count after the commit.
    pub total_users: usize,
    /// The epoch this commit published.
    pub epoch: u64,
}

/// What [`ServingEngine::plan_refresh`] decided the engine should do
/// next — the decision layer closed-loop drivers (the scenario engine,
/// ops schedulers) act on instead of re-deriving policy state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainDecision {
    /// Posterior is current and the staleness policy is quiet.
    Steady,
    /// New users are pending and the policy is quiet: absorb them
    /// incrementally via [`ServingEngine::refresh_from_dataset`].
    Refresh,
    /// The staleness policy asks for a full cold retrain
    /// ([`ServingEngine::retrain_from_dataset`]) — commit budget spent
    /// or recorded drift over threshold.
    Retrain,
}

/// What one [`ServingEngine::retrain_from_dataset`] call published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrainReport {
    /// The epoch the retrained posterior was published as (the epoch
    /// counter keeps rising across retrains — it is a publication
    /// counter, not a lineage id).
    pub epoch: u64,
    /// Users in the retrained posterior.
    pub trained_users: usize,
    /// Whether the retrained base was checkpointed to the artifact file
    /// (always true for durable engines — the retrain is made durable
    /// before it is published).
    pub checkpointed: bool,
}

/// A cheap, clonable read handle on one published posterior epoch.
///
/// Obtained from [`ServingEngine::snapshot`]; holding it pins the epoch —
/// serving through [`ServingEngine::profile_batch_on`] stays on this
/// posterior even while refresh commits publish newer ones. Dropping the
/// handle releases the epoch's memory once no reader uses it.
#[derive(Clone)]
pub struct SnapshotHandle {
    inner: Arc<Epoch>,
}

impl SnapshotHandle {
    /// The epoch this handle pins.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The frozen posterior itself (the low-level artifact API).
    pub fn snapshot(&self) -> &PosteriorSnapshot {
        &self.inner.snapshot
    }
}

impl std::ops::Deref for SnapshotHandle {
    type Target = PosteriorSnapshot;

    fn deref(&self) -> &Self::Target {
        &self.inner.snapshot
    }
}

impl std::fmt::Debug for SnapshotHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotHandle")
            .field("epoch", &self.inner.epoch)
            .field("users", &self.inner.snapshot.num_users())
            .finish()
    }
}

/// An immutable published posterior version.
struct Epoch {
    epoch: u64,
    snapshot: PosteriorSnapshot,
    /// Which engine published this epoch (pointer identity). Lets
    /// [`ServingEngine::profile_batch_on`] tell its own handles — whose
    /// snapshots are guaranteed compatible with the epoch's derived
    /// state — from handles that wandered in from another engine, which
    /// must take the fully validating path instead.
    publisher: Arc<()>,
    /// Snapshot-derived serving state (noise models, hyper-parameters,
    /// popular fallback). Carried per epoch rather than per engine so an
    /// in-place retrain ([`ServingEngine::retrain_from_dataset`]) swaps
    /// posterior and derived state atomically: a reader pinning an old
    /// epoch keeps the matching parts, never a mix.
    parts: DerivedParts,
}

/// Builds a [`ServingEngine`]: configuration first, then one of the three
/// entry points ([`train`](Self::train),
/// [`from_snapshot`](Self::from_snapshot),
/// [`from_artifact`](Self::from_artifact)). Every path validates the full
/// configuration with a typed [`ConfigError`] before any work happens.
#[derive(Debug, Clone)]
pub struct EngineBuilder<'a> {
    gaz: &'a Gazetteer,
    mlp: MlpConfig,
    fold_in: FoldInConfig,
    policy: StalenessPolicy,
    durable: bool,
    compact_threshold: u64,
    sharding: ShardedTrainConfig,
    open_mode: OpenMode,
    integrity: Integrity,
}

/// How [`EngineBuilder::from_artifact_file`] brings the artifact into
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpenMode {
    /// Peek the artifact version and pick: v5 artifacts are mapped and
    /// served zero-copy, legacy layouts take the plain read + copying
    /// decode. The default.
    #[default]
    Auto,
    /// Always map the file. v5 slabs are borrowed in place; a legacy,
    /// misaligned, or big-endian artifact still thaws correctly through
    /// the copying fallback inside [`PosteriorSnapshot::open_mapped`].
    Mapped,
    /// Always read the whole file and decode into owned arenas — the
    /// pre-v5 behavior, never maps.
    Copied,
}

/// Default WAL size past which a file-backed engine folds the log into
/// a fresh base artifact after the next commit (1 MiB).
pub const DEFAULT_WAL_COMPACT_THRESHOLD: u64 = 1 << 20;

impl<'a> EngineBuilder<'a> {
    /// A builder over `gaz` with default configuration everywhere.
    pub fn new(gaz: &'a Gazetteer) -> Self {
        Self {
            gaz,
            mlp: MlpConfig::default(),
            fold_in: FoldInConfig::default(),
            policy: StalenessPolicy::default(),
            durable: true,
            compact_threshold: DEFAULT_WAL_COMPACT_THRESHOLD,
            sharding: ShardedTrainConfig::default(),
            open_mode: OpenMode::default(),
            integrity: Integrity::default(),
        }
    }

    /// How [`Self::from_artifact_file`] brings the artifact into memory
    /// (mapped zero-copy vs owned read; see [`OpenMode`]).
    pub fn open_mode(mut self, mode: OpenMode) -> Self {
        self.open_mode = mode;
        self
    }

    /// How much of a mapped v5 artifact [`Self::from_artifact_file`]
    /// verifies before serving it: [`Integrity::Full`] (default)
    /// checksums every section; [`Integrity::Structural`] verifies only
    /// the header and structural invariants, so the open touches O(ids)
    /// bytes instead of the whole file. See [`Integrity`] for the trade.
    pub fn integrity(mut self, integrity: Integrity) -> Self {
        self.integrity = integrity;
        self
    }

    /// User partitions for [`Self::train_corpus`]: `1` (default) runs the
    /// exact in-memory chain; `>= 2` trains out of core, one shard
    /// resident at a time.
    pub fn shards(mut self, shards: usize) -> Self {
        self.sharding.shards = shards.max(1);
        self
    }

    /// Local sweeps per shard between count reconciliations for
    /// [`Self::train_corpus`] (the staleness/merge-traffic dial).
    pub fn reconcile_every(mut self, k: usize) -> Self {
        self.sharding.reconcile_every = k.max(1);
        self
    }

    /// Training hyper-parameters for [`Self::train`] (ignored by the
    /// snapshot/artifact entry points, which inherit the hyper-parameters
    /// frozen into the artifact).
    pub fn mlp_config(mut self, config: MlpConfig) -> Self {
        self.mlp = config;
        self
    }

    /// Per-request fold-in chain configuration (sweeps, burn-in, seed,
    /// worker threads).
    pub fn fold_in_config(mut self, config: FoldInConfig) -> Self {
        self.fold_in = config;
        self
    }

    /// When accumulated refresh commits warrant a cold retrain.
    pub fn staleness_policy(mut self, policy: StalenessPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Whether [`Self::from_artifact_file`] arms the durable path: a
    /// sidecar write-ahead log (`<artifact>.wal`) that persists every
    /// committed delta *before* it is applied and published, plus
    /// recovery-on-open. On by default; turn off for throwaway engines
    /// (benchmarks, replay verification) that must not touch the
    /// sidecar. The in-memory entry points (`train`, `from_snapshot`,
    /// `from_artifact`) have no file to extend and ignore this.
    pub fn durable(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    /// WAL size (bytes) past which the next commit folds the log into a
    /// fresh base artifact (atomic replace + log reset). Defaults to
    /// [`DEFAULT_WAL_COMPACT_THRESHOLD`]; `u64::MAX` disables automatic
    /// compaction ([`ServingEngine::checkpoint`] stays available).
    pub fn wal_compact_threshold(mut self, bytes: u64) -> Self {
        self.compact_threshold = bytes;
        self
    }

    /// Cold train: runs full Gibbs on `dataset` and serves the frozen
    /// posterior as epoch 0. Validates both the training and the fold-in
    /// configuration with a typed [`ConfigError`] before any work.
    pub fn train(self, dataset: &Dataset) -> Result<ServingEngine<'a>, EngineError> {
        self.mlp.validate()?;
        self.fold_in.validate()?;
        let (_, snapshot) = Mlp::new(self.gaz, dataset, self.mlp.clone())
            .map_err(EngineError::Model)?
            .run_with_snapshot();
        self.adopt(snapshot)
    }

    /// Cold-trains from an on-disk chunked corpus
    /// ([`mlp_social::stream::CorpusReader`] layout) and serves the frozen
    /// posterior. With [`Self::shards`] `>= 2` training runs out of core —
    /// peak RSS is bounded by one shard plus the global count arenas, not
    /// by the corpus.
    pub fn train_corpus(self, corpus_dir: &Path) -> Result<ServingEngine<'a>, EngineError> {
        self.fold_in.validate()?;
        let snapshot = crate::shard::train_corpus(self.gaz, corpus_dir, &self.mlp, &self.sharding)
            .map_err(|e| match e {
                TrainError::Io(e) => EngineError::Io(e),
                other => EngineError::Model(other.to_string()),
            })?;
        self.adopt(snapshot)
    }

    /// Warm start: serves an already-trained posterior as epoch 0. Fails
    /// typed when the snapshot was trained against different geography.
    /// Only the fold-in configuration is validated — the training config
    /// is genuinely ignored here (the snapshot carries its own
    /// hyper-parameters).
    pub fn from_snapshot(
        self,
        snapshot: PosteriorSnapshot,
    ) -> Result<ServingEngine<'a>, EngineError> {
        self.fold_in.validate()?;
        self.adopt(snapshot)
    }

    /// Warm start from published artifact bytes (a
    /// [`PosteriorSnapshot::try_encode`] / [`ServingEngine::encode_artifact`]
    /// product): decode, validate, serve as epoch 0. Like
    /// [`Self::from_snapshot`], only the fold-in configuration is
    /// validated.
    pub fn from_artifact(self, bytes: Bytes) -> Result<ServingEngine<'a>, EngineError> {
        self.fold_in.validate()?;
        let snapshot = PosteriorSnapshot::decode(bytes)?;
        self.adopt(snapshot)
    }

    /// [`Self::from_artifact`] reading the bytes from a file — the
    /// *durable* entry point (unless [`Self::durable`]`(false)`).
    ///
    /// Durable opens recover on the way in: the sidecar
    /// `<artifact>.wal` is scanned, every committed delta record is
    /// replayed past the base artifact (so epoch 0 *is* the last
    /// committed pre-crash state), any torn tail is truncated, and a log
    /// bound to a different base (a checkpoint that died halfway) is set
    /// aside untouched. What recovery found is reported via
    /// [`ServingEngine::recovery_report`]. Subsequent refresh commits
    /// append to the log (fsync before publish), and the log is folded
    /// back into the artifact once it crosses
    /// [`Self::wal_compact_threshold`].
    pub fn from_artifact_file(
        self,
        path: impl AsRef<Path>,
    ) -> Result<ServingEngine<'a>, EngineError> {
        self.fold_in.validate()?;
        let path = path.as_ref();
        let use_map = match self.open_mode {
            OpenMode::Copied => false,
            OpenMode::Mapped => true,
            // v5 artifacts are built for in-place serving; legacy layouts
            // would only be copied out of the mapping anyway, so read them
            // plainly.
            OpenMode::Auto => {
                peek_artifact_version(path)? == Some(crate::snapshot::CURRENT_ARTIFACT_VERSION)
            }
        };
        let (mut snapshot, base_fingerprint) = if use_map {
            let map = Arc::new(mmap_lite::Mmap::open(path)?);
            // The fingerprint pass streams through the page cache — no
            // artifact-sized allocation happens on this path.
            let fp = self.durable.then(|| artifact_fingerprint(map.as_slice()));
            (PosteriorSnapshot::open_mapped_with(&map, self.integrity)?, fp)
        } else {
            let raw = std::fs::read(path)?;
            let fp = self.durable.then(|| artifact_fingerprint(&raw));
            (PosteriorSnapshot::decode(Bytes::from(raw))?, fp)
        };
        if !self.durable {
            return self.adopt(snapshot);
        }
        let base_fingerprint = base_fingerprint.expect("fingerprint computed on the durable path");
        let wal_path = DeltaWal::sidecar_path(path);
        let (wal, found) = DeltaWal::recover(&wal_path, base_fingerprint)?;
        let mut replayed_users = 0;
        for delta in &found.deltas {
            replayed_users += delta.num_new_users();
            snapshot.apply_delta(delta)?;
        }
        let report = RecoveryReport {
            replayed_records: found.deltas.len(),
            replayed_users,
            torn_bytes_dropped: found.torn_bytes,
            stale_log_moved_to: found.stale_moved_to,
        };
        let durable = Durable {
            wal,
            artifact_path: path.to_path_buf(),
            compact_threshold: self.compact_threshold,
        };
        self.adopt_with(snapshot, Some(durable), Some(report))
    }

    /// Shared tail of the in-memory entry points: bind the snapshot to
    /// the gazetteer (fingerprint-validated) behind the writer path and
    /// publish it as epoch 0.
    fn adopt(self, snapshot: PosteriorSnapshot) -> Result<ServingEngine<'a>, EngineError> {
        self.adopt_with(snapshot, None, None)
    }

    /// [`Self::adopt`] with the durable sidecar state attached. The
    /// replayed snapshot already contains every recovered delta, so the
    /// updater's base payload is the *recovered* state — its future
    /// commits extend the existing log, never re-log history.
    fn adopt_with(
        self,
        snapshot: PosteriorSnapshot,
        durable: Option<Durable>,
        recovery: Option<RecoveryReport>,
    ) -> Result<ServingEngine<'a>, EngineError> {
        let updater = OnlineUpdater::new(self.gaz, snapshot, self.fold_in.clone(), self.policy)?;
        // Derived once (by the updater's constructor): noise models,
        // hyper-parameters, and the popular fallback never change across
        // delta commits, so per-request fold-in engines rebuild from
        // clones carried by the epoch instead of re-validating the
        // gazetteer fingerprint on every call — and the read and absorb
        // paths share one copy.
        let identity = Arc::new(());
        let published = Arc::new(Epoch {
            epoch: 0,
            snapshot: updater.snapshot().clone(),
            publisher: Arc::clone(&identity),
            parts: updater.derived_parts().clone(),
        });
        Ok(ServingEngine {
            gaz: self.gaz,
            fold_in: self.fold_in,
            policy: self.policy,
            identity,
            commits_published: AtomicUsize::new(updater.commits()),
            stale: AtomicBool::new(updater.needs_refresh()),
            epoch_published: AtomicU64::new(0),
            published: ArcSwap::new(published),
            writer: Mutex::new(Writer { updater, durable }),
            recovery,
        })
    }
}

/// The durable half of the writer path: the open sidecar log, where the
/// base artifact lives, and when to fold the former into the latter.
struct Durable {
    wal: DeltaWal,
    artifact_path: PathBuf,
    compact_threshold: u64,
}

/// Everything behind the writer mutex: the authoritative updater plus
/// the (optional) durable sidecar state, locked together so a commit and
/// its log append can never interleave with another writer.
struct Writer<'a> {
    updater: OnlineUpdater<'a>,
    durable: Option<Durable>,
}

/// What recovery-on-open ([`EngineBuilder::from_artifact_file`]) found
/// in the sidecar write-ahead log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Committed delta records replayed past the base artifact.
    pub replayed_records: usize,
    /// Users those records appended to the posterior.
    pub replayed_users: usize,
    /// Bytes of torn (uncommitted) log tail truncated away.
    pub torn_bytes_dropped: u64,
    /// Where a log bound to a different base artifact was set aside, if
    /// one was found (a checkpoint crash window — nothing is lost, the
    /// new base already contains that log's deltas).
    pub stale_log_moved_to: Option<PathBuf>,
}

impl RecoveryReport {
    /// Whether recovery changed anything (replayed, truncated, or set a
    /// stale log aside) as opposed to a clean open.
    pub fn recovered_anything(&self) -> bool {
        self.replayed_records > 0
            || self.torn_bytes_dropped > 0
            || self.stale_log_moved_to.is_some()
    }
}

/// The serving facade: owns the posterior lifecycle across all three
/// flows (cold train, warm fold-in, online refresh) and publishes it to
/// readers as immutable epochs. See the [module docs](self) for the
/// concurrency contract and a runnable example.
pub struct ServingEngine<'a> {
    gaz: &'a Gazetteer,
    fold_in: FoldInConfig,
    /// The staleness policy this engine was built with — re-applied to
    /// the fresh updater a [`Self::retrain_from_dataset`] installs, so a
    /// retrain resets the commit/drift bookkeeping without changing the
    /// policy itself.
    policy: StalenessPolicy,
    /// This engine's pointer identity, stamped into every epoch it
    /// publishes (see [`Epoch::publisher`]).
    identity: Arc<()>,
    /// Monitoring mirror of the writer's commit count, so health checks
    /// never block behind a refresh holding the writer lock.
    commits_published: AtomicUsize,
    /// Monitoring mirror of the staleness verdict, same rationale.
    stale: AtomicBool,
    /// Wait-free mirror of the published epoch number — [`Self::epoch`]
    /// must answer without even the lock-free swap's retry loop.
    epoch_published: AtomicU64,
    /// The published epoch. Readers clone the `Arc` lock-free; the single
    /// writer publishes the next epoch with one atomic swap after a
    /// commit — reads never wait on a refresh in progress, and no mutex
    /// exists anywhere on the read path.
    published: ArcSwap<Epoch>,
    /// The single-writer path: the authoritative posterior plus the
    /// delta/staleness bookkeeping and (for file-backed engines) the
    /// durable sidecar log. Held for the whole fold-in → stage → log →
    /// commit → publish sequence so refreshes serialise.
    writer: Mutex<Writer<'a>>,
    /// What recovery-on-open found, for engines built by
    /// [`EngineBuilder::from_artifact_file`] on the durable path.
    recovery: Option<RecoveryReport>,
}

impl std::fmt::Debug for ServingEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Monitoring surface: a lock-free epoch load, so dumping an engine
        // never blocks behind a refresh holding the writer lock.
        let published = self.published.load_full();
        f.debug_struct("ServingEngine")
            .field("epoch", &published.epoch)
            .field("users", &published.snapshot.num_users())
            .field("fold_in", &self.fold_in)
            .finish_non_exhaustive()
    }
}

impl<'a> ServingEngine<'a> {
    /// Starts configuring an engine over `gaz`.
    pub fn builder(gaz: &'a Gazetteer) -> EngineBuilder<'a> {
        EngineBuilder::new(gaz)
    }

    /// The gazetteer every epoch serves against.
    pub fn gazetteer(&self) -> &'a Gazetteer {
        self.gaz
    }

    /// The per-request fold-in configuration.
    pub fn fold_in_config(&self) -> &FoldInConfig {
        &self.fold_in
    }

    /// A read handle on the currently published posterior epoch — a
    /// lock-free `Arc` clone, never contended by the writer.
    pub fn snapshot(&self) -> SnapshotHandle {
        SnapshotHandle { inner: self.published.load_full() }
    }

    /// The currently published epoch number (0 at build, +1 per commit).
    /// A wait-free monitoring read — one atomic load, no lock, no retry.
    pub fn epoch(&self) -> u64 {
        self.epoch_published.load(Ordering::Acquire)
    }

    /// Profiles one unseen user (defined as the head of a one-request
    /// batch, so it is bit-identical to `profile_batch`'s first answer).
    pub fn profile(&self, request: &ProfileRequest) -> Result<ProfileResponse, EngineError> {
        let mut out = self.profile_batch(std::slice::from_ref(request))?;
        Ok(out.pop().expect("one request in, one response out"))
    }

    /// Profiles a batch of unseen users against the currently published
    /// epoch. Batching semantics are exactly
    /// [`FoldInEngine::fold_in_batch`]: with `threads > 1` in the fold-in
    /// configuration the batch fans across scoped workers, and results are
    /// bit-identical to the sequential run. The whole batch is answered
    /// from one epoch — a refresh committing mid-batch is observed by the
    /// *next* call, never half-way through this one.
    pub fn profile_batch(
        &self,
        requests: &[ProfileRequest],
    ) -> Result<Vec<ProfileResponse>, EngineError> {
        self.profile_batch_on(&self.snapshot(), requests)
    }

    /// [`Self::profile_batch`] against a caller-pinned epoch, for readers
    /// that need answer consistency across several batches.
    ///
    /// A handle published by *this* engine takes the fast path (derived
    /// state reused, no re-validation — the builder already proved the
    /// snapshot/gazetteer pairing and commits preserve it). A handle from
    /// a different engine is still served, but through the fully
    /// validating constructor, so a snapshot that does not match this
    /// engine's gazetteer is a typed [`FoldInError::GazetteerMismatch`] —
    /// never an out-of-bounds panic, and never predictions computed with
    /// the wrong derived noise models.
    pub fn profile_batch_on(
        &self,
        handle: &SnapshotHandle,
        requests: &[ProfileRequest],
    ) -> Result<Vec<ProfileResponse>, EngineError> {
        let own = Arc::ptr_eq(&handle.inner.publisher, &self.identity);
        let engine = if own {
            FoldInEngine::from_validated_parts(
                handle.snapshot(),
                self.gaz,
                self.fold_in.clone(),
                handle.inner.parts.clone(),
            )
        } else {
            FoldInEngine::new(handle.snapshot(), self.gaz, self.fold_in.clone())?
        };
        // Borrow each request's observations in place — the read path
        // copies nothing but the answers.
        let profiles = engine.fold_in_batch_by(requests.len(), |i| &requests[i].observations)?;
        let epoch = handle.epoch();
        Ok(profiles.into_iter().map(|p| ProfileResponse { ranked: p.into(), epoch }).collect())
    }

    /// Profiles each request as an *independent single-user call* sharing
    /// one epoch read and one scheduler pass: every answer is
    /// bit-identical to what [`Self::profile`] would return for that
    /// request alone (each chain pins the singleton RNG stream), so
    /// grouping requests never changes any of them. This is the serving
    /// primitive behind [`Self::coalescer`]; for batches whose answers
    /// should match [`crate::FoldInEngine::fold_in_batch`] semantics
    /// (index-derived streams), use [`Self::profile_batch`] instead.
    pub fn profile_each(
        &self,
        requests: &[ProfileRequest],
    ) -> Result<Vec<ProfileResponse>, EngineError> {
        let handle = self.snapshot();
        let engine = FoldInEngine::from_validated_parts(
            handle.snapshot(),
            self.gaz,
            self.fold_in.clone(),
            handle.inner.parts.clone(),
        );
        let profiles =
            engine.fold_in_singletons_by(requests.len(), |i| &requests[i].observations)?;
        let epoch = handle.epoch();
        Ok(profiles.into_iter().map(|p| ProfileResponse { ranked: p.into(), epoch }).collect())
    }

    /// A bounded group-commit [`Coalescer`] over this engine: concurrent
    /// single-user [`Coalescer::profile`] calls are grouped into waves of
    /// up to `max_batch` requests, each wave served through
    /// [`Self::profile_each`] (one epoch read, one scheduler pass) with
    /// every answer exactly what a standalone [`Self::profile`] call
    /// would have returned. See [`crate::coalesce`] for the protocol.
    pub fn coalescer(&self, max_batch: usize) -> Coalescer<'_, 'a> {
        Coalescer::new(self, max_batch)
    }

    /// Absorbs a batch of new users into the posterior and publishes the
    /// next epoch: fold-in → stage → commit → publish, as one atomic
    /// writer-side step. The returned profiles are bit-identical to what
    /// [`Self::profile_batch`] would have answered against the pre-commit
    /// epoch.
    ///
    /// Requests must reference only users already in the posterior
    /// (neighbors cite committed users); unknown references fail typed
    /// with nothing staged. For the "absorb a dataset's late arrivals"
    /// loop — which also needs future-user edges filtered out — use
    /// [`Self::refresh_from_dataset`].
    pub fn refresh(&self, requests: &[ProfileRequest]) -> Result<RefreshReport, EngineError> {
        let mut writer = lock_writer(&self.writer);
        let batch: Vec<NewUserObservations> =
            requests.iter().map(|r| r.observations.clone()).collect();
        self.absorb_commit_publish(&mut writer, batch)
    }

    /// The standing refresh loop, engine-owned: profiles users
    /// `ids` out of `dataset` (one corpus pass per chunk), drops edges to
    /// users the posterior does not know yet, absorbs and commits in
    /// `batch`-sized chunks, and publishes one epoch per commit. Later
    /// chunks may therefore cite earlier chunks' users as neighbors.
    ///
    /// Each published epoch is an independent clone of the posterior (the
    /// price of lock-free readers), so the `batch` size trades commit
    /// granularity against O(posterior) clone work per commit — prefer
    /// larger batches when absorbing a large backlog.
    ///
    /// Chunks commit atomically and in order: if a later chunk fails
    /// typed, everything committed before it *stays* committed and
    /// published (exactly like the hand-wired absorb/commit loop this
    /// replaces). On error, compare [`Self::snapshot`]`().num_users()`
    /// with the pre-refresh count to see how many of `ids` landed, and
    /// resume with the remaining suffix — retrying the full list would
    /// absorb the landed users a second time as duplicate posterior rows.
    ///
    /// Deterministic end to end: repeat runs over the same inputs publish
    /// byte-identical artifacts.
    pub fn refresh_from_dataset(
        &self,
        dataset: &Dataset,
        ids: &[UserId],
        batch: usize,
    ) -> Result<RefreshReport, EngineError> {
        let mut writer = lock_writer(&self.writer);
        // An empty refresh still reports the standing staleness verdict,
        // exactly as `refresh(&[])` does.
        let mut report = RefreshReport {
            profiles: Vec::new(),
            commits: Vec::new(),
            needs_retrain: writer.updater.needs_refresh(),
        };
        for chunk in ids.chunks(batch.max(1)) {
            let mut obs = NewUserObservations::batch_from_dataset(dataset, chunk);
            let known = writer.updater.snapshot().num_users();
            for o in &mut obs {
                o.neighbors.retain(|p| p.index() < known);
            }
            let step = self.absorb_commit_publish(&mut writer, obs)?;
            report.profiles.extend(step.profiles);
            report.commits.extend(step.commits);
            report.needs_retrain = step.needs_retrain;
        }
        Ok(report)
    }

    /// The one writer-side sequence: absorb → log → commit → publish.
    ///
    /// On the durable path the staged delta is appended to the
    /// write-ahead log and fsync'd *before* it is applied in memory or
    /// published — the fsync is the commit point. A crash after the
    /// append replays the delta on reopen (identical to an uninterrupted
    /// run); a crash before it never published, so nothing is lost
    /// either. After publish, a log past its size threshold is folded
    /// into a fresh base artifact ([`Self::checkpoint`] semantics).
    fn absorb_commit_publish(
        &self,
        writer: &mut Writer<'a>,
        batch: Vec<NewUserObservations>,
    ) -> Result<RefreshReport, EngineError> {
        let profiles = writer.updater.absorb(&batch)?;
        if let Some(durable) = writer.durable.as_mut() {
            if !writer.updater.pending_delta().is_empty() {
                durable.wal.append(writer.updater.pending_delta())?;
            }
        }
        let appended = writer.updater.commit()?;
        let mut commits = Vec::new();
        // Served-at epoch: the posterior the chains actually ran against
        // (the epoch only moves below, and we hold the writer lock).
        let served_epoch = self.epoch_published.load(Ordering::Acquire);
        if appended > 0 {
            let next = Arc::new(Epoch {
                epoch: served_epoch + 1,
                snapshot: writer.updater.snapshot().clone(),
                publisher: Arc::clone(&self.identity),
                parts: writer.updater.derived_parts().clone(),
            });
            commits.push(CommitInfo {
                appended,
                total_users: next.snapshot.num_users(),
                epoch: next.epoch,
            });
            // Publish order matters for the wait-free mirror: swap the
            // epoch in first, then advance the number, so `epoch()` never
            // runs ahead of what `snapshot()` can observe.
            self.published.store(Arc::clone(&next));
            self.epoch_published.store(next.epoch, Ordering::Release);
            // Compaction runs only after the commit is both durable and
            // published — a checkpoint failure here cannot un-commit it.
            self.maybe_checkpoint(writer)?;
        }
        let needs_retrain = writer.updater.needs_refresh();
        self.commits_published.store(writer.updater.commits(), Ordering::Release);
        self.stale.store(needs_retrain, Ordering::Release);
        Ok(RefreshReport {
            profiles: profiles
                .into_iter()
                .map(|p| ProfileResponse { ranked: p.into(), epoch: served_epoch })
                .collect(),
            commits,
            needs_retrain,
        })
    }

    /// Folds the write-ahead log into a fresh base artifact when it has
    /// outgrown its threshold (no-op otherwise or when not durable).
    fn maybe_checkpoint(&self, writer: &mut Writer<'a>) -> Result<bool, EngineError> {
        match &writer.durable {
            Some(d) if d.wal.len() >= d.compact_threshold && !d.wal.is_empty() => {
                self.checkpoint_locked(writer)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Folds the write-ahead log into the base artifact *now*: the full
    /// recovered posterior is re-encoded, written atomically over the
    /// artifact path (temp file + fsync + rename), and the log is reset
    /// to extend the new base. Returns `false` (and does nothing) for
    /// engines without a durable sidecar. Crash-ordered: the new base is
    /// durable before the log resets, so dying between the two steps
    /// leaves a base that already contains the log — recovery detects
    /// the fingerprint mismatch and sets the stale log aside.
    pub fn checkpoint(&self) -> Result<bool, EngineError> {
        let mut writer = lock_writer(&self.writer);
        if writer.durable.is_none() {
            return Ok(false);
        }
        self.checkpoint_locked(&mut writer)?;
        Ok(true)
    }

    fn checkpoint_locked(&self, writer: &mut Writer<'a>) -> Result<(), EngineError> {
        let bytes = writer.updater.snapshot().try_encode()?;
        let was_mapped = writer.updater.snapshot().is_zero_copy();
        let durable = writer.durable.as_mut().expect("checkpoint requires the durable sidecar");
        write_atomic(&durable.artifact_path, bytes.as_slice())?;
        durable.wal.reset(artifact_fingerprint(bytes.as_slice()))?;
        // A checkpoint obsoletes every earlier set-aside log; keep only
        // the newest one as a post-mortem artifact.
        durable.wal.age_stale_siblings();
        if was_mapped {
            // Remap: the engine was serving slabs out of the old mapping
            // plus materialized overlay tails. The artifact just written
            // contains all of it, so swapping in a zero-copy view of the
            // new file drops the overlay (and the old mapping, once the
            // last reader epoch retires). Best-effort — if the remap
            // fails the engine keeps serving the owned snapshot, which is
            // correct, just not zero-copy anymore.
            if let Ok(map) = mmap_lite::Mmap::open(&durable.artifact_path) {
                // Structural verification suffices here: this process
                // encoded and atomically wrote these bytes moments ago.
                let open =
                    PosteriorSnapshot::open_mapped_with(&Arc::new(map), Integrity::Structural);
                if let Ok(snap) = open {
                    writer.updater.rebase_onto(snap, bytes);
                    return Ok(());
                }
            }
        }
        writer.updater.rebase(bytes);
        Ok(())
    }

    /// Whether the currently published posterior serves its slabs
    /// zero-copy out of a mapped artifact (true only for v5 files opened
    /// with [`OpenMode::Auto`]/[`OpenMode::Mapped`], until a delta-free
    /// checkpoint remap is superseded by owned mutation). A monitoring
    /// read; takes the writer lock briefly.
    pub fn is_mapped(&self) -> bool {
        lock_writer(&self.writer).updater.snapshot().is_zero_copy()
    }

    /// What recovery-on-open found — `Some` only for engines built by
    /// [`EngineBuilder::from_artifact_file`] on the durable path.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Whether this engine persists commits to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        lock_writer(&self.writer).durable.is_some()
    }

    /// Current size of the write-ahead log in bytes (`None` when not
    /// durable). Takes the writer lock briefly — a monitoring read for
    /// tests and ops tooling, not the serving path.
    pub fn log_bytes(&self) -> Option<u64> {
        lock_writer(&self.writer).durable.as_ref().map(|d| d.wal.len())
    }

    /// Records an externally measured drift metric (e.g.
    /// `mlp_eval`'s refreshed-vs-retrained accuracy gap) for the
    /// staleness policy. Waits for an in-flight refresh to finish (it
    /// updates writer state).
    pub fn record_drift(&self, drift: f64) {
        let mut writer = lock_writer(&self.writer);
        writer.updater.record_drift(drift);
        self.stale.store(writer.updater.needs_refresh(), Ordering::Release);
    }

    /// Whether the staleness policy asks for a cold retrain (commit budget
    /// spent or recorded drift over threshold). The engine keeps serving
    /// and refreshing either way. A monitoring read: never blocks, even
    /// while a refresh holds the writer path.
    pub fn needs_retrain(&self) -> bool {
        self.stale.load(Ordering::Acquire)
    }

    /// Refresh commits since the engine was built. A monitoring read:
    /// never blocks, even while a refresh holds the writer path.
    pub fn commits(&self) -> usize {
        self.commits_published.load(Ordering::Acquire)
    }

    /// The decision layer over [`Self::needs_retrain`]: given how many
    /// users are pending absorption, what should the maintenance loop do
    /// next? [`RetrainDecision::Retrain`] whenever the staleness policy
    /// fired (a retrain also covers any pending users — it trains on the
    /// caller's full dataset), else [`RetrainDecision::Refresh`] while
    /// users are pending, else [`RetrainDecision::Steady`]. Wait-free,
    /// like the monitoring reads it composes.
    pub fn plan_refresh(&self, pending_new_users: usize) -> RetrainDecision {
        if self.needs_retrain() {
            RetrainDecision::Retrain
        } else if pending_new_users > 0 {
            RetrainDecision::Refresh
        } else {
            RetrainDecision::Steady
        }
    }

    /// Full cold retrain, in place: runs the complete Gibbs chain on
    /// `dataset`, then atomically replaces the engine's posterior with
    /// the result — readers never see a gap, and a handle pinned before
    /// the swap keeps serving its old epoch (with its matching derived
    /// state) until dropped.
    ///
    /// This is the [`RetrainDecision::Retrain`] arm of the closed loop:
    /// it resets the staleness bookkeeping (commit count to zero, drift
    /// to zero — same policy, fresh budget) and publishes the retrained
    /// posterior as the *next* epoch (the counter keeps rising, so epoch
    /// ordering stays monotone across retrains).
    ///
    /// Training runs outside the writer lock, so serving and refreshes
    /// continue while the chain runs; a refresh commit that lands
    /// mid-train is superseded by the retrained posterior — `dataset` is
    /// the authoritative world. On durable engines the retrained base is
    /// checkpointed (atomic artifact replace + log reset) *before* it is
    /// published; if that fails, the pre-retrain state stays installed
    /// and serving, and the error is returned typed.
    pub fn retrain_from_dataset(
        &self,
        dataset: &Dataset,
        config: MlpConfig,
    ) -> Result<RetrainReport, EngineError> {
        config.validate()?;
        let (_, snapshot) =
            Mlp::new(self.gaz, dataset, config).map_err(EngineError::Model)?.run_with_snapshot();
        let updater = OnlineUpdater::new(self.gaz, snapshot, self.fold_in.clone(), self.policy)?;
        let mut writer = lock_writer(&self.writer);
        let previous = std::mem::replace(&mut writer.updater, updater);
        let checkpointed = if writer.durable.is_some() {
            if let Err(e) = self.checkpoint_locked(&mut writer) {
                writer.updater = previous;
                return Err(e);
            }
            true
        } else {
            false
        };
        let epoch = self.epoch_published.load(Ordering::Acquire) + 1;
        let next = Arc::new(Epoch {
            epoch,
            snapshot: writer.updater.snapshot().clone(),
            publisher: Arc::clone(&self.identity),
            parts: writer.updater.derived_parts().clone(),
        });
        let trained_users = next.snapshot.num_users();
        self.published.store(next);
        self.epoch_published.store(epoch, Ordering::Release);
        self.commits_published.store(writer.updater.commits(), Ordering::Release);
        self.stale.store(writer.updater.needs_refresh(), Ordering::Release);
        Ok(RetrainReport { epoch, trained_users, checkpointed })
    }

    /// Merges the committed delta history into one record, bounding the
    /// published artifact's size (semantics preserved; see
    /// [`OnlineUpdater::compact`] for the f64-ulp caveat).
    pub fn compact(&self) -> Result<(), EngineError> {
        lock_writer(&self.writer).updater.compact().map_err(EngineError::from)
    }

    /// Encodes the current posterior as a publishable artifact: the base
    /// payload captured at build plus one record per refresh commit —
    /// byte-identical across repeat runs of the same refresh sequence.
    /// Thaws (via [`EngineBuilder::from_artifact`] or
    /// [`PosteriorSnapshot::decode`]) back to the published posterior.
    pub fn encode_artifact(&self) -> Result<Bytes, EngineError> {
        lock_writer(&self.writer).updater.encode_artifact().map_err(EngineError::from)
    }

    /// [`Self::encode_artifact`] straight to a file, written atomically
    /// (temp file + fsync + rename): a crash mid-write leaves the old
    /// artifact, never a torn one the next open would reject.
    pub fn write_artifact(&self, path: impl AsRef<Path>) -> Result<usize, EngineError> {
        let bytes = self.encode_artifact()?;
        write_atomic(path.as_ref(), bytes.as_slice())?;
        Ok(bytes.len())
    }
}

/// Reads just enough of `path` to learn the artifact's declared format
/// version — `None` when the file is too short or not a snapshot at all
/// (the full open will produce the typed error).
fn peek_artifact_version(path: &Path) -> std::io::Result<Option<u16>> {
    use std::io::Read;
    let mut head = [0u8; 6];
    let mut file = std::fs::File::open(path)?;
    match file.read_exact(&mut head) {
        Ok(()) => Ok(crate::snapshot::artifact_version(&head)),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e),
    }
}

/// Panic-free mutex acquisition: a poisoned lock (a panicking reader or
/// writer elsewhere) still yields the data — the serving path never
/// compounds one failure into a global outage.
pub(crate) fn lock<'m, T>(m: &'m Mutex<T>) -> MutexGuard<'m, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`lock`] for the writer path (separate fn only for call-site clarity).
fn lock_writer<'m, 'a>(m: &'m Mutex<Writer<'a>>) -> MutexGuard<'m, Writer<'a>> {
    lock(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{GeneratedData, Generator, GeneratorConfig};

    fn corpus(users: usize, seed: u64) -> (Gazetteer, GeneratedData) {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
                .generate();
        (gaz, data)
    }

    fn quick(seed: u64) -> MlpConfig {
        MlpConfig { iterations: 6, burn_in: 3, seed, ..Default::default() }
    }

    #[test]
    fn builder_rejects_degenerate_configs_typed() {
        let (gaz, data) = corpus(40, 201);
        let err = ServingEngine::builder(&gaz)
            .mlp_config(MlpConfig { iterations: 0, ..Default::default() })
            .train(&data.dataset)
            .unwrap_err();
        assert!(matches!(err, EngineError::Config(ConfigError::Zero("iterations"))), "{err:?}");

        let err = ServingEngine::builder(&gaz)
            .mlp_config(quick(201))
            .fold_in_config(FoldInConfig { sweeps: 5, burn_in: 5, ..Default::default() })
            .train(&data.dataset)
            .unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::Config(ConfigError::BurnInTooLarge { burn_in: 5, chain_len: 5 })
            ),
            "{err:?}"
        );

        let err = ServingEngine::builder(&gaz)
            .mlp_config(quick(201))
            .fold_in_config(FoldInConfig { threads: 0, ..Default::default() })
            .train(&data.dataset)
            .unwrap_err();
        assert!(matches!(err, EngineError::Config(ConfigError::Zero("threads"))), "{err:?}");
    }

    #[test]
    fn profile_batch_matches_the_low_level_fold_in() {
        let (gaz, data) = corpus(120, 203);
        let d0 = data.dataset.prefix(100);
        let (_, snapshot) = Mlp::new(&gaz, &d0, quick(203)).unwrap().run_with_snapshot();

        let ids: Vec<UserId> = (100..110).map(UserId).collect();
        let mut obs = NewUserObservations::batch_from_dataset(&data.dataset, &ids);
        for o in &mut obs {
            o.neighbors.retain(|p| p.index() < 100);
        }
        let direct = FoldInEngine::new(&snapshot, &gaz, FoldInConfig::default())
            .unwrap()
            .fold_in_batch(&obs)
            .unwrap();

        let engine =
            ServingEngine::builder(&gaz).mlp_config(quick(203)).from_snapshot(snapshot).unwrap();
        let requests: Vec<ProfileRequest> = obs.into_iter().map(ProfileRequest::new).collect();
        let responses = engine.profile_batch(&requests).unwrap();

        assert_eq!(direct.len(), responses.len());
        for (d, r) in direct.iter().zip(&responses) {
            assert_eq!(d.profile, r.ranked.as_slice(), "facade must not change predictions");
            assert_eq!(r.epoch, 0);
        }
        assert_eq!(
            crate::infer::determinism_hash(&direct),
            response_determinism_hash(&responses),
            "epoch tagging must not change the pinned fingerprint"
        );

        // And the single-request path is the batch head.
        assert_eq!(engine.profile(&requests[0]).unwrap(), responses[0]);
    }

    #[test]
    fn refresh_publishes_epochs_and_absorbs_users() {
        let (gaz, data) = corpus(140, 205);
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick(205))
            .train(&data.dataset.prefix(100))
            .unwrap();
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.snapshot().num_users(), 100);

        let pinned = engine.snapshot();
        let ids: Vec<UserId> = (100..140).map(UserId).collect();
        let report = engine.refresh_from_dataset(&data.dataset, &ids, 20).unwrap();
        assert_eq!(report.appended(), 40);
        assert_eq!(report.commits.len(), 2);
        assert_eq!(report.commits[1].epoch, 2);
        assert_eq!(report.commits[1].total_users, 140);
        assert_eq!(report.profiles.len(), 40);
        assert_eq!(engine.epoch(), 2);
        assert_eq!(engine.commits(), 2);
        assert_eq!(engine.snapshot().num_users(), 140);

        // The pre-refresh handle still pins epoch 0.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.snapshot().num_users(), 100);

        // An empty refresh commits nothing and publishes nothing.
        let noop = engine.refresh(&[]).unwrap();
        assert!(noop.commits.is_empty() && noop.profiles.is_empty());
        assert_eq!(engine.epoch(), 2);
    }

    #[test]
    fn strict_refresh_rejects_unknown_neighbors_with_nothing_staged() {
        let (gaz, data) = corpus(80, 207);
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick(207))
            .train(&data.dataset.prefix(60))
            .unwrap();
        let bad = ProfileRequest::new(NewUserObservations {
            neighbors: vec![UserId(70)],
            mentions: vec![],
        });
        let err = engine.refresh(std::slice::from_ref(&bad)).unwrap_err();
        assert!(matches!(err, EngineError::FoldIn(FoldInError::UnknownUser(UserId(70)))));
        assert_eq!(engine.epoch(), 0, "failed refresh must not publish");
        assert_eq!(engine.snapshot().num_users(), 60);
    }

    #[test]
    fn staleness_policy_is_enforced_through_the_facade() {
        let (gaz, data) = corpus(120, 209);
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick(209))
            .staleness_policy(StalenessPolicy { refresh_after_commits: 2, drift_threshold: 0.1 })
            .train(&data.dataset.prefix(100))
            .unwrap();
        assert!(!engine.needs_retrain());
        let ids: Vec<UserId> = (100..120).map(UserId).collect();
        let report = engine.refresh_from_dataset(&data.dataset, &ids, 10).unwrap();
        assert_eq!(report.commits.len(), 2);
        assert!(report.needs_retrain, "commit budget spent must surface in the report");
        assert!(engine.needs_retrain());

        // Drift alone also triggers.
        let engine2 = ServingEngine::builder(&gaz)
            .mlp_config(quick(209))
            .staleness_policy(StalenessPolicy { refresh_after_commits: 0, drift_threshold: 0.1 })
            .train(&data.dataset.prefix(100))
            .unwrap();
        assert!(!engine2.needs_retrain());
        engine2.record_drift(0.2);
        assert!(engine2.needs_retrain());
    }

    #[test]
    fn artifact_round_trips_through_the_builder() {
        let (gaz, data) = corpus(120, 211);
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick(211))
            .train(&data.dataset.prefix(90))
            .unwrap();
        let ids: Vec<UserId> = (90..120).map(UserId).collect();
        engine.refresh_from_dataset(&data.dataset, &ids, 15).unwrap();

        let artifact = engine.encode_artifact().unwrap();
        let thawed =
            ServingEngine::builder(&gaz).mlp_config(quick(211)).from_artifact(artifact).unwrap();
        assert_eq!(thawed.epoch(), 0, "a thawed artifact starts a fresh epoch history");
        assert_eq!(thawed.snapshot().snapshot(), engine.snapshot().snapshot());

        // And it serves identically.
        let reqs = ProfileRequest::batch_from_dataset(&data.dataset, &[UserId(3), UserId(17)]);
        let a = engine.profile_batch(&reqs).unwrap();
        let b = thawed.profile_batch(&reqs).unwrap();
        assert_eq!(
            response_determinism_hash(&a),
            response_determinism_hash(&b),
            "thawed engine must serve bit-identically"
        );
    }

    #[test]
    fn foreign_handles_are_revalidated_not_trusted() {
        // A handle published by engine A handed to engine B must not ride
        // B's validation-free fast path: over a different gazetteer that
        // would index A's city ids out of B's tables (a panic), and even
        // over the same gazetteer B's derived noise models would be wrong
        // for A's snapshot. Foreign handles take the validating path.
        let gaz_a = Gazetteer::us_cities();
        let data_a = Generator::new(
            &gaz_a,
            GeneratorConfig { num_users: 60, seed: 215, ..Default::default() },
        )
        .generate();
        let engine_a =
            ServingEngine::builder(&gaz_a).mlp_config(quick(215)).train(&data_a.dataset).unwrap();

        // `with_synthetic` only grows the base table, so ask for strictly
        // more cities than gazetteer A has to guarantee a real mismatch.
        let gaz_b = Gazetteer::with_synthetic(&mlp_gazetteer::SynthConfig {
            total_cities: gaz_a.num_cities() + 25,
            seed: 2,
            ..Default::default()
        });
        let data_b = Generator::new(
            &gaz_b,
            GeneratorConfig { num_users: 50, seed: 216, ..Default::default() },
        )
        .generate();
        let engine_b =
            ServingEngine::builder(&gaz_b).mlp_config(quick(216)).train(&data_b.dataset).unwrap();

        // Mismatched geography: typed error, not an out-of-bounds panic.
        let reqs = vec![ProfileRequest::default()];
        let err = engine_b.profile_batch_on(&engine_a.snapshot(), &reqs).unwrap_err();
        assert!(matches!(err, EngineError::FoldIn(FoldInError::GazetteerMismatch { .. })));

        // Same gazetteer, different engine: served, and identically to the
        // handle's own engine (the parts re-derive from the handle's
        // snapshot, not from the serving engine's).
        let engine_a2 =
            ServingEngine::builder(&gaz_a).mlp_config(quick(215)).train(&data_a.dataset).unwrap();
        let own = engine_a.profile_batch(&reqs).unwrap();
        let foreign = engine_a2.profile_batch_on(&engine_a.snapshot(), &reqs).unwrap();
        assert_eq!(own, foreign);
    }

    #[test]
    fn staleness_policy_zero_budget_and_exact_threshold_do_not_trigger() {
        let (gaz, data) = corpus(130, 219);
        // Budget 0 disables the commit counter entirely: any number of
        // commits alone never asks for a retrain.
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick(219))
            .staleness_policy(StalenessPolicy { refresh_after_commits: 0, drift_threshold: 0.1 })
            .train(&data.dataset.prefix(100))
            .unwrap();
        let ids: Vec<UserId> = (100..130).map(UserId).collect();
        let report = engine.refresh_from_dataset(&data.dataset, &ids, 5).unwrap();
        assert_eq!(report.commits.len(), 6);
        assert!(!report.needs_retrain, "budget 0 must disable the commit trigger");
        assert!(!engine.needs_retrain());
        assert_eq!(engine.plan_refresh(0), RetrainDecision::Steady);
        assert_eq!(engine.plan_refresh(3), RetrainDecision::Refresh);

        // Drift exactly at the threshold is not *over* it — strictly
        // greater is the contract, so the boundary stays quiet.
        engine.record_drift(0.1);
        assert!(!engine.needs_retrain(), "drift == threshold must not trigger");
        engine.record_drift(0.1 + 1e-9);
        assert!(engine.needs_retrain(), "any excess over threshold must trigger");
        assert_eq!(engine.plan_refresh(0), RetrainDecision::Retrain);
        // Drift is a last-measurement signal, not a ratchet: a newer,
        // smaller reading clears it.
        engine.record_drift(0.0);
        assert!(!engine.needs_retrain());
    }

    #[test]
    fn retrain_resets_policy_and_publishes_next_epoch() {
        let (gaz, data) = corpus(140, 221);
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(quick(221))
            .staleness_policy(StalenessPolicy { refresh_after_commits: 2, drift_threshold: 0.1 })
            .train(&data.dataset.prefix(100))
            .unwrap();
        let ids: Vec<UserId> = (100..140).map(UserId).collect();
        engine.refresh_from_dataset(&data.dataset, &ids, 20).unwrap();
        assert_eq!(engine.epoch(), 2);
        assert!(engine.needs_retrain(), "commit budget spent");
        assert_eq!(engine.plan_refresh(0), RetrainDecision::Retrain);

        // Pin the stale epoch and remember how it serves.
        let pinned = engine.snapshot();
        let reqs = ProfileRequest::batch_from_dataset(&data.dataset, &[UserId(3), UserId(17)]);
        let before = engine.profile_batch_on(&pinned, &reqs).unwrap();

        let report = engine.retrain_from_dataset(&data.dataset, quick(222)).unwrap();
        assert_eq!(report.epoch, 3, "retrain publishes the next epoch, not epoch 0");
        assert_eq!(report.trained_users, 140);
        assert!(!report.checkpointed, "in-memory engine has no artifact to checkpoint");

        // Policy bookkeeping is reset: same policy, fresh budget.
        assert_eq!(engine.epoch(), 3);
        assert_eq!(engine.commits(), 0);
        assert!(!engine.needs_retrain());
        assert_eq!(engine.plan_refresh(0), RetrainDecision::Steady);
        assert_eq!(engine.snapshot().num_users(), 140);

        // The pinned pre-retrain handle still serves bit-identically: its
        // epoch carries its own derived state, untouched by the swap.
        assert_eq!(pinned.epoch(), 2);
        let after = engine.profile_batch_on(&pinned, &reqs).unwrap();
        assert_eq!(before, after, "pinned epochs must be immune to a retrain");

        // And the refresh loop keeps working on the retrained posterior.
        engine.record_drift(0.2);
        assert!(engine.needs_retrain(), "the policy itself survives the reset");
    }

    #[test]
    fn mismatched_gazetteer_is_rejected_at_build() {
        let (gaz, data) = corpus(60, 213);
        let (_, snapshot) = Mlp::new(&gaz, &data.dataset, quick(213)).unwrap().run_with_snapshot();
        let other = Gazetteer::with_synthetic(&mlp_gazetteer::SynthConfig {
            total_cities: gaz.num_cities() + 7,
            seed: 1,
            ..Default::default()
        });
        let err = ServingEngine::builder(&other).from_snapshot(snapshot).unwrap_err();
        assert!(matches!(err, EngineError::FoldIn(FoldInError::GazetteerMismatch { .. })));
    }
}
